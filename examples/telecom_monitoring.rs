//! The Figure 8 telecom scenario, end to end:
//!
//! * sensors stream network events into the ESP;
//! * raw events are archived to HDFS for offline MapReduce analysis;
//! * the ESP prefilters/pre-aggregates and forwards health aggregates
//!   into a HANA table;
//! * an outage pattern triggers alerts;
//! * reference data (cell → city) is pushed from HANA into the ESP and
//!   enriches an alert stream (ESP join);
//! * the live window joins with HANA tables in SQL (HANA join);
//! * a MapReduce job over the archive finds the worst cells, and the
//!   archive is replayed into a development engine to verify an improved
//!   outage pattern;
//! * k-means groups cells by load profile (the PAL side).
//!
//! Run with: `cargo run --example telecom_monitoring`

use std::sync::Arc;

use hana_data_platform::esp::{parse_archive_line, Sink};
use hana_data_platform::hadoop::{Hdfs, JobSpec, MrCluster, MrConfig, Reducer, KV};
use hana_data_platform::pal::kmeans;
use hana_data_platform::platform::HanaPlatform;
use hana_data_platform::{DataType, Row, Schema, Value};

fn event(cell: &str, kind: &str, load: f64) -> Row {
    Row::from_values([Value::from(cell), Value::from(kind), Value::Double(load)])
}

fn main() {
    let hana = Arc::new(HanaPlatform::new_in_memory());
    let session = hana.connect("SYSTEM", "manager").unwrap();
    let hdfs = Arc::new(Hdfs::new(4));
    let mr = MrCluster::new(Arc::clone(&hdfs), MrConfig::default());

    // ---- HANA side: reference data and the landing table ----------
    hana.execute_sql(
        &session,
        "CREATE COLUMN TABLE cells (cell_id VARCHAR(8), city VARCHAR(20))",
    )
    .unwrap();
    for (c, city) in [("c1", "Walldorf"), ("c2", "Dresden"), ("c3", "Berlin")] {
        hana.execute_sql(
            &session,
            &format!("INSERT INTO cells VALUES ('{c}', '{city}')"),
        )
        .unwrap();
    }
    hana.execute_sql(
        &session,
        "CREATE COLUMN TABLE network_health (cell VARCHAR(8), avg_load DOUBLE, events BIGINT)",
    )
    .unwrap();

    // ---- ESP deployment --------------------------------------------
    let esp = hana.esp();
    esp.deploy(
        "CREATE INPUT STREAM network_events SCHEMA \
             (cell VARCHAR(8), kind VARCHAR(10), load DOUBLE);\n\
         CREATE OUTPUT WINDOW cell_health AS \
             SELECT cell, AVG(load) AS avg_load, COUNT(*) AS events \
             FROM network_events WHERE kind = 'status' GROUP BY cell \
             KEEP 600 SECONDS",
    )
    .unwrap();
    // ESP join (use case 2): push the reference, then deploy the
    // enriched alert stream.
    hana.push_reference_to_esp(&session, "cells", "cells")
        .unwrap();
    esp.deploy(
        "CREATE OUTPUT STREAM located_alerts AS \
             SELECT e.cell, r.city, e.load FROM network_events e \
             JOIN cells r ON e.cell = r.cell_id WHERE e.load > 95",
    )
    .unwrap();
    // Adapters: archive raw events to HDFS, forward aggregates to HANA.
    esp.attach_sink(
        "network_events",
        Sink::Hdfs {
            hdfs: Arc::clone(&hdfs),
            path: "/archive/network/day1".into(),
        },
    )
    .unwrap();
    let sink = hana.table_sink(&session, "network_health").unwrap();
    esp.attach_sink("cell_health", sink).unwrap();
    // Outage pattern: overload followed by an outage within 5 seconds.
    esp.define_pattern(
        "outage",
        "network_events",
        &["load > 95", "kind = 'outage'"],
        5,
    )
    .unwrap();
    // HANA join (use case 3): expose the live window to SQL.
    hana.expose_esp_window(&session, "cell_health").unwrap();

    // ---- live traffic ----------------------------------------------
    for i in 0..3000i64 {
        let cell = format!("c{}", i % 3 + 1);
        // c3 degrades over time.
        let load = match cell.as_str() {
            "c3" => 60.0 + (i as f64 / 40.0),
            "c2" => 55.0 + (i % 7) as f64,
            _ => 35.0 + (i % 5) as f64,
        };
        esp.send(
            "network_events",
            i * 250_000,
            event(&cell, "status", load.min(99.0)),
        )
        .unwrap();
        if i == 2800 {
            esp.send(
                "network_events",
                i * 250_000 + 1,
                event("c3", "outage", 0.0),
            )
            .unwrap();
        }
    }

    // HANA join: live window + reference table in one SQL statement.
    let rs = hana
        .execute_sql(
            &session,
            "SELECT c.city, w.avg_load, w.events FROM cell_health() w \
             JOIN cells c ON w.cell = c.cell_id ORDER BY w.avg_load DESC",
        )
        .unwrap();
    println!("Live network health (window joined with HANA reference):\n{rs}\n");

    // Alerts and detected patterns.
    let matches = esp.take_alerts("outage");
    println!(
        "Outage pattern fired {} time(s); operations staff alerted.\n",
        matches.len()
    );

    // Forward the aggregate window into the HANA table.
    esp.flush_window("cell_health").unwrap();
    let rs = hana
        .execute_sql(&session, "SELECT COUNT(*) FROM network_health")
        .unwrap();
    println!(
        "Aggregates forwarded into HANA: {} row(s)\n",
        rs.scalar().unwrap()
    );

    // ---- offline analysis on the archive (Hadoop) -------------------
    struct MaxLoad;
    impl Reducer for MaxLoad {
        fn reduce(&self, key: &str, values: &[String], out: &mut Vec<String>) {
            let max = values
                .iter()
                .filter_map(|v| v.parse::<f64>().ok())
                .fold(f64::MIN, f64::max);
            out.push(format!("{key},{max:.1}"));
        }
    }
    let mapper = |_k: &str, line: &str, out: &mut Vec<KV>| {
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() == 3 && parts[1] == "status" {
            out.push((parts[0].to_string(), parts[2].to_string()));
        }
    };
    let stats = mr
        .run_job(
            &JobSpec {
                name: "peak-load-per-cell".into(),
                inputs: vec!["/archive/network/day1".into()],
                output_dir: "/analysis/peaks".into(),
                num_reducers: 2,
                combiner: None,
            },
            Arc::new(mapper),
            Some(Arc::new(MaxLoad)),
        )
        .unwrap();
    let mut peaks = mr.read_output("/analysis/peaks").unwrap();
    peaks.sort();
    println!(
        "MapReduce archive analysis ({} map tasks, {} records): peak load per cell = {:?}\n",
        stats.map_tasks, stats.input_records, peaks
    );

    // ---- replay the archive to verify an improved pattern -----------
    let dev = hana_data_platform::esp::EspEngine::new();
    dev.deploy(
        "CREATE INPUT STREAM network_events SCHEMA \
             (cell VARCHAR(8), kind VARCHAR(10), load DOUBLE)",
    )
    .unwrap();
    // The improved pattern derived from the offline analysis: sustained
    // high load (two overloads) before the outage.
    dev.define_pattern(
        "outage_v2",
        "network_events",
        &["load > 90", "load > 90", "kind = 'outage'"],
        30,
    )
    .unwrap();
    let schema = Schema::of(&[
        ("cell", DataType::Varchar),
        ("kind", DataType::Varchar),
        ("load", DataType::Double),
    ]);
    let ts = std::cell::Cell::new(0i64);
    let replayed = dev
        .replay_hdfs(&hdfs, "/archive/network/day1", "network_events", |line| {
            ts.set(ts.get() + 250_000);
            parse_archive_line(line, &schema).map(|r| (ts.get(), r))
        })
        .unwrap();
    let v2 = dev.take_alerts("outage_v2");
    println!(
        "Replayed {replayed} archived events into the development ESP; \
         improved pattern fired {} time(s) -> {}.\n",
        v2.len(),
        if v2.is_empty() {
            "needs more work"
        } else {
            "promote to production"
        }
    );

    // ---- PAL: cluster cells by load profile -------------------------
    let profiles: Vec<Vec<f64>> = peaks
        .iter()
        .filter_map(|l| l.split(',').nth(1)?.parse::<f64>().ok())
        .map(|p| vec![p])
        .collect();
    let model = kmeans(&profiles, 2, 20).unwrap();
    println!(
        "k-means over peak-load profiles: assignments {:?}, centroids {:?}",
        model.assignments, model.centroids
    );
}
