//! The §4.1 automotive warranty-claim project, end to end:
//!
//! * diagnostic read-outs, support escalations and warranty claims live
//!   as raw data in Hadoop (HDFS + Hive);
//! * condensed production/sales data lives in HANA;
//! * Hive extracts twelve months of read-outs for one car series and
//!   makes them available to HANA through SDA — with the Figure 12/13
//!   plans shown via EXPLAIN, and remote materialization caching the
//!   extraction;
//! * the PAL apriori algorithm mines association rules (the paper found
//!   "thousands of association rules … with confidence between 80% and
//!   100%");
//! * the derived model classifies new read-outs as warranty candidates
//!   in real time in HANA.
//!
//! Run with: `cargo run --release --example warranty_claims`

use std::sync::Arc;

use hana_data_platform::hadoop::{Hdfs, Hive, MrCluster, MrConfig, MrFunctionRegistry};
use hana_data_platform::pal::{apriori, AprioriParams, RuleClassifier};
use hana_data_platform::platform::HanaPlatform;
use hana_data_platform::query::Catalog as _;
use hana_data_platform::{DataType, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DTCS: [&str; 8] = [
    "dtc_P0300",
    "dtc_P0420",
    "dtc_P0171",
    "dtc_B1342",
    "dtc_C1201",
    "dtc_U0100",
    "dtc_P0455",
    "dtc_P0128",
];
const CONTEXT: [&str; 5] = [
    "hot_climate",
    "cold_climate",
    "city_driving",
    "highway",
    "towing",
];

fn main() {
    let mut rng = StdRng::seed_from_u64(41);

    // ---- the Hadoop cluster with raw diagnostic read-outs ----------
    let hdfs = Arc::new(Hdfs::new(6));
    let mr = Arc::new(MrCluster::new(hdfs, MrConfig::default()));
    let hive = Arc::new(Hive::new(Arc::clone(&mr)));
    hive.create_table(
        "readouts",
        Schema::of(&[
            ("vin", DataType::Varchar),
            ("series", DataType::Varchar),
            ("month", DataType::Int),
            ("items", DataType::Varchar), // space-separated DTCs/context
            ("claimed", DataType::Int),
        ]),
    )
    .unwrap();
    // 4000 read-outs across two car series; the failure mechanism:
    // P0300 + hot climate (and P0171 + towing) lead to claims.
    let mut rows = Vec::new();
    for i in 0..4000 {
        let series = if i % 3 == 0 { "X7" } else { "Z3" };
        let mut items = vec![
            DTCS[rng.random_range(0..DTCS.len())].to_string(),
            CONTEXT[rng.random_range(0..CONTEXT.len())].to_string(),
        ];
        if rng.random_range(0..3) == 0 {
            items.push(DTCS[rng.random_range(0..DTCS.len())].to_string());
        }
        let risky = (items.contains(&"dtc_P0300".to_string())
            && items.contains(&"hot_climate".to_string()))
            || (items.contains(&"dtc_P0171".to_string()) && items.contains(&"towing".to_string()));
        let claimed = risky && rng.random_range(0..10) < 9;
        items.sort();
        items.dedup();
        rows.push(Row::from_values([
            Value::from(format!("VIN{i:06}")),
            Value::from(series),
            Value::Int(rng.random_range(1..13)),
            Value::from(items.join(" ")),
            Value::Int(claimed as i64),
        ]));
    }
    hive.load("readouts", &rows).unwrap();

    // ---- HANA as the federation layer -------------------------------
    let hana = Arc::new(HanaPlatform::new_in_memory());
    let session = hana.connect("SYSTEM", "manager").unwrap();
    hana.attach_hadoop(Arc::clone(&hive), Arc::new(MrFunctionRegistry::new(mr)));
    hana.execute_sql(
        &session,
        "CREATE REMOTE SOURCE HIVE1 ADAPTER \"hiveodbc\" CONFIGURATION 'DSN=hive1' \
         WITH CREDENTIAL TYPE 'PASSWORD' USING 'user=dfuser;password=dfpass'",
    )
    .unwrap();
    hana.execute_sql(
        &session,
        "CREATE VIRTUAL TABLE readouts AT hive1.dflo.dflo.readouts",
    )
    .unwrap();
    hana.set_remote_cache(true, 1_000_000);

    // The twelve-month extraction for the X7 series (pushed to Hive).
    let extraction = "SELECT items, claimed FROM readouts \
                      WHERE series = 'X7' AND month BETWEEN 1 AND 12";

    // Figure 12: the plan without remote materialization.
    let plan = hana
        .execute_sql(&session, &format!("EXPLAIN {extraction}"))
        .unwrap();
    println!("Plan WITHOUT remote materialization (Figure 12):");
    for r in &plan.rows {
        println!("  {}", r[0]);
    }

    // First hinted run materializes at the remote source; repeated runs
    // hit the Hive-side cache (Figure 13 behaviour).
    let hinted = format!("{extraction} WITH HINT (USE_REMOTE_CACHE)");
    let t0 = std::time::Instant::now();
    let rs = hana.execute_sql(&session, &hinted).unwrap();
    let first = t0.elapsed();
    let t0 = std::time::Instant::now();
    let rs2 = hana.execute_sql(&session, &hinted).unwrap();
    let hit = t0.elapsed();
    assert_eq!(rs.len(), rs2.len());
    let (hits, misses) = hana.catalog().sda().cache.stats();
    println!(
        "\nExtraction of {} read-outs: first (materializing) run {:.1}ms, \
         cache hit {:.1}ms — cache stats {hits} hit(s) / {misses} miss(es)\n",
        rs.len(),
        first.as_secs_f64() * 1e3,
        hit.as_secs_f64() * 1e3
    );

    // ---- PAL: apriori over the extracted transactions ---------------
    let transactions: Vec<Vec<String>> = rs
        .rows
        .iter()
        .map(|r| {
            let mut items: Vec<String> = r[0]
                .as_str()
                .unwrap_or("")
                .split_whitespace()
                .map(str::to_string)
                .collect();
            if r[1] == Value::Int(1) {
                items.push("claim".into());
            }
            items
        })
        .collect();
    let rules = apriori(
        &transactions,
        AprioriParams {
            min_support: 0.01,
            min_confidence: 0.8,
            max_len: 3,
        },
    )
    .unwrap();
    println!(
        "apriori mined {} rules with confidence in [{:.2}, {:.2}] (paper: 80%..100%)",
        rules.len(),
        rules.iter().map(|r| r.confidence).fold(1.0, f64::min),
        rules.iter().map(|r| r.confidence).fold(0.0, f64::max),
    );
    for r in rules
        .iter()
        .filter(|r| r.consequent == vec!["claim".to_string()])
        .take(4)
    {
        println!(
            "  {:?} => claim  (support {:.3}, confidence {:.2}, lift {:.1})",
            r.antecedent, r.support, r.confidence, r.lift
        );
    }

    // ---- classify new read-outs in real time in HANA ----------------
    let clf = RuleClassifier::new(&rules, "claim");
    println!(
        "\nClassifier built from {} claim rules; scoring new read-outs:",
        clf.rule_count()
    );
    for obs in [
        vec!["dtc_P0300".to_string(), "hot_climate".to_string()],
        vec![
            "dtc_P0171".to_string(),
            "towing".to_string(),
            "city_driving".to_string(),
        ],
        vec!["dtc_P0420".to_string(), "highway".to_string()],
    ] {
        match clf.score(&obs) {
            Some(score) if score >= 0.8 => {
                println!("  {obs:?} -> WARRANTY CANDIDATE (confidence {score:.2})")
            }
            Some(score) => println!("  {obs:?} -> low risk ({score:.2})"),
            None => println!("  {obs:?} -> no rule fires"),
        }
    }
}
