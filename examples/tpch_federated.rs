//! Regenerate **Figure 14** (runtime benefit of remote materialization)
//! and **Figure 15** (materialization overhead) of the paper.
//!
//! The setup mirrors §4.4: TPC-H data with LINEITEM, CUSTOMER, ORDERS,
//! PARTSUPP (and usually PART) federated at a simulated Hive/Hadoop
//! cluster reached over SDA, while SUPPLIER, NATION and REGION (plus
//! PART for Q14/Q19) live in HANA column tables. Every query runs in
//! SDA normal mode, then with `WITH HINT (USE_REMOTE_CACHE)` twice —
//! the first hinted run pays the CTAS materialization, the second reads
//! the materialized temp table through Hive's fetch task.
//!
//! Run with: `cargo run --release --example tpch_federated [scale]`

use hana_bench::{render_figures, run_materialization_experiment, WorldConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);
    let config = WorldConfig {
        scale,
        ..WorldConfig::default()
    };
    println!(
        "Building TPC-H federation worlds at SF {scale} \
         (this loads Hive and HANA twice, for both PART placements)...\n"
    );
    let rows = run_materialization_experiment(&config).expect("experiment");
    println!("{}", render_figures(&rows));

    // Shape checks against the paper.
    let avg = |all_remote: bool| {
        let v: Vec<f64> = rows
            .iter()
            .filter(|r| r.all_remote == all_remote)
            .map(|r| r.benefit_percent())
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let (remote_avg, mixed_avg) = (avg(true), avg(false));
    println!("average benefit, all-remote queries: {remote_avg:.1}%");
    println!("average benefit, mixed queries:      {mixed_avg:.1}%");
    println!(
        "paper shape (all-remote > mixed, both positive): {}",
        if remote_avg > mixed_avg && mixed_avg > 0.0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
}
