//! Hybrid tables, the built-in aging mechanism and the federated join
//! strategies of §3.1 (Figures 6 and 7).
//!
//! A sales table spans a hot in-memory partition and a cold extended
//! (IQ) partition; the aging daemon moves flagged rows to disk; queries
//! keep seeing one logical table via the union plan; and the optimizer
//! picks between remote scan / semijoin / table relocation depending on
//! predicate selectivity — with the Figure 7 semijoin case shown via
//! EXPLAIN.
//!
//! Run with: `cargo run --release --example data_aging`

use hana_data_platform::platform::HanaPlatform;
use hana_data_platform::Value;

fn main() {
    let hana = HanaPlatform::new_in_memory();
    let session = hana.connect("SYSTEM", "manager").unwrap();

    // A hybrid table: the §3.1 partition-level extension.
    hana.execute_sql(
        &session,
        "CREATE COLUMN TABLE sales \
         (id INTEGER, year INTEGER, amount DOUBLE, is_historic BOOLEAN) \
         USING HYBRID EXTENDED STORAGE AGING ON is_historic",
    )
    .unwrap();

    // Load five years of data; older years carry the aging flag.
    let rows: Vec<hana_data_platform::Row> = (0..50_000)
        .map(|i| {
            let year = 2010 + (i % 5);
            hana_data_platform::Row::from_values([
                Value::Int(i),
                Value::Int(year),
                Value::Double((i % 1000) as f64),
                Value::Bool(year < 2013),
            ])
        })
        .collect();
    hana.load_rows(&session, "sales", &rows).unwrap();
    hana.execute_sql(&session, "MERGE DELTA OF sales").unwrap();

    let count = |sql: &str| -> i64 {
        hana.execute_sql(&session, sql)
            .unwrap()
            .scalar()
            .unwrap()
            .as_i64()
            .unwrap()
    };
    println!(
        "Loaded {} rows, all hot.",
        count("SELECT COUNT(*) FROM sales")
    );

    // The aging daemon moves flagged rows into the extended storage.
    let moved = hana.run_aging(&session, "sales").unwrap();
    let cold = hana.iq().row_count("sales__cold", u64::MAX - 1).unwrap();
    println!("Aging moved {moved} rows to the cold partition (IQ now holds {cold}).");

    // One logical table: the union plan spans both partitions.
    println!(
        "Logical row count after aging: {} (hot + cold, unchanged).",
        count("SELECT COUNT(*) FROM sales")
    );
    let rs = hana
        .execute_sql(
            &session,
            "EXPLAIN SELECT SUM(amount) FROM sales WHERE year = 2011",
        )
        .unwrap();
    println!("\nPlan over the hybrid table (union of hot and cold):");
    for r in &rs.rows {
        println!("  {}", r[0]);
    }

    // ---- Figure 7: the federated join strategies --------------------
    // A dimension table in HANA, a big fact table in the extended store.
    hana.execute_sql(
        &session,
        "CREATE COLUMN TABLE equipment (equip_id INTEGER, label VARCHAR(20))",
    )
    .unwrap();
    let dim: Vec<hana_data_platform::Row> = (0..20_000)
        .map(|i| {
            hana_data_platform::Row::from_values([
                Value::Int(i),
                Value::from(format!("equipment-{i}")),
            ])
        })
        .collect();
    hana.load_rows(&session, "equipment", &dim).unwrap();
    hana.execute_sql(
        &session,
        "CREATE TABLE measurements (equip_id INTEGER, pressure DOUBLE) USING EXTENDED STORAGE",
    )
    .unwrap();
    let fact: Vec<hana_data_platform::Row> = (0..200_000)
        .map(|i| {
            hana_data_platform::Row::from_values([
                Value::Int(i % 20_000),
                Value::Double((i % 120) as f64),
            ])
        })
        .collect();
    hana.load_rows(&session, "measurements", &fact).unwrap();

    // Selective local predicate -> the optimizer must pick the semijoin
    // (the Figure 7 scenario: one row shipped to filter the big remote
    // table, group-by pushed along).
    let rs = hana
        .execute_sql(
            &session,
            "EXPLAIN SELECT e.label, AVG(m.pressure) FROM equipment e \
             JOIN measurements m ON e.equip_id = m.equip_id \
             WHERE e.equip_id = 42 GROUP BY e.label",
        )
        .unwrap();
    println!("\nFigure 7 plan (selective local predicate -> semijoin):");
    for r in &rs.rows {
        println!("  {}", r[0]);
    }

    // Selective REMOTE predicate -> remote scan wins instead.
    let rs = hana
        .execute_sql(
            &session,
            "EXPLAIN SELECT e.label, m.pressure FROM equipment e \
             JOIN measurements m ON e.equip_id = m.equip_id \
             WHERE m.pressure > 118",
        )
        .unwrap();
    println!("\nSelective remote predicate -> remote scan:");
    for r in &rs.rows {
        println!("  {}", r[0]);
    }

    // And the answers are the same regardless of strategy.
    let rs = hana
        .execute_sql(
            &session,
            "SELECT e.label, COUNT(*) AS n FROM equipment e \
             JOIN measurements m ON e.equip_id = m.equip_id \
             WHERE e.equip_id = 42 GROUP BY e.label",
        )
        .unwrap();
    println!("\nSemijoin result:\n{rs}");
}
