//! Quickstart: the platform as "a single point of entry for the
//! application" — column/row/extended/hybrid tables, SQL, transactions,
//! time series, and a look at the landscape.
//!
//! Run with: `cargo run --example quickstart`

use hana_data_platform::columnar::{Compensation, TimeSeriesTable};
use hana_data_platform::platform::HanaPlatform;

fn main() {
    let hana = HanaPlatform::new_in_memory();
    let session = hana.connect("SYSTEM", "manager").expect("login");

    // --- storage options of §3.1 ---------------------------------
    hana.execute_sql(
        &session,
        "CREATE COLUMN TABLE sales (id INTEGER, region VARCHAR(10), amount DOUBLE)",
    )
    .unwrap();
    hana.execute_sql(
        &session,
        "CREATE ROW TABLE accounts (id INTEGER PRIMARY KEY, balance DOUBLE)",
    )
    .unwrap();
    hana.execute_sql(
        &session,
        "CREATE TABLE archive (id INTEGER, note VARCHAR(40)) USING EXTENDED STORAGE",
    )
    .unwrap();

    // --- DML + queries --------------------------------------------
    hana.execute_sql(
        &session,
        "INSERT INTO sales VALUES (1, 'EMEA', 120.0), (2, 'APJ', 80.0), \
         (3, 'EMEA', 50.0), (4, 'AMER', 200.0)",
    )
    .unwrap();
    let rs = hana
        .execute_sql(
            &session,
            "SELECT region, SUM(amount) AS total, COUNT(*) AS n \
             FROM sales GROUP BY region ORDER BY total DESC",
        )
        .unwrap();
    println!("Revenue by region:\n{rs}\n");

    // --- transactions across engines -----------------------------
    hana.execute_sql(&session, "BEGIN").unwrap();
    hana.execute_sql(&session, "INSERT INTO sales VALUES (5, 'EMEA', 10.0)")
        .unwrap();
    hana.execute_sql(&session, "INSERT INTO archive VALUES (1, 'cold row')")
        .unwrap();
    hana.execute_sql(&session, "COMMIT").unwrap();
    let rs = hana
        .execute_sql(&session, "SELECT COUNT(*) FROM archive")
        .unwrap();
    println!("Rows in the extended store after the distributed commit: {rs}\n");

    // --- the Figure 2 time-series representation ------------------
    let mut meters = TimeSeriesTable::new(
        "meters",
        0,
        60_000_000, // one reading per minute
        &["power"],
        Compensation::Linear,
    )
    .unwrap();
    for i in 0..50_000usize {
        let gap = i % 97 == 0;
        let v = 100.0 + (i / 50) as f64 * 0.5;
        meters.push(&[(!gap).then_some(v)]).unwrap();
    }
    let ts = meters.compressed_bytes();
    let row = meters.row_layout_bytes();
    let col = meters.plain_columnar_bytes();
    println!("Time-series storage (50k energy-meter readings):");
    println!("  row-oriented layout : {row:>9} bytes");
    println!("  plain columnar      : {col:>9} bytes");
    println!("  time-series engine  : {ts:>9} bytes");
    println!(
        "  factors: {:.1}x vs rows (paper: >10x), {:.1}x vs columnar (paper: >3x)\n",
        row as f64 / ts as f64,
        col as f64 / ts as f64
    );

    println!("{}", hana.landscape_info());
}
