//! E13 — partitioned scale-out execution: distributed plans must return
//! byte-identical results to single-node plans, ship partial aggregates
//! instead of rows, prune partitions from predicates, and degrade under
//! link faults along the SDA error taxonomy.

use std::sync::Mutex;

use hana_data_platform::dist::FaultPlan;
use hana_data_platform::platform::{HanaPlatform, Session};
use hana_data_platform::query::TableSource;
use hana_data_platform::{Row, Value};
use proptest::prelude::*;

/// The `hana_dist_*` counters are process-global; tests that assert
/// exact deltas serialize on this lock.
static METRICS_LOCK: Mutex<()> = Mutex::new(());

fn counter(name: &str) -> u64 {
    hana_data_platform::obs::registry().counter(name).get()
}

/// A platform with a hash-partitioned table `t` and an identical
/// single-node column table `solo`, both loaded with `rows` rows of
/// `(k = i % 23, v = i)`.
fn setup(parts: usize, rows: usize) -> (HanaPlatform, Session) {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(
        &s,
        &format!(
            "CREATE COLUMN TABLE t (k INTEGER, v INTEGER) \
             PARTITION BY HASH(k) PARTITIONS {parts}"
        ),
    )
    .unwrap();
    hana.execute_sql(&s, "CREATE COLUMN TABLE solo (k INTEGER, v INTEGER)")
        .unwrap();
    let data: Vec<Row> = (0..rows)
        .map(|i| Row::from_values([Value::Int((i % 23) as i64), Value::Int(i as i64)]))
        .collect();
    hana.load_rows(&s, "t", &data).unwrap();
    hana.load_rows(&s, "solo", &data).unwrap();
    (hana, s)
}

fn dist_table(
    hana: &HanaPlatform,
    name: &str,
) -> std::sync::Arc<hana_data_platform::dist::DistTable> {
    match hana.catalog().table(name).unwrap().source {
        TableSource::Distributed(dt) => dt,
        _ => panic!("'{name}' is not distributed"),
    }
}

#[test]
fn partitioned_group_by_is_byte_identical_and_ships_partials() {
    let _g = METRICS_LOCK.lock().unwrap();
    let (hana, s) = setup(4, 5_000);
    let dt = dist_table(&hana, "t");
    assert_eq!(dt.node_count(), 4);
    assert!(
        dt.nodes().iter().all(|n| n.row_count() > 0),
        "hash routing spreads rows over all four nodes"
    );

    let sql = "SELECT k, COUNT(*) AS n, SUM(v) AS total FROM t GROUP BY k ORDER BY k";
    let before = counter("hana_dist_rows_shuffled_total");
    let dist = hana.execute_sql(&s, sql).unwrap();
    let shuffled = counter("hana_dist_rows_shuffled_total") - before;
    let solo = hana
        .execute_sql(&s, &sql.replace("FROM t", "FROM solo"))
        .unwrap();

    assert_eq!(dist.rows.len(), 23);
    assert_eq!(
        dist.rows, solo.rows,
        "distributed GROUP BY is byte-identical"
    );
    // The shuffle carried partial aggregate states, not rows: at most
    // one state per (group, node), far below the 5 000 scanned rows.
    assert!(shuffled > 0, "partials crossed the links");
    assert!(
        shuffled <= 23 * 4,
        "shipped {shuffled} items; expected at most groups x nodes = 92"
    );
}

#[test]
fn selective_predicate_prunes_partitions() {
    let _g = METRICS_LOCK.lock().unwrap();
    let (hana, s) = setup(4, 2_000);

    let scanned0 = counter("hana_dist_partitions_scanned_total");
    let pruned0 = counter("hana_dist_partitions_pruned_total");
    let dist = hana
        .execute_sql(&s, "SELECT COUNT(*) FROM t WHERE k = 7")
        .unwrap();
    let scanned = counter("hana_dist_partitions_scanned_total") - scanned0;
    let pruned = counter("hana_dist_partitions_pruned_total") - pruned0;

    let solo = hana
        .execute_sql(&s, "SELECT COUNT(*) FROM solo WHERE k = 7")
        .unwrap();
    assert_eq!(dist.scalar().unwrap(), solo.scalar().unwrap());
    assert_eq!(scanned, 1, "a point predicate hits exactly one partition");
    assert_eq!(pruned, 3, "the other three partitions were skipped");
}

#[test]
fn range_partitioning_prunes_order_predicates() {
    let _g = METRICS_LOCK.lock().unwrap();
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE r (k INTEGER, v INTEGER) \
         PARTITION BY RANGE(k) SPLIT AT (6, 12, 18)",
    )
    .unwrap();
    let data: Vec<Row> = (0..1_000)
        .map(|i| Row::from_values([Value::Int((i % 23) as i64), Value::Int(i as i64)]))
        .collect();
    hana.load_rows(&s, "r", &data).unwrap();

    let pruned0 = counter("hana_dist_partitions_pruned_total");
    let rs = hana
        .execute_sql(&s, "SELECT k, v FROM r WHERE k < 6 ORDER BY v")
        .unwrap();
    let pruned = counter("hana_dist_partitions_pruned_total") - pruned0;
    assert_eq!(
        pruned, 3,
        "k < 6 lives entirely in the first range partition"
    );
    let expected: usize = (0..1_000).filter(|i| i % 23 < 6).count();
    assert_eq!(rs.rows.len(), expected);
    assert!(rs.rows.iter().all(|r| r[0] < Value::Int(6)));
}

#[test]
fn profile_shows_exchange_spans_and_explain_shows_dist_scan() {
    let (hana, s) = setup(4, 1_000);

    let explain = hana
        .execute_sql(&s, "EXPLAIN SELECT k FROM t WHERE k = 3")
        .unwrap();
    let text: Vec<String> = explain.rows.iter().map(|r| format!("{:?}", r[0])).collect();
    assert!(
        text.iter().any(|l| l.contains("Dist Scan")),
        "EXPLAIN shows the distributed scan: {text:?}"
    );

    let (_rs, profile) = hana
        .profile_query(&s, "SELECT k, SUM(v) AS total FROM t GROUP BY k")
        .unwrap();
    let rendered = profile.render();
    assert!(
        rendered.contains("dist_scan[t]"),
        "profile shows the scan: {rendered}"
    );
    assert!(
        rendered.contains("exchange[partial_agg]"),
        "profile shows the partial-aggregate exchange: {rendered}"
    );
    assert_eq!(profile.spans_started, profile.spans_finished);

    let (_rs, profile) = hana
        .profile_query(&s, "SELECT k, v FROM t WHERE k >= 5")
        .unwrap();
    let rendered = profile.render();
    assert!(
        rendered.contains("exchange[gather]"),
        "plain distributed scans gather over the links: {rendered}"
    );
}

#[test]
fn broadcast_join_matches_single_node() {
    let (hana, s) = setup(4, 3_000);
    hana.execute_sql(&s, "CREATE COLUMN TABLE d (k INTEGER, name VARCHAR(8))")
        .unwrap();
    let dim: Vec<Row> = (0..23)
        .filter(|k| k % 2 == 0)
        .map(|k| Row::from_values([Value::Int(k), Value::from(format!("g{k}").as_str())]))
        .collect();
    hana.load_rows(&s, "d", &dim).unwrap();

    let sql = "SELECT a.v, d.name FROM t AS a JOIN d ON a.k = d.k ORDER BY a.v";
    let (dist, profile) = hana.profile_query(&s, sql).unwrap();
    let solo = hana
        .execute_sql(&s, &sql.replace("FROM t ", "FROM solo "))
        .unwrap();
    assert!(!dist.rows.is_empty());
    assert_eq!(dist.rows, solo.rows, "broadcast join is byte-identical");
    assert!(
        profile.render().contains("exchange[broadcast]"),
        "small build side was broadcast: {}",
        profile.render()
    );

    // Left outer: unmatched probe rows pad with NULLs on every node.
    let sql = "SELECT a.v, d.name FROM t AS a LEFT JOIN d ON a.k = d.k ORDER BY a.v";
    let dist = hana.execute_sql(&s, sql).unwrap();
    let solo = hana
        .execute_sql(&s, &sql.replace("FROM t ", "FROM solo "))
        .unwrap();
    assert_eq!(dist.rows.len(), 3_000);
    assert_eq!(dist.rows, solo.rows, "left outer broadcast join matches");
}

#[test]
fn routed_dml_keeps_fragments_consistent() {
    let (hana, s) = setup(4, 200);
    let dt = dist_table(&hana, "t");

    // Routed INSERT lands at the key's home node.
    hana.execute_sql(&s, "INSERT INTO t VALUES (99, 7777)")
        .unwrap();
    hana.execute_sql(&s, "INSERT INTO solo VALUES (99, 7777)")
        .unwrap();
    let home = dt.spec().partition_of(&Value::Int(99));
    let rs = hana
        .execute_sql(&s, "SELECT k, v FROM t WHERE v = 7777")
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
    let cid = hana.transaction_manager().current_snapshot().cid();
    let node_rows = dt.nodes()[home]
        .scan(
            &[(
                "v".to_string(),
                hana_data_platform::columnar::ColumnPredicate::Eq(Value::Int(7777)),
            )],
            cid,
        )
        .unwrap();
    assert_eq!(node_rows.len(), 1, "insert routed to the home fragment");

    // A partition-key UPDATE moves the row to its new home node.
    hana.execute_sql(&s, "UPDATE t SET k = 5 WHERE v = 7777")
        .unwrap();
    hana.execute_sql(&s, "UPDATE solo SET k = 5 WHERE v = 7777")
        .unwrap();
    let cid = hana.transaction_manager().current_snapshot().cid();
    for (id, node) in dt.nodes().iter().enumerate() {
        let hits = node
            .scan(
                &[(
                    "v".to_string(),
                    hana_data_platform::columnar::ColumnPredicate::Eq(Value::Int(7777)),
                )],
                cid,
            )
            .unwrap();
        let expected = usize::from(id == dt.spec().partition_of(&Value::Int(5)));
        assert_eq!(hits.len(), expected, "node {id} after key update");
    }

    // DELETE and MERGE DELTA apply across all fragments.
    hana.execute_sql(&s, "DELETE FROM t WHERE k = 3").unwrap();
    hana.execute_sql(&s, "DELETE FROM solo WHERE k = 3")
        .unwrap();
    hana.execute_sql(&s, "MERGE DELTA OF t").unwrap();
    let dist = hana
        .execute_sql(&s, "SELECT k, v FROM t ORDER BY v")
        .unwrap();
    let solo = hana
        .execute_sql(&s, "SELECT k, v FROM solo ORDER BY v")
        .unwrap();
    assert_eq!(dist.rows, solo.rows, "DML streams stayed in sync");
}

#[test]
fn backup_restore_preserves_partitioning() {
    let (hana, s) = setup(4, 500);
    let backup = hana.backup(&s).unwrap();
    // Mutate after the backup point, then restore.
    hana.execute_sql(&s, "DELETE FROM t WHERE k >= 0").unwrap();
    hana.restore(&s, &backup).unwrap();
    let kinds = hana.catalog().list_tables();
    assert!(
        kinds.contains(&("t".to_string(), "DISTRIBUTED".to_string())),
        "restored table keeps its DISTRIBUTED kind: {kinds:?}"
    );
    let dt = dist_table(&hana, "t");
    assert_eq!(dt.node_count(), 4, "partition count survives restore");
    let dist = hana
        .execute_sql(&s, "SELECT k, v FROM t ORDER BY v")
        .unwrap();
    let solo = hana
        .execute_sql(&s, "SELECT k, v FROM solo ORDER BY v")
        .unwrap();
    assert_eq!(dist.rows, solo.rows);
}

#[test]
fn shuffle_faults_degrade_along_the_sda_taxonomy() {
    let (hana, s) = setup(4, 1_000);
    let dt = dist_table(&hana, "t");

    // A permanently failing link: the query errors with a remote kind
    // and returns no partial result.
    dt.link(0).set_fault(Some(
        FaultPlan::flaky(0xC4A05, 1.0).with_permanent_share(1.0),
    ));
    let err = hana
        .execute_sql(&s, "SELECT k, v FROM t")
        .expect_err("a dead link fails the gather");
    assert_eq!(err.kind(), "remote", "permanent faults are not retried");

    // A flaky link recovers within the retry budget: results complete,
    // nothing lost or duplicated, and the retries are visible.
    dt.link(0).set_fault(Some(FaultPlan::flaky(0xC4A05, 0.4)));
    let dist = hana
        .execute_sql(&s, "SELECT k, v FROM t ORDER BY v")
        .unwrap();
    let solo = hana
        .execute_sql(&s, "SELECT k, v FROM solo ORDER BY v")
        .unwrap();
    assert_eq!(
        dist.rows, solo.rows,
        "retries neither lose nor duplicate rows"
    );
    assert!(
        dt.link(0).stats().faults > 0,
        "the flaky link did inject faults"
    );

    dt.link(0).set_fault(None);
}

proptest! {
    /// Distributed scan, group-by and join return exactly the
    /// single-node results across partition counts 1–8 and both
    /// partitioning schemes.
    #[test]
    fn distributed_queries_match_single_node(
        parts in 1usize..9,
        hash_scheme in any::<bool>(),
        seed in any::<u64>(),
        n in 50usize..250,
        cutoff in 0i64..20,
    ) {
        let hana = HanaPlatform::new_in_memory();
        let s = hana.connect("SYSTEM", "manager").unwrap();
        let clause = if hash_scheme {
            format!("PARTITION BY HASH(k) PARTITIONS {parts}")
        } else {
            // `parts` range partitions need `parts - 1` ascending
            // split points (at least one).
            let splits: Vec<String> = (1..parts.max(2)).map(|i| (i as i64 * 3).to_string()).collect();
            format!("PARTITION BY RANGE(k) SPLIT AT ({})", splits.join(", "))
        };
        hana.execute_sql(
            &s,
            &format!("CREATE COLUMN TABLE t (k INTEGER, v INTEGER) {clause}"),
        )
        .unwrap();
        hana.execute_sql(&s, "CREATE COLUMN TABLE solo (k INTEGER, v INTEGER)").unwrap();
        hana.execute_sql(&s, "CREATE COLUMN TABLE d (k INTEGER, name VARCHAR(8))").unwrap();

        let mut x = seed;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as i64
        };
        let data: Vec<Row> = (0..n)
            .map(|i| Row::from_values([Value::Int(next().rem_euclid(20)), Value::Int(i as i64)]))
            .collect();
        hana.load_rows(&s, "t", &data).unwrap();
        hana.load_rows(&s, "solo", &data).unwrap();
        let dim: Vec<Row> = (0..20)
            .step_by(3)
            .map(|k| Row::from_values([Value::Int(k), Value::from(format!("g{k}").as_str())]))
            .collect();
        hana.load_rows(&s, "d", &dim).unwrap();

        for sql in [
            format!("SELECT k, v FROM {{}} WHERE k >= {cutoff} ORDER BY v"),
            "SELECT k, COUNT(*) AS n, SUM(v) AS s, MIN(v) AS mn, MAX(v) AS mx \
             FROM {} GROUP BY k ORDER BY k".to_string(),
            format!("SELECT a.v, d.name FROM {{}} AS a JOIN d ON a.k = d.k \
                     WHERE a.k >= {cutoff} ORDER BY a.v"),
        ] {
            let dist = hana.execute_sql(&s, &sql.replace("{}", "t")).unwrap();
            let solo = hana.execute_sql(&s, &sql.replace("{}", "solo")).unwrap();
            prop_assert_eq!(&dist.rows, &solo.rows, "query: {}", sql);
        }
    }
}
