//! E7 — hybrid tables and the built-in aging mechanism (§3.1).

use hana_data_platform::platform::HanaPlatform;
use hana_data_platform::Value;

fn setup() -> (HanaPlatform, hana_data_platform::platform::Session) {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE orders \
         (id INTEGER, year INTEGER, total DOUBLE, aged BOOLEAN) \
         USING HYBRID EXTENDED STORAGE AGING ON aged",
    )
    .unwrap();
    (hana, s)
}

#[test]
fn aging_moves_rows_and_preserves_query_results() {
    let (hana, s) = setup();
    let rows: Vec<hana_data_platform::Row> = (0..2000)
        .map(|i| {
            let year = 2010 + (i % 4);
            hana_data_platform::Row::from_values([
                Value::Int(i),
                Value::Int(year),
                Value::Double(i as f64),
                Value::Bool(year <= 2011),
            ])
        })
        .collect();
    hana.load_rows(&s, "orders", &rows).unwrap();

    let q = "SELECT year, COUNT(*) AS n, SUM(total) AS t FROM orders \
             GROUP BY year ORDER BY year";
    let before = hana.execute_sql(&s, q).unwrap();

    let moved = hana.run_aging(&s, "orders").unwrap();
    assert_eq!(moved, 1000, "half the rows carried the flag");
    assert_eq!(
        hana.iq().row_count("orders__cold", u64::MAX - 1).unwrap(),
        1000
    );

    let after = hana.execute_sql(&s, q).unwrap();
    assert_eq!(before, after, "the logical table is unchanged by aging");

    // Predicates prune into both partitions.
    let rs = hana
        .execute_sql(&s, "SELECT COUNT(*) FROM orders WHERE year = 2010")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(500));
    // The plan uses the union strategy.
    let plan = hana
        .execute_sql(&s, "EXPLAIN SELECT COUNT(*) FROM orders WHERE year = 2010")
        .unwrap();
    let text: String = plan.rows.iter().map(|r| r[0].to_string()).collect();
    assert!(text.contains("Union Plan"), "{text}");
}

#[test]
fn inserts_after_aging_land_hot_and_age_later() {
    let (hana, s) = setup();
    hana.execute_sql(&s, "INSERT INTO orders VALUES (1, 2010, 5.0, true)")
        .unwrap();
    assert_eq!(hana.run_aging(&s, "orders").unwrap(), 1);
    // New data lands hot again.
    hana.execute_sql(&s, "INSERT INTO orders VALUES (2, 2024, 7.0, false)")
        .unwrap();
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM orders").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(2));
    // Flip the flag via UPDATE, age again.
    hana.execute_sql(&s, "UPDATE orders SET aged = true WHERE id = 2")
        .unwrap();
    assert_eq!(hana.run_aging(&s, "orders").unwrap(), 1);
    assert_eq!(
        hana.iq().row_count("orders__cold", u64::MAX - 1).unwrap(),
        2
    );
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM orders").unwrap();
    assert_eq!(
        rs.scalar().unwrap(),
        &Value::Int(2),
        "still one logical table"
    );
}

#[test]
fn hybrid_tables_join_with_local_tables() {
    let (hana, s) = setup();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE years (y INTEGER, label VARCHAR(10))",
    )
    .unwrap();
    for y in 2010..2014 {
        hana.execute_sql(&s, &format!("INSERT INTO years VALUES ({y}, 'Y{y}')"))
            .unwrap();
    }
    for i in 0..100 {
        hana.execute_sql(
            &s,
            &format!(
                "INSERT INTO orders VALUES ({i}, {}, {i}.0, {})",
                2010 + i % 4,
                i % 2 == 0
            ),
        )
        .unwrap();
    }
    hana.run_aging(&s, "orders").unwrap();
    let rs = hana
        .execute_sql(
            &s,
            "SELECT y.label, COUNT(*) AS n FROM orders o JOIN years y ON o.year = y.y \
             GROUP BY y.label ORDER BY y.label",
        )
        .unwrap();
    assert_eq!(rs.len(), 4);
    assert!(rs.rows.iter().all(|r| r[1] == Value::Int(25)));
}

#[test]
fn ddl_validation() {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    // Hybrid requires an aging clause.
    assert!(hana
        .execute_sql(
            &s,
            "CREATE COLUMN TABLE t (a INTEGER) USING HYBRID EXTENDED STORAGE"
        )
        .is_err());
    // The aging column must exist and be boolean.
    assert!(hana
        .execute_sql(
            &s,
            "CREATE COLUMN TABLE t (a INTEGER) USING HYBRID EXTENDED STORAGE AGING ON missing"
        )
        .is_err());
    assert!(hana
        .execute_sql(
            &s,
            "CREATE COLUMN TABLE t (a INTEGER) USING HYBRID EXTENDED STORAGE AGING ON a"
        )
        .is_err());
    // Aging a non-hybrid table fails.
    hana.execute_sql(&s, "CREATE COLUMN TABLE plain (a INTEGER)")
        .unwrap();
    assert!(hana.run_aging(&s, "plain").is_err());
}
