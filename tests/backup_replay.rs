//! Satellite of E15 — backup/restore interop with WAL replay: restoring
//! a backup taken mid-workload and re-applying the log after the
//! backup's snapshot CID must yield state identical to the uninterrupted
//! execution, over random DML mixes.

use std::path::PathBuf;

use hana_data_platform::platform::{HanaPlatform, Session};
use hana_data_platform::{Row, Value};
use proptest::test_runner::TestRng;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hana-bkrep-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One random DML statement against tables `w` (column) and `r` (row).
fn random_dml(rng: &mut TestRng, i: u64) -> String {
    match rng.below(10) {
        0..=4 => format!("INSERT INTO w VALUES ({}, {})", rng.below(15), i),
        5 => format!("UPDATE w SET v = {} WHERE k = {}", 1000 + i, rng.below(15)),
        6 => format!("DELETE FROM w WHERE k = {}", rng.below(15)),
        7..=8 => format!("INSERT INTO r VALUES ({}, 'v{}')", i, rng.below(50)),
        _ => format!("UPDATE r SET s = 's{}' WHERE k > {}", i, rng.below(40)),
    }
}

fn table_state(hana: &HanaPlatform, s: &Session) -> (Vec<Row>, Vec<Row>) {
    let w = hana
        .execute_sql(s, "SELECT k, v FROM w ORDER BY k, v")
        .unwrap()
        .rows;
    let r = hana
        .execute_sql(s, "SELECT k, s FROM r ORDER BY k, s")
        .unwrap()
        .rows;
    (w, r)
}

#[test]
fn restore_plus_replay_equals_uninterrupted_execution() {
    let mut rng = TestRng::deterministic("restore_plus_replay");
    for case in 0..10 {
        let dir = scratch(&format!("case-{case}"));
        let log = dir.join("wal.log");

        // Uninterrupted execution: DDL, then a random DML mix with a
        // backup captured at a random midpoint.
        let a = HanaPlatform::with_log_file(&log).unwrap();
        let sa = a.connect("SYSTEM", "manager").unwrap();
        a.execute_sql(&sa, "CREATE COLUMN TABLE w (k INTEGER, v INTEGER)")
            .unwrap();
        a.execute_sql(&sa, "CREATE ROW TABLE r (k INTEGER, s VARCHAR(20))")
            .unwrap();
        let seed: Vec<Row> = (0..8)
            .map(|i| Row::from_values([Value::Int(i % 5), Value::Int(i)]))
            .collect();
        a.load_rows(&sa, "w", &seed).unwrap();

        let ops = 10 + rng.below(25);
        let backup_at = rng.below(ops);
        let mut backup = None;
        for i in 0..ops {
            if i == backup_at {
                backup = Some(a.backup(&sa).unwrap());
            }
            // DML may legitimately match nothing; it must still parse.
            a.execute_sql(&sa, &random_dml(&mut rng, i)).unwrap();
        }
        let backup = backup.unwrap();
        let expected = table_state(&a, &sa);

        // Interrupted execution: a fresh platform restores the
        // mid-workload backup, then rolls the log forward past the
        // backup's snapshot CID.
        let b = HanaPlatform::new_in_memory();
        let sb = b.connect("SYSTEM", "manager").unwrap();
        b.restore(&sb, &backup).unwrap();
        b.replay_wal_after(&sb, a.transaction_manager().wal(), backup.cid)
            .unwrap();
        assert_eq!(
            table_state(&b, &sb),
            expected,
            "case {case}: restore@cid{} + replay diverged from uninterrupted run",
            backup.cid
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
