//! E10 — distributed transactions across the in-memory store and the
//! extended storage: atomicity under failure, in-doubt handling,
//! snapshot isolation across engines.

use std::sync::Arc;

use hana_data_platform::platform::HanaPlatform;
use hana_data_platform::txn::TwoPhaseParticipant;
use hana_data_platform::Value;

fn setup() -> (HanaPlatform, hana_data_platform::platform::Session) {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(&s, "CREATE COLUMN TABLE hot (a INTEGER)")
        .unwrap();
    hana.execute_sql(&s, "CREATE TABLE cold (a INTEGER) USING EXTENDED STORAGE")
        .unwrap();
    (hana, s)
}

#[test]
fn atomic_commit_across_engines() {
    let (hana, s) = setup();
    hana.execute_sql(&s, "BEGIN").unwrap();
    for i in 0..10 {
        hana.execute_sql(&s, &format!("INSERT INTO hot VALUES ({i})"))
            .unwrap();
        hana.execute_sql(&s, &format!("INSERT INTO cold VALUES ({i})"))
            .unwrap();
    }
    // Another session sees nothing before commit.
    let other = hana.connect("SYSTEM", "manager").unwrap();
    let rs = hana
        .execute_sql(&other, "SELECT COUNT(*) FROM cold")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(0));
    hana.execute_sql(&s, "COMMIT").unwrap();
    for table in ["hot", "cold"] {
        let rs = hana
            .execute_sql(&other, &format!("SELECT COUNT(*) FROM {table}"))
            .unwrap();
        assert_eq!(rs.scalar().unwrap(), &Value::Int(10), "{table}");
    }
}

#[test]
fn extended_store_failure_aborts_whole_transaction() {
    let (hana, s) = setup();
    hana.execute_sql(&s, "BEGIN").unwrap();
    hana.execute_sql(&s, "INSERT INTO hot VALUES (1)").unwrap();
    hana.execute_sql(&s, "INSERT INTO cold VALUES (1)").unwrap();
    hana.iq().set_failing(true);
    let err = hana.execute_sql(&s, "COMMIT").unwrap_err();
    assert_eq!(err.kind(), "transaction");
    hana.iq().set_failing(false);
    // §3.1: "the entire transaction will be aborted" — both sides empty.
    for table in ["hot", "cold"] {
        let rs = hana
            .execute_sql(&s, &format!("SELECT COUNT(*) FROM {table}"))
            .unwrap();
        assert_eq!(rs.scalar().unwrap(), &Value::Int(0), "{table}");
    }
    // The platform is fully usable afterwards.
    hana.execute_sql(&s, "INSERT INTO cold VALUES (7)").unwrap();
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM cold").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(1));
}

#[test]
fn failure_during_access_aborts_query() {
    let (hana, s) = setup();
    hana.execute_sql(&s, "INSERT INTO cold VALUES (1)").unwrap();
    hana.iq().set_failing(true);
    // "every access to a SAP HANA table may throw a runtime error" —
    // queries touching the extended store abort.
    let err = hana
        .execute_sql(&s, "SELECT COUNT(*) FROM cold")
        .unwrap_err();
    assert_eq!(err.kind(), "remote_unavailable");
    assert!(err.is_retryable(), "an outage is transient, not permanent");
    // Local tables keep working through the outage.
    assert!(hana.execute_sql(&s, "SELECT COUNT(*) FROM hot").is_ok());
    hana.iq().set_failing(false);
}

#[test]
fn in_doubt_transactions_surface_and_can_be_aborted() {
    // Drive the coordinator directly: prepare succeeds, then the
    // commit notification to the extended store is lost.
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(&s, "CREATE TABLE cold (a INTEGER) USING EXTENDED STORAGE")
        .unwrap();
    let tm = hana.transaction_manager();
    let iq = Arc::clone(hana.iq());
    let txn = tm.begin();
    iq.buffer_insert(
        txn.tid,
        "cold",
        vec![hana_data_platform::Row::from_values([Value::Int(1)])],
    )
    .unwrap();
    // A participant whose phase-2 notification is lost: prepare durably
    // stages the chunk, then the connection drops before commit arrives.
    struct LostCommit(Arc<hana_data_platform::iq::IqEngine>);
    impl TwoPhaseParticipant for LostCommit {
        fn name(&self) -> &str {
            self.0.name()
        }
        fn prepare(&self, tid: u64) -> hana_data_platform::Result<hana_data_platform::txn::Vote> {
            self.0.prepare(tid)
        }
        fn commit(&self, _tid: u64, _cid: u64) -> hana_data_platform::Result<()> {
            Err(hana_data_platform::HanaError::remote_unavailable(
                "connection lost during phase 2",
            ))
        }
        fn abort(&self, tid: u64) -> hana_data_platform::Result<()> {
            self.0.abort(tid)
        }
    }
    let flaky: Vec<Arc<dyn TwoPhaseParticipant>> = vec![Arc::new(LostCommit(Arc::clone(&iq)))];
    let tid = txn.tid;
    // The coordinator's decision is durable; commit succeeds (early
    // ack) and the unreachable participant becomes in-doubt.
    tm.commit(txn, &flaky).unwrap();
    let in_doubt = tm.in_doubt();
    assert_eq!(in_doubt.len(), 1);
    assert_eq!(in_doubt[0].0, tid);
    // "Clients will have the ability to manually abort these in-doubt
    // transactions."
    let healthy: Vec<Arc<dyn TwoPhaseParticipant>> = vec![iq.clone()];
    tm.abort_in_doubt(tid, &healthy).unwrap();
    assert!(tm.in_doubt().is_empty());
    assert_eq!(iq.row_count("cold", u64::MAX - 1).unwrap(), 0);
}

#[test]
fn snapshot_isolation_across_engines() {
    let (hana, s) = setup();
    hana.execute_sql(&s, "INSERT INTO cold VALUES (1)").unwrap();
    // A long-running reader pins its snapshot.
    let reader = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(&reader, "BEGIN").unwrap();
    let rs = hana
        .execute_sql(&reader, "SELECT COUNT(*) FROM cold")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(1));
    // A concurrent writer commits more rows.
    hana.execute_sql(&s, "INSERT INTO cold VALUES (2), (3)")
        .unwrap();
    // The reader still sees its snapshot…
    let rs = hana
        .execute_sql(&reader, "SELECT COUNT(*) FROM cold")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(1), "repeatable read");
    hana.execute_sql(&reader, "COMMIT").unwrap();
    // …and the new data afterwards.
    let rs = hana
        .execute_sql(&reader, "SELECT COUNT(*) FROM cold")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(3));
}

#[test]
fn read_only_transactions_skip_phase_two() {
    let (hana, s) = setup();
    hana.execute_sql(&s, "INSERT INTO hot VALUES (1)").unwrap();
    hana.execute_sql(&s, "BEGIN").unwrap();
    hana.execute_sql(&s, "SELECT COUNT(*) FROM hot").unwrap();
    // A pure read commits fine even while the extended store is down —
    // the read-only optimization of the improved 2PC skips it.
    hana.iq().set_failing(false);
    hana.execute_sql(&s, "COMMIT").unwrap();
}
