//! Observability acceptance tests: `observability_snapshot()` must show
//! non-zero exec, SDA and IQ activity after a federated query under
//! chaos injection, and `profile_query()` must yield a profile tree
//! whose span wall times nest consistently. The property sweep at the
//! bottom checks span accounting and registry monotonicity across
//! scan, group-by and federated plan shapes.

use std::sync::Arc;
use std::time::Duration;

use hana_data_platform::hadoop::{Hdfs, Hive, MrCluster, MrConfig, MrFunctionRegistry};
use hana_data_platform::platform::{HanaPlatform, Session};
use hana_data_platform::sda::{BreakerConfig, ChaosConfig, RemoteCacheConfig, RetryPolicy};
use hana_data_platform::{DataType, Row, Schema, Value};
use proptest::prelude::*;

/// Platform with one Hive remote source (`hive1`) holding an
/// `orders` table, mirroring the remote-materialization tests.
fn federated_setup(remote_rows: i64) -> (Arc<HanaPlatform>, Session, Arc<Hive>) {
    let mr = Arc::new(MrCluster::new(
        Arc::new(Hdfs::new(4)),
        MrConfig {
            worker_slots: 4,
            job_startup: Duration::from_micros(200),
            task_startup: Duration::from_micros(20),
        },
    ));
    let hive = Arc::new(Hive::new(Arc::clone(&mr)));
    hive.create_table(
        "orders",
        Schema::of(&[
            ("o_id", DataType::Int),
            ("o_status", DataType::Varchar),
            ("o_total", DataType::Double),
        ]),
    )
    .unwrap();
    let rows: Vec<Row> = (0..remote_rows)
        .map(|i| {
            Row::from_values([
                Value::Int(i),
                Value::from(if i % 2 == 0 { "OPEN" } else { "DONE" }),
                Value::Double(i as f64),
            ])
        })
        .collect();
    hive.load("orders", &rows).unwrap();

    let hana = Arc::new(HanaPlatform::new_in_memory());
    let session = hana.connect("SYSTEM", "manager").unwrap();
    hana.attach_hadoop(Arc::clone(&hive), Arc::new(MrFunctionRegistry::new(mr)));
    hana.execute_sql(
        &session,
        "CREATE REMOTE SOURCE HIVE1 ADAPTER \"hiveodbc\" CONFIGURATION 'DSN=hive1'",
    )
    .unwrap();
    hana.execute_sql(&session, "CREATE VIRTUAL TABLE orders AT hive1.d.d.orders")
        .unwrap();
    (hana, session, hive)
}

/// Generous retries with microsecond backoff so chaos-injected calls
/// still converge quickly.
fn resilient_federation_config() -> RemoteCacheConfig {
    RemoteCacheConfig::default()
        .with_retry(
            RetryPolicy::default()
                .with_max_attempts(8)
                .with_base_backoff(Duration::from_micros(100))
                .with_max_backoff(Duration::from_millis(2)),
        )
        .with_breaker(
            BreakerConfig::default()
                .with_failure_threshold(64)
                .with_cooldown(Duration::from_millis(5)),
        )
}

/// A column table big enough (>= 65_536 rows) to cross the executor's
/// parallel-scan threshold, so the morsel pool actually runs.
fn load_big_lineitem(hana: &HanaPlatform, s: &Session) {
    hana.execute_sql(
        s,
        "CREATE COLUMN TABLE lineitem (l_id INTEGER, l_status VARCHAR(4), l_total DOUBLE)",
    )
    .unwrap();
    let rows: Vec<Row> = (0..70_000)
        .map(|i| {
            Row::from_values([
                Value::Int(i),
                Value::from(if i % 3 == 0 { "A" } else { "B" }),
                Value::Double((i % 997) as f64),
            ])
        })
        .collect();
    hana.load_rows(s, "lineitem", &rows).unwrap();
}

const FEDERATED_QUERY: &str = "SELECT o_status, COUNT(*) AS n, SUM(o_total) AS total \
                               FROM orders GROUP BY o_status";
const GROUP_BY_QUERY: &str = "SELECT l_status, COUNT(*) AS n, SUM(l_total) AS total \
                              FROM lineitem GROUP BY l_status";

#[test]
fn snapshot_sees_exec_sda_and_iq_after_federated_chaos_query() {
    let (hana, s, _hive) = federated_setup(2_000);
    hana.set_remote_cache_config(resilient_federation_config());
    hana.inject_chaos(
        "hive1",
        ChaosConfig {
            failure_rate: 0.6,
            timeout_share: 0.5,
            ..ChaosConfig::default()
        },
    )
    .unwrap();

    // Exec traffic: parallel scan + aggregation over 70k local rows.
    load_big_lineitem(&hana, &s);
    hana.execute_sql(&s, GROUP_BY_QUERY).unwrap();

    // IQ traffic: extended-storage table read twice (miss then hit).
    hana.execute_sql(
        &s,
        "CREATE TABLE coldlog (id INTEGER, sev VARCHAR(8)) USING EXTENDED STORAGE",
    )
    .unwrap();
    let rows: Vec<Row> = (0..2_000)
        .map(|i| Row::from_values([Value::Int(i), Value::from("INFO")]))
        .collect();
    hana.load_rows(&s, "coldlog", &rows).unwrap();
    // Drop the buffer cache so the first scan reads pages cold; the
    // second scan then hits the warmed cache.
    hana.iq().cache().clear();
    hana.execute_sql(&s, "SELECT COUNT(*) AS n FROM coldlog")
        .unwrap();
    hana.execute_sql(&s, "SELECT COUNT(*) AS n FROM coldlog")
        .unwrap();

    // SDA traffic: several federated round trips through the fault
    // injector; retries are deterministic in (seed, call index).
    for _ in 0..6 {
        hana.execute_sql(&s, FEDERATED_QUERY).unwrap();
    }

    let snap = hana.observability_snapshot();

    // Exec: the pool scattered morsels for the big scan.
    assert!(snap.counter("hana_exec_morsels_total") > 0, "{snap:?}");
    assert!(snap.counter("hana_exec_tasks_total") > 0);
    assert!(snap.counter("hana_exec_scatters_total") > 0);
    assert!(snap.gauge("hana_exec_workers") > 0);

    // SDA: attempts recorded per source, with round-trip latencies;
    // a 60% failure rate over 6+ calls must have burned retries.
    assert!(snap.counter("hana_sda_attempts_total_hive1") >= 6);
    assert!(snap.counter_sum("hana_sda_retries_total") > 0, "{snap:?}");
    let rt = snap.histogram("hana_sda_roundtrip_ns_hive1");
    assert!(rt.count >= 6);
    assert!(rt.p50 <= rt.p95 && rt.p95 <= rt.p99);

    // IQ: pages were read from extended storage and the second scan
    // hit the buffer cache.
    assert!(snap.counter("hana_iq_pages_read_total") > 0);
    assert!(snap.counter("hana_iq_cache_hits_total") > 0);
    assert!(snap.gauge("hana_iq_cache_hit_ratio_permille") > 0);

    // Both encodings render the populated registry.
    let prom = snap.to_prometheus();
    assert!(prom.contains("hana_exec_morsels_total"));
    assert!(prom.contains("hana_sda_roundtrip_ns_hive1_count"));
    let json = snap.to_json();
    assert!(json.contains("\"hana_iq_pages_read_total\""));
}

#[test]
fn profile_query_group_by_nests_consistently() {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    load_big_lineitem(&hana, &s);

    let (rs, profile) = hana.profile_query(&s, GROUP_BY_QUERY).unwrap();
    assert_eq!(rs.len(), 2);

    assert_eq!(profile.spans_started, profile.spans_finished);
    assert!(profile.nests_consistently(), "{}", profile.render());
    assert!(profile.total_wall_ns() > 0);

    // query -> plan + group_by -> column_scan[lineitem], with the scan
    // fanned out across the worker pool.
    let root = &profile.roots[0];
    assert_eq!(root.name, "query");
    let group_by = profile.find("group_by").expect("group_by span");
    assert!(group_by.rows.unwrap_or(0) >= 2);
    // Single-column GROUP BY over a base-table scan takes the fused,
    // vid-keyed late-materialization path and marks the span.
    assert!(
        group_by.attrs.iter().any(|(k, v)| k == "fused" && *v == 1),
        "fused group-by should engage: {}",
        profile.render()
    );
    let scan = profile.find("column_scan[lineitem]").expect("scan span");
    assert_eq!(scan.rows, Some(70_000));
    assert!(
        scan.workers.unwrap_or(0) >= 1,
        "parallel scan should engage the pool: {}",
        profile.render()
    );
    assert!(profile.find("plan").is_some());

    let report = profile.render();
    assert!(report.contains("group_by"), "{report}");
    assert!(report.contains("column_scan[lineitem]"), "{report}");
}

#[test]
fn profile_query_federated_records_remote_span() {
    let (hana, s, _hive) = federated_setup(500);
    let (rs, profile) = hana.profile_query(&s, FEDERATED_QUERY).unwrap();
    assert_eq!(rs.len(), 2);
    assert_eq!(profile.spans_started, profile.spans_finished);
    assert!(profile.nests_consistently(), "{}", profile.render());
    let remote = profile
        .find("remote_query[hive1]")
        .expect("remote span in profile");
    assert!(remote.rows.unwrap_or(0) > 0);
    assert!(remote.bytes.unwrap_or(0) > 0);
}

/// Every counter present in `before` must be <= its value in `after`.
fn assert_monotone(
    before: &hana_data_platform::obs::RegistrySnapshot,
    after: &hana_data_platform::obs::RegistrySnapshot,
) {
    for (name, v) in &before.counters {
        assert!(
            after.counter(name) >= *v,
            "counter {name} went backwards: {} -> {}",
            v,
            after.counter(name)
        );
    }
    for (name, h) in &before.histograms {
        let now = after.histogram(name);
        assert!(now.count >= h.count, "histogram {name} count shrank");
        assert!(now.sum >= h.sum, "histogram {name} sum shrank");
    }
}

proptest! {
    /// Across scan / group-by / federated plan shapes: every started
    /// span is finished exactly once, the profile nests, and global
    /// registry snapshots only ever move forward.
    #[test]
    fn profiles_close_spans_and_snapshots_stay_monotone(
        shape in 0u8..3,
        threshold in 0i64..500,
    ) {
        let (hana, s, _hive) = federated_setup(200);
        hana.execute_sql(
            &s,
            "CREATE COLUMN TABLE small (id INTEGER, grp VARCHAR(4), v DOUBLE)",
        )
        .unwrap();
        let rows: Vec<Row> = (0..600)
            .map(|i| {
                Row::from_values([
                    Value::Int(i),
                    Value::from(if i % 2 == 0 { "X" } else { "Y" }),
                    Value::Double(i as f64),
                ])
            })
            .collect();
        hana.load_rows(&s, "small", &rows).unwrap();

        let sql = match shape {
            0 => format!("SELECT id, v FROM small WHERE id >= {threshold}"),
            1 => format!(
                "SELECT grp, COUNT(*) AS n, SUM(v) AS total \
                 FROM small WHERE id >= {threshold} GROUP BY grp"
            ),
            _ => format!(
                "SELECT o_status, COUNT(*) AS n FROM orders \
                 WHERE o_id >= {threshold} GROUP BY o_status"
            ),
        };

        let before = hana.observability_snapshot();
        let (_rs, profile) = hana.profile_query(&s, &sql).unwrap();
        let after = hana.observability_snapshot();

        prop_assert!(profile.spans_started > 0);
        prop_assert_eq!(profile.spans_started, profile.spans_finished);
        prop_assert!(profile.nests_consistently());
        prop_assert_eq!(profile.roots.len(), 1);
        assert_monotone(&before, &after);
    }
}
