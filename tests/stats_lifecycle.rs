//! Statistics lifecycle: synopses are collected at delta-merge and bulk
//! load, versioned in the catalog, kept per-partition for distributed
//! tables, survive backup/restore, and — being advisory — can go stale
//! without ever corrupting results.

use hana_data_platform::columnar::TableStatistics;
use hana_data_platform::platform::{HanaPlatform, Session};
use hana_data_platform::query::{Catalog, TableSource};
use hana_data_platform::{Row, Value};

fn connect() -> (HanaPlatform, Session) {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    (hana, s)
}

fn load(hana: &HanaPlatform, s: &Session, table: &str, n: i64) {
    let rows: Vec<Row> = (0..n)
        .map(|i| Row::from_values([Value::Int(i % 23), Value::Int(i)]))
        .collect();
    hana.load_rows(s, table, &rows).unwrap();
}

fn stats_of(hana: &HanaPlatform, table: &str) -> std::sync::Arc<TableStatistics> {
    hana.catalog()
        .statistics(table)
        .unwrap_or_else(|| panic!("no synopsis for '{table}'"))
        .table
}

/// MERGE DELTA collects a fresh synopsis and stamps it with the catalog
/// version, so cached plans built against the old one are invalidated.
#[test]
fn merge_delta_collects_and_versions_statistics() {
    let (hana, s) = connect();
    hana.execute_sql(&s, "CREATE COLUMN TABLE t (k INTEGER, v INTEGER)")
        .unwrap();
    assert!(
        hana.catalog().statistics("t").is_none(),
        "an empty, never-merged table has no synopsis yet"
    );

    load(&hana, &s, "t", 1_000);
    hana.execute_sql(&s, "MERGE DELTA OF t").unwrap();
    let first = hana.catalog().statistics("t").unwrap();
    assert_eq!(first.table.row_count, 1_000);
    let k = first.table.column("k").unwrap();
    assert_eq!(k.distinct_count, 23);
    assert_eq!(
        (k.min.clone(), k.max.clone()),
        (Some(Value::Int(0)), Some(Value::Int(22)))
    );

    // Grow the table; the next merge refreshes the synopsis and records
    // a strictly newer catalog version.
    load(&hana, &s, "t", 500);
    hana.execute_sql(&s, "MERGE DELTA OF t").unwrap();
    let second = hana.catalog().statistics("t").unwrap();
    assert_eq!(second.table.row_count, 1_500);
    assert!(
        second.version > first.version,
        "refresh must move the synopsis version forward ({} -> {})",
        first.version,
        second.version
    );
}

/// Bulk load alone (no explicit merge) is a statistics trigger too.
#[test]
fn bulk_load_collects_statistics() {
    let (hana, s) = connect();
    hana.execute_sql(&s, "CREATE COLUMN TABLE t (k INTEGER, v INTEGER)")
        .unwrap();
    load(&hana, &s, "t", 400);
    let stats = stats_of(&hana, "t");
    assert_eq!(stats.row_count, 400);
    assert_eq!(stats.column("v").unwrap().distinct_count, 400);
}

/// Backup, diverge, restore: the synopsis describes the restored data,
/// not the divergent pre-restore state.
#[test]
fn statistics_survive_backup_restore() {
    let (hana, s) = connect();
    hana.execute_sql(&s, "CREATE COLUMN TABLE t (k INTEGER, v INTEGER)")
        .unwrap();
    load(&hana, &s, "t", 800);
    hana.execute_sql(&s, "MERGE DELTA OF t").unwrap();
    let backup = hana.backup(&s).unwrap();

    // Diverge: grow the table past the backup point and refresh, so the
    // live synopsis no longer matches the backup image.
    load(&hana, &s, "t", 400);
    hana.execute_sql(&s, "MERGE DELTA OF t").unwrap();
    assert_eq!(stats_of(&hana, "t").row_count, 1_200);

    hana.restore(&s, &backup).unwrap();
    let restored = stats_of(&hana, "t");
    assert_eq!(restored.row_count, 800, "synopsis matches restored data");
    assert_eq!(restored.column("k").unwrap().distinct_count, 23);
    let rs = hana.execute_sql(&s, "SELECT k FROM t").unwrap();
    assert_eq!(rs.rows.len(), 800, "and the data really is back at 800");
}

/// Distributed tables keep one synopsis per partition (feeding skew-aware
/// pricing in hana-dist) plus the merged table-level view; the partition
/// breakdown is consistent with the actual node layout, for both HASH
/// and RANGE (split-point) schemes.
#[test]
fn partitioned_tables_keep_per_partition_statistics() {
    let (hana, s) = connect();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE h (k INTEGER, v INTEGER) PARTITION BY HASH(k) PARTITIONS 4",
    )
    .unwrap();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE r (k INTEGER, v INTEGER) PARTITION BY RANGE(k) SPLIT AT (6, 12, 18)",
    )
    .unwrap();
    for t in ["h", "r"] {
        load(&hana, &s, t, 1_000);
        hana.execute_sql(&s, &format!("MERGE DELTA OF {t}"))
            .unwrap();
        let entry = hana.catalog().statistics(t).unwrap();
        let parts = entry
            .partitions
            .as_ref()
            .unwrap_or_else(|| panic!("'{t}' must carry per-partition synopses"));
        assert_eq!(parts.len(), 4);
        assert_eq!(
            parts.iter().map(|p| p.row_count).sum::<u64>(),
            1_000,
            "partition synopses of '{t}' must add up to the table"
        );
        assert_eq!(entry.table.row_count, 1_000);
        // Cross-check each synopsis against its node's fragment.
        let TableSource::Distributed(dt) = hana.catalog().resolve_table(t).unwrap() else {
            panic!("'{t}' should be distributed");
        };
        for (node, part) in dt.nodes().iter().zip(parts.iter()) {
            assert_eq!(
                part.row_count,
                node.table().read().row_count() as u64,
                "node fragment of '{t}' disagrees with its synopsis"
            );
        }
    }
    // RANGE split points shape the fragments: every partition synopsis
    // of `r` covers a disjoint key band.
    let entry = hana.catalog().statistics("r").unwrap();
    let parts = entry.partitions.as_ref().unwrap();
    let bands: Vec<(Value, Value)> = parts
        .iter()
        .map(|p| {
            let k = p.column("k").unwrap();
            (k.min.clone().unwrap(), k.max.clone().unwrap())
        })
        .collect();
    for pair in bands.windows(2) {
        assert!(
            pair[0].1 < pair[1].0,
            "range bands must not overlap: {bands:?}"
        );
    }
}

/// EXPLAIN provenance: a merged table plans from its synopsis and says
/// so; a table that never merged (delta-only) plans from heuristics.
#[test]
fn explain_reports_estimate_provenance() {
    let (hana, s) = connect();
    hana.execute_sql(&s, "CREATE COLUMN TABLE merged (k INTEGER, v INTEGER)")
        .unwrap();
    load(&hana, &s, "merged", 200);
    hana.execute_sql(&s, "MERGE DELTA OF merged").unwrap();
    hana.execute_sql(&s, "CREATE COLUMN TABLE fresh (k INTEGER, v INTEGER)")
        .unwrap();
    hana.execute_sql(&s, "INSERT INTO fresh (k, v) VALUES (1, 1)")
        .unwrap();

    let explain = |sql: &str| {
        let rs = hana.execute_sql(&s, sql).unwrap();
        rs.rows
            .iter()
            .map(|r| format!("{:?}", r))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let stats_backed = explain("EXPLAIN SELECT v FROM merged WHERE k < 10");
    assert!(
        stats_backed.contains("[stats]"),
        "merged table must plan from its synopsis:\n{stats_backed}"
    );
    let heuristic = explain("EXPLAIN SELECT v FROM fresh WHERE k < 10");
    assert!(
        heuristic.contains("[heuristic]"),
        "never-merged table must fall back to heuristics:\n{heuristic}"
    );
}

/// Unmerged inserts make the synopsis stale; queries still see every
/// row because statistics only steer plans, never filter data.
#[test]
fn stale_statistics_do_not_hide_rows() {
    let (hana, s) = connect();
    hana.execute_sql(&s, "CREATE COLUMN TABLE t (k INTEGER, v INTEGER)")
        .unwrap();
    load(&hana, &s, "t", 100);
    hana.execute_sql(&s, "MERGE DELTA OF t").unwrap();
    assert_eq!(stats_of(&hana, "t").row_count, 100);

    // 50 more rows, all far outside the synopsis' [0, 22] key range,
    // sitting in the unmerged delta.
    for i in 0..50 {
        hana.execute_sql(
            &s,
            &format!("INSERT INTO t (k, v) VALUES ({}, {})", 1_000 + i, i),
        )
        .unwrap();
    }
    let rs = hana
        .execute_sql(&s, "SELECT k FROM t WHERE k >= 1000 ORDER BY k")
        .unwrap();
    assert_eq!(rs.rows.len(), 50, "stale synopsis must not hide delta rows");
    let all = hana.execute_sql(&s, "SELECT k FROM t").unwrap();
    assert_eq!(all.rows.len(), 150);

    // DROP TABLE retires the synopsis with the table.
    hana.execute_sql(&s, "DROP TABLE t").unwrap();
    assert!(hana.catalog().statistics("t").is_none());
}
