//! E4/E5 — the Figure 14/15 shape, asserted end to end at a small scale
//! factor: every query returns identical results in normal, first-cached
//! and steady-cached mode (checked inside the harness); every cache hit
//! is faster than normal execution; the all-remote group benefits more
//! than the mixed group; and materialization overhead stays bounded.

use std::time::Duration;

use hana_bench::{run_materialization_experiment, WorldConfig};

#[test]
fn figure_14_15_shape_reproduced() {
    let config = WorldConfig {
        scale: 0.002,
        seed: 7,
        job_startup: Duration::from_millis(4),
        task_startup: Duration::from_micros(500),
        worker_slots: 4,
        block_size: 1024 * 1024,
        odbc_row_cost_us: 60,
    };
    let rows = run_materialization_experiment(&config).expect("experiment");
    assert_eq!(rows.len(), 12, "all twelve paper queries ran");

    // Figure 14: every query benefits from remote materialization.
    for r in &rows {
        assert!(
            r.benefit_percent() > 0.0,
            "{} must benefit, got {:.1}%",
            r.name,
            r.benefit_percent()
        );
    }
    // The paper's grouping: the all-remote queries gain more than the
    // queries joined with local HANA tables.
    let avg = |all_remote: bool| {
        let v: Vec<f64> = rows
            .iter()
            .filter(|r| r.all_remote == all_remote)
            .map(|r| r.benefit_percent())
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    assert!(
        avg(true) > avg(false),
        "all-remote avg {:.1}% must exceed mixed avg {:.1}%",
        avg(true),
        avg(false)
    );
    assert!(avg(true) > 75.0, "paper: top group gains >75%");

    // Figure 15: the one-time overhead is bounded (the paper's worst
    // case is ~63%; leave generous headroom for timing noise).
    for r in &rows {
        assert!(
            r.overhead_percent() < 150.0,
            "{} overhead {:.1}% looks pathological",
            r.name,
            r.overhead_percent()
        );
    }
}
