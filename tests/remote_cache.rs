//! E3/E11 — remote materialization through the whole platform stack:
//! Figure 12/13 plan behaviour, cache policies, and result equivalence.

use std::sync::Arc;
use std::time::Duration;

use hana_data_platform::hadoop::{Hdfs, Hive, MrCluster, MrConfig, MrFunctionRegistry};
use hana_data_platform::platform::HanaPlatform;
use hana_data_platform::query::Catalog as _;
use hana_data_platform::{DataType, Row, Schema, Value};

fn setup() -> (
    Arc<HanaPlatform>,
    hana_data_platform::platform::Session,
    Arc<Hive>,
) {
    let mr = Arc::new(MrCluster::new(
        Arc::new(Hdfs::new(4)),
        MrConfig {
            worker_slots: 4,
            job_startup: Duration::from_micros(500),
            task_startup: Duration::from_micros(50),
        },
    ));
    let hive = Arc::new(Hive::new(Arc::clone(&mr)));
    hive.create_table(
        "orders",
        Schema::of(&[
            ("o_id", DataType::Int),
            ("o_status", DataType::Varchar),
            ("o_total", DataType::Double),
        ]),
    )
    .unwrap();
    let rows: Vec<Row> = (0..3000)
        .map(|i| {
            Row::from_values([
                Value::Int(i),
                Value::from(if i % 2 == 0 { "OPEN" } else { "DONE" }),
                Value::Double(i as f64),
            ])
        })
        .collect();
    hive.load("orders", &rows).unwrap();

    let hana = Arc::new(HanaPlatform::new_in_memory());
    let session = hana.connect("SYSTEM", "manager").unwrap();
    hana.attach_hadoop(Arc::clone(&hive), Arc::new(MrFunctionRegistry::new(mr)));
    hana.execute_sql(
        &session,
        "CREATE REMOTE SOURCE HIVE1 ADAPTER \"hiveodbc\" CONFIGURATION 'DSN=hive1'",
    )
    .unwrap();
    hana.execute_sql(&session, "CREATE VIRTUAL TABLE orders AT hive1.d.d.orders")
        .unwrap();
    (hana, session, hive)
}

const QUERY: &str = "SELECT o_status, COUNT(*) AS n, SUM(o_total) AS total \
                     FROM orders WHERE o_total >= 100 GROUP BY o_status";

#[test]
fn figure_12_13_cache_rewrites_execution() {
    let (hana, s, hive) = setup();
    hana.set_remote_cache(true, 1_000_000);

    // Figure 12: the shipped plan contains the full query.
    let plan = hana.execute_sql(&s, &format!("EXPLAIN {QUERY}")).unwrap();
    let text: String = plan.rows.iter().map(|r| r[0].to_string() + "\n").collect();
    assert!(text.contains("whole query"), "{text}");
    assert!(text.contains("GROUP BY"), "{text}");

    // Normal execution runs the MR DAG every time.
    let baseline = hana.execute_sql(&s, QUERY).unwrap();
    let jobs_before = hive.cluster().counters().0;
    hana.execute_sql(&s, QUERY).unwrap();
    let jobs_per_run = hive.cluster().counters().0 - jobs_before;
    assert!(jobs_per_run >= 1, "normal mode re-runs the DAG");

    // Hinted: first run materializes (CTAS jobs), second hits the cache
    // with ZERO MapReduce jobs (fetch task only) — the Figure 13 plan.
    let hinted = format!("{QUERY} WITH HINT (USE_REMOTE_CACHE)");
    let first = hana.execute_sql(&s, &hinted).unwrap();
    let jobs_after_mat = hive.cluster().counters().0;
    let second = hana.execute_sql(&s, &hinted).unwrap();
    assert_eq!(
        hive.cluster().counters().0,
        jobs_after_mat,
        "cache hit must not launch MR jobs"
    );

    // Results identical in every mode.
    let key = |rs: &hana_data_platform::ResultSet| {
        let mut v: Vec<Vec<String>> = rs
            .rows
            .iter()
            .map(|r| r.values().iter().map(|x| x.to_string()).collect())
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&baseline), key(&first));
    assert_eq!(key(&baseline), key(&second));
    assert_eq!(hana.catalog().sda().cache.stats().0, 1, "exactly one hit");
}

#[test]
fn cache_policies_enforced_through_platform() {
    let (hana, s, _hive) = setup();

    // Disabled by default (the paper: "disabled by default and can be
    // controlled using the configuration parameter enable_remote_cache").
    let hinted = format!("{QUERY} WITH HINT (USE_REMOTE_CACHE)");
    hana.execute_sql(&s, &hinted).unwrap();
    assert_eq!(
        hana.catalog().sda().cache.stats(),
        (0, 0),
        "disabled = bypass"
    );

    hana.set_remote_cache(true, 1_000_000);
    // Unpredicated queries are never materialized.
    hana.execute_sql(
        &s,
        "SELECT COUNT(*) FROM orders WITH HINT (USE_REMOTE_CACHE)",
    )
    .unwrap();
    assert_eq!(
        hana.catalog().sda().cache.stats(),
        (0, 0),
        "no predicate = bypass"
    );
    // Without the hint, no caching even when enabled.
    hana.execute_sql(&s, QUERY).unwrap();
    assert_eq!(hana.catalog().sda().cache.stats(), (0, 0));
    // With hint + predicate: materialize once, then hit.
    hana.execute_sql(&s, &hinted).unwrap();
    hana.execute_sql(&s, &hinted).unwrap();
    assert_eq!(hana.catalog().sda().cache.stats(), (1, 1));
}

#[test]
fn cache_validity_refreshes_stale_results() {
    let (hana, s, hive) = setup();
    hana.set_remote_cache(true, 1); // one-tick validity
    let hinted = format!("{QUERY} WITH HINT (USE_REMOTE_CACHE)");
    let before = hana.execute_sql(&s, &hinted).unwrap();
    // Modify the Hive table twice: the remote clock advances PAST the
    // one-tick validity window (exactly one tick would still be valid).
    hive.load(
        "orders",
        &[Row::from_values([
            Value::Int(99_999),
            Value::from("OPEN"),
            Value::Double(500.0),
        ])],
    )
    .unwrap();
    hive.load(
        "orders",
        &[Row::from_values([
            Value::Int(99_998),
            Value::from("DONE"),
            Value::Double(50.0), // below the filter; only advances the clock
        ])],
    )
    .unwrap();
    let after = hana.execute_sql(&s, &hinted).unwrap();
    // The refreshed materialization reflects the new row.
    let count = |rs: &hana_data_platform::ResultSet| -> i64 {
        rs.rows.iter().map(|r| r[1].as_i64().unwrap()).sum()
    };
    assert_eq!(count(&after), count(&before) + 1, "refresh saw the new row");
}
