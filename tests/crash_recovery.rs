//! E15 — crash-torture recovery at the platform level: a durable
//! platform killed at an arbitrary byte of its log must reopen to a
//! transactionally consistent committed prefix, for single-node and
//! 4-partition distributed workloads alike.
//!
//! A "crash at byte `k`" is a copy of the WAL directory with the
//! coordinator segments truncated to their first `k` bytes (checkpoint
//! sidecars and partition logs copied intact — they are written
//! atomically / synced before the coordinator's commit record). The
//! sampled matrices run everywhere; the exhaustive every-byte matrix is
//! `#[ignore]`d for the dedicated CI lane.

use std::path::{Path, PathBuf};
use std::time::Duration;

use hana_data_platform::platform::{HanaPlatform, Session};
use hana_data_platform::txn::{LogRecord, Wal, WalConfig};
use hana_data_platform::{Row, Value};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hana-e15-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Per-commit fsync keeps the on-disk layout deterministic and skips
/// the committer thread on the many reopens the matrix does.
fn direct() -> WalConfig {
    WalConfig {
        group_commit_window: Duration::ZERO,
        ..WalConfig::default()
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Coordinator segment files (replay order) and their total size.
fn coordinator_segments(dir: &Path) -> (Vec<PathBuf>, u64) {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".seg"))
        })
        .collect();
    paths.sort();
    let total = paths
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .sum();
    (paths, total)
}

/// Copy the whole WAL directory, then truncate the coordinator segments
/// to their first `k` bytes.
fn crashed_copy(src: &Path, dst: &Path, mut k: u64) {
    let _ = std::fs::remove_dir_all(dst);
    copy_dir(src, dst);
    let (paths, _) = coordinator_segments(dst);
    for p in paths {
        let len = std::fs::metadata(&p).unwrap().len();
        let keep = len.min(k);
        k -= keep;
        if keep == len {
            continue;
        }
        if keep == 0 {
            std::fs::remove_file(&p).unwrap();
        } else {
            std::fs::OpenOptions::new()
                .write(true)
                .open(&p)
                .unwrap()
                .set_len(keep)
                .unwrap();
        }
    }
}

fn ints(hana: &HanaPlatform, s: &Session, sql: &str) -> Vec<i64> {
    hana.execute_sql(s, sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| r.values()[0].as_i64().unwrap())
        .collect()
}

/// Single-node workload: DDL, per-statement inserts, a bulk load and a
/// merge (both checkpoint barriers), then a post-checkpoint suffix.
fn run_single_node_workload(dir: &Path) {
    let (hana, _) = HanaPlatform::open_durable_with(dir, direct()).unwrap();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(&s, "CREATE COLUMN TABLE t (v INTEGER)")
        .unwrap();
    hana.execute_sql(&s, "CREATE ROW TABLE r (k INTEGER, s VARCHAR(20))")
        .unwrap();
    for i in 1..=6 {
        hana.execute_sql(&s, &format!("INSERT INTO t VALUES ({i})"))
            .unwrap();
    }
    hana.execute_sql(&s, "INSERT INTO r VALUES (1, 'one')")
        .unwrap();
    let bulk: Vec<Row> = (7..=12)
        .map(|i| Row::from_values([Value::Int(i)]))
        .collect();
    hana.load_rows(&s, "t", &bulk).unwrap(); // checkpoint barrier
    hana.execute_sql(&s, "MERGE DELTA OF t").unwrap(); // checkpoint barrier
    for i in 13..=18 {
        hana.execute_sql(&s, &format!("INSERT INTO t VALUES ({i})"))
            .unwrap();
    }
    hana.execute_sql(&s, "UPDATE r SET s = 'uno' WHERE k = 1")
        .unwrap();
}

/// The committed-prefix invariant for the single-node workload: `t`
/// holds exactly `1..=m` for some `m`, monotone in the crash point.
fn check_single_node_matrix(src: &Path, points: impl Iterator<Item = u64>) {
    let copy = scratch("sn-copy");
    let mut prev_m = 0usize;
    let mut prev_k = 0u64;
    for k in points {
        crashed_copy(src, &copy, k);
        let (hana, _) = HanaPlatform::open_durable_with(&copy, direct()).unwrap();
        let s = hana.connect("SYSTEM", "manager").unwrap();
        let m = if hana.catalog().has_table("t") {
            let got = ints(&hana, &s, "SELECT v FROM t ORDER BY v");
            let expect: Vec<i64> = (1..=got.len() as i64).collect();
            assert_eq!(got, expect, "crash at byte {k}: not a committed prefix");
            got.len()
        } else {
            0
        };
        assert!(
            m >= prev_m,
            "crash at byte {k} recovered fewer rows ({m}) than byte {prev_k} ({prev_m})"
        );
        // Idempotence: recovering the recovered directory is a no-op.
        drop(hana);
        let (again, _) = HanaPlatform::open_durable_with(&copy, direct()).unwrap();
        let s2 = again.connect("SYSTEM", "manager").unwrap();
        if m > 0 {
            assert_eq!(
                ints(&again, &s2, "SELECT v FROM t ORDER BY v").len(),
                m,
                "crash at byte {k}: second recovery changed the state"
            );
        }
        prev_m = m;
        prev_k = k;
    }
    std::fs::remove_dir_all(&copy).ok();
}

#[test]
fn single_node_crash_matrix_sampled() {
    let dir = scratch("sn");
    run_single_node_workload(&dir);
    let (_, total) = coordinator_segments(&dir);
    let step = (total / 48).max(1);
    let points = (0..=total).step_by(step as usize).chain([total]);
    check_single_node_matrix(&dir, points);

    // The full log recovers the full state, row table included.
    let (hana, _) = HanaPlatform::open_durable_with(&dir, direct()).unwrap();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    assert_eq!(ints(&hana, &s, "SELECT v FROM t ORDER BY v").len(), 18);
    let rs = hana.execute_sql(&s, "SELECT s FROM r WHERE k = 1").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Varchar("uno".into()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
#[ignore = "exhaustive every-byte matrix; run via the crash-torture CI lane"]
fn single_node_crash_matrix_exhaustive() {
    let dir = scratch("sn-full");
    run_single_node_workload(&dir);
    let (_, total) = coordinator_segments(&dir);
    check_single_node_matrix(&dir, 0..=total);
    std::fs::remove_dir_all(&dir).ok();
}

/// Distributed workload: a 4-partition table loaded in batches. Each
/// batch's rows go durably to the partition logs before the coordinator
/// commit; the coordinator log carries only markers.
fn run_dist_workload(dir: &Path) -> Vec<usize> {
    let (hana, _) = HanaPlatform::open_durable_with(dir, direct()).unwrap();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE d (k INTEGER, v INTEGER) PARTITION BY HASH(k) PARTITIONS 4",
    )
    .unwrap();
    let mut counts = vec![0usize];
    let mut n = 0;
    for batch in 0..5 {
        let rows: Vec<Row> = (0..20)
            .map(|i| {
                let id = batch * 20 + i;
                Row::from_values([Value::Int(id % 13), Value::Int(id)])
            })
            .collect();
        hana.load_rows(&s, "d", &rows).unwrap();
        n += rows.len();
        counts.push(n);
    }
    counts
}

fn dist_count(copy: &Path) -> usize {
    let (hana, _) = HanaPlatform::open_durable_with(copy, direct()).unwrap();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    if !hana.catalog().has_table("d") {
        return 0;
    }
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM d").unwrap();
    rs.scalar().unwrap().as_i64().unwrap() as usize
}

fn check_dist_matrix(src: &Path, valid_counts: &[usize], points: impl Iterator<Item = u64>) {
    let copy = scratch("dist-copy");
    let mut prev = 0usize;
    for k in points {
        crashed_copy(src, &copy, k);
        let count = dist_count(&copy);
        assert!(
            valid_counts.contains(&count),
            "crash at byte {k}: {count} rows is not a batch boundary {valid_counts:?}"
        );
        assert!(
            count >= prev,
            "crash at byte {k}: lost rows vs earlier crash point"
        );
        prev = count;
    }
    assert_eq!(prev, *valid_counts.last().unwrap());
    std::fs::remove_dir_all(&copy).ok();
}

#[test]
fn dist_crash_matrix_sampled() {
    let dir = scratch("dist");
    let counts = run_dist_workload(&dir);
    let (_, total) = coordinator_segments(&dir);
    let step = (total / 40).max(1);
    let points = (0..=total).step_by(step as usize).chain([total]);
    check_dist_matrix(&dir, &counts, points);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
#[ignore = "exhaustive every-byte matrix; run via the crash-torture CI lane"]
fn dist_crash_matrix_exhaustive() {
    let dir = scratch("dist-full");
    let counts = run_dist_workload(&dir);
    let (_, total) = coordinator_segments(&dir);
    check_dist_matrix(&dir, &counts, 0..=total);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dist_recovery_from_log_alone_redoes_partition_rows() {
    let dir = scratch("dist-nockpt");
    let counts = run_dist_workload(&dir);
    // Crash semantics allow losing the checkpoint sidecars (they are
    // only an optimization): with every sidecar gone, recovery must
    // rebuild the full state from the coordinator log's DISTLOAD
    // markers by redoing rows out of the partition logs.
    let copy = scratch("dist-nockpt-copy");
    copy_dir(&dir, &copy);
    for entry in std::fs::read_dir(&copy).unwrap() {
        let p = entry.unwrap().path();
        if p.extension().is_some_and(|e| e == "ckpt") {
            std::fs::remove_file(p).unwrap();
        }
    }
    let redo_before = hana_data_platform::obs::registry()
        .counter("hana_dist_partition_redo_rows_total")
        .get();
    assert_eq!(dist_count(&copy), *counts.last().unwrap());
    let redo_after = hana_data_platform::obs::registry()
        .counter("hana_dist_partition_redo_rows_total")
        .get();
    assert!(
        redo_after >= redo_before + *counts.last().unwrap() as u64,
        "recovery did not redo rows from the partition logs"
    );
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&copy).ok();
}

#[test]
fn torn_partition_log_tails_recover_to_the_previous_batch() {
    let dir = scratch("dist-torn");
    let counts = run_dist_workload(&dir);
    // Truncate the coordinator to just before the *last* load's commit
    // record. The sync-before-commit protocol means partition rows of
    // that load may or may not be on disk — tear their tails too.
    let copy = scratch("dist-torn-copy");
    copy_dir(&dir, &copy);
    let wal = Wal::open_dir_with(&copy, direct()).unwrap();
    let records = wal.records();
    let offsets = wal.record_end_offsets();
    drop(wal);
    let last_commit = records
        .iter()
        .rposition(|r| matches!(r, LogRecord::Commit { .. }))
        .expect("workload committed");
    let cut = offsets[last_commit - 1];
    drop(records);
    crashed_copy(&dir, &copy, cut);
    for part in 0..4 {
        let pdir = copy.join("dist").join("d").join(format!("part-{part:03}"));
        for entry in std::fs::read_dir(&pdir).unwrap() {
            let p = entry.unwrap().path();
            if p.extension().is_some_and(|e| e == "seg") {
                let len = std::fs::metadata(&p).unwrap().len();
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&p)
                    .unwrap()
                    .set_len(len.saturating_sub(7 + part * 9))
                    .unwrap();
            }
        }
    }
    let recovered = dist_count(&copy);
    assert!(
        counts.contains(&recovered) && recovered < *counts.last().unwrap(),
        "expected a strictly earlier batch boundary, got {recovered} of {counts:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&copy).ok();
}
