//! E9 — seamless growth into the extended storage: data beyond the
//! in-memory budget lives on real disk pages, direct load bypasses the
//! in-memory store, and pushdown keeps response times reasonable.

use hana_data_platform::platform::HanaPlatform;
use hana_data_platform::{Row, Value};

#[test]
fn growth_beyond_memory_lands_on_disk_pages() {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(
        &s,
        "CREATE TABLE bulk (id INTEGER, payload VARCHAR(64)) USING EXTENDED STORAGE",
    )
    .unwrap();
    let pages_before = hana.iq().cache().file().allocated_pages();
    let rows: Vec<Row> = (0..50_000)
        .map(|i| Row::from_values([Value::Int(i), Value::from(format!("payload-{i:058}"))]))
        .collect();
    hana.load_rows(&s, "bulk", &rows).unwrap();
    let pages_after = hana.iq().cache().file().allocated_pages();
    // ~50k rows * ~70 bytes over 16 KiB pages: real on-disk footprint.
    assert!(
        pages_after - pages_before > 100,
        "expected >100 disk pages, got {}",
        pages_after - pages_before
    );
    let (_, writes) = hana.iq().cache().file().stats.snapshot();
    assert!(writes > 100, "pages actually written: {writes}");

    // The data remains fully queryable with pushdown.
    let rs = hana
        .execute_sql(&s, "SELECT COUNT(*) FROM bulk WHERE id >= 49000")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(1000));
}

#[test]
fn chunk_pruning_limits_disk_reads() {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(
        &s,
        "CREATE TABLE series (ts INTEGER, v DOUBLE) USING EXTENDED STORAGE",
    )
    .unwrap();
    // Time-ordered load: zone maps become selective per chunk.
    let rows: Vec<Row> = (0..40_000)
        .map(|i| Row::from_values([Value::Int(i), Value::Double((i % 100) as f64)]))
        .collect();
    hana.load_rows(&s, "series", &rows).unwrap();

    let pruned_before = hana
        .iq()
        .stats
        .chunks_pruned
        .load(std::sync::atomic::Ordering::Relaxed);
    let rs = hana
        .execute_sql(
            &s,
            "SELECT COUNT(*) FROM series WHERE ts BETWEEN 100 AND 200",
        )
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(101));
    let pruned = hana
        .iq()
        .stats
        .chunks_pruned
        .load(std::sync::atomic::Ordering::Relaxed)
        - pruned_before;
    assert!(
        pruned >= 8,
        "zone maps should prune most chunks, got {pruned}"
    );
}

#[test]
fn hot_and_cold_deletes_and_snapshots() {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(
        &s,
        "CREATE TABLE log (id INTEGER, level VARCHAR(8)) USING EXTENDED STORAGE",
    )
    .unwrap();
    for i in 0..100 {
        hana.execute_sql(
            &s,
            &format!(
                "INSERT INTO log VALUES ({i}, '{}')",
                if i % 10 == 0 { "ERROR" } else { "INFO" }
            ),
        )
        .unwrap();
    }
    let rs = hana
        .execute_sql(&s, "DELETE FROM log WHERE level = 'INFO'")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(90));
    let rs = hana.execute_sql(&s, "SELECT COUNT(*) FROM log").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(10));
}

#[test]
fn bitmap_index_serves_low_cardinality_predicates() {
    let hana = HanaPlatform::new_in_memory();
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(
        &s,
        "CREATE TABLE events (kind VARCHAR(8), n INTEGER) USING EXTENDED STORAGE",
    )
    .unwrap();
    let rows: Vec<Row> = (0..8192)
        .map(|i| {
            Row::from_values([
                Value::from(["click", "view", "buy"][i % 3]),
                Value::Int(i as i64),
            ])
        })
        .collect();
    hana.load_rows(&s, "events", &rows).unwrap();
    let hits_before = hana
        .iq()
        .stats
        .bitmap_index_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    let rs = hana
        .execute_sql(&s, "SELECT COUNT(*) FROM events WHERE kind = 'buy'")
        .unwrap();
    assert_eq!(rs.scalar().unwrap().as_i64().unwrap(), 2730);
    let hits = hana
        .iq()
        .stats
        .bitmap_index_hits
        .load(std::sync::atomic::Ordering::Relaxed)
        - hits_before;
    assert!(hits >= 1, "FP-style bitmap index answered the equality");
}
