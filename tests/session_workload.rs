//! Multi-session integration tests: shared plan cache invalidation,
//! prepared-statement re-preparation, and workload-class admission
//! under concurrent load.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hana_core::HanaPlatform;
use hana_exec::ClassConfig;
use hana_session::{SessionManager, WorkloadClass, WorkloadConfig};
use hana_types::{Row, Value};

use proptest::prelude::*;

fn counter(name: &str) -> u64 {
    hana_obs::registry().counter(name).get()
}

/// Platform with an `accounts` column table of `n` rows (k, v).
fn platform_with_accounts(n: i64) -> Arc<HanaPlatform> {
    let platform = Arc::new(HanaPlatform::new_in_memory());
    let session = platform.connect("SYSTEM", "manager").unwrap();
    platform
        .execute_sql(&session, "CREATE COLUMN TABLE accounts (k INT, v INT)")
        .unwrap();
    let rows: Vec<Row> = (0..n)
        .map(|i| Row::from_values([Value::Int(i), Value::Int(i % 97)]))
        .collect();
    platform.load_rows(&session, "accounts", &rows).unwrap();
    platform
        .execute_sql(&session, "MERGE DELTA OF accounts")
        .unwrap();
    platform
}

/// Admission bounds OLAP concurrency while OLTP point lookups keep
/// running — the ISSUE 6 acceptance scenario.
#[test]
fn admission_bounds_olap_while_oltp_keeps_running() {
    const OLAP_LIMIT: usize = 2;
    const OLAP_THREADS: usize = 8;

    let platform = platform_with_accounts(50_000);
    let manager = Arc::new(SessionManager::with_config(
        platform,
        256,
        WorkloadConfig {
            olap: ClassConfig::new("olap", OLAP_LIMIT)
                .with_queue(OLAP_THREADS * 4)
                .with_timeout(Duration::from_secs(30))
                .with_priority(1),
            ..WorkloadConfig::default()
        },
    ));

    let olap_running = Arc::new(AtomicUsize::new(0));
    let olap_peak = Arc::new(AtomicUsize::new(0));
    let storm_over = Arc::new(AtomicBool::new(false));
    let oltp_during_storm = Arc::new(AtomicUsize::new(0));

    // The OLTP side: point lookups in a loop until the OLAP storm ends.
    let oltp_handle = {
        let (manager, storm_over, done) = (
            Arc::clone(&manager),
            Arc::clone(&storm_over),
            Arc::clone(&oltp_during_storm),
        );
        std::thread::spawn(move || {
            let session = manager.connect("SYSTEM", "manager").unwrap();
            let lookup = session
                .prepare("SELECT v FROM accounts WHERE k = ?")
                .unwrap();
            // Cycle a small hot key set: bound parameters appear as
            // literals in the cache key, so a repetitive OLTP workload
            // means repeating *bindings*, not just the statement text.
            let mut k = 0i64;
            while !storm_over.load(Ordering::Relaxed) {
                let rs = session
                    .execute_prepared(&lookup, &[Value::Int(k % 16)])
                    .expect("OLTP must keep flowing during the OLAP storm");
                assert_eq!(rs.rows.len(), 1);
                done.fetch_add(1, Ordering::Relaxed);
                k += 1;
            }
        })
    };

    // The OLAP storm: more aggregate queries than slots.
    let olap_handles: Vec<_> = (0..OLAP_THREADS)
        .map(|_| {
            let (manager, running, peak) = (
                Arc::clone(&manager),
                Arc::clone(&olap_running),
                Arc::clone(&olap_peak),
            );
            std::thread::spawn(move || {
                let session = manager.connect("SYSTEM", "manager").unwrap();
                for _ in 0..3 {
                    let rs = session
                        .execute("SELECT v, COUNT(*), SUM(k) FROM accounts GROUP BY v ORDER BY v")
                        .unwrap();
                    assert_eq!(rs.rows.len(), 97);
                    // Track our own view of concurrency from inside the
                    // admitted region's results (coarse, but together
                    // with the controller's peak gauge it corroborates
                    // the bound).
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    running.fetch_sub(1, Ordering::SeqCst);
                }
            })
        })
        .collect();

    for h in olap_handles {
        h.join().unwrap();
    }
    storm_over.store(true, Ordering::Relaxed);
    oltp_handle.join().unwrap();

    let (_, _, olap_peak_running) = manager.workload().class_stats(WorkloadClass::Olap);
    assert!(
        olap_peak_running <= OLAP_LIMIT,
        "controller admitted {olap_peak_running} concurrent OLAP statements, limit {OLAP_LIMIT}"
    );
    assert!(
        olap_peak_running >= 1,
        "the storm must actually have exercised the OLAP class"
    );
    assert!(
        counter("hana_admission_queued_total_olap") > 0,
        "with {OLAP_THREADS} threads and {OLAP_LIMIT} slots, someone must have queued"
    );
    assert!(
        oltp_during_storm.load(Ordering::Relaxed) > 0,
        "OLTP point lookups must have completed during the storm"
    );
    // Steady state: the repeated aggregate + repeated lookups hit the
    // shared plan cache far more often than they miss.
    assert!(
        counter("hana_session_plan_cache_hits_total")
            > counter("hana_session_plan_cache_misses_total"),
        "cache hits must dominate on a repetitive workload"
    );
}

/// A saturated class with a zero-length queue sheds load with the
/// retryable `overloaded` error; a short queue times out the same way.
#[test]
fn admission_rejections_follow_error_taxonomy() {
    let platform = platform_with_accounts(1_000);
    let manager = Arc::new(SessionManager::with_config(
        platform,
        64,
        WorkloadConfig {
            olap: ClassConfig::new("olap", 1)
                .with_queue(0)
                .with_timeout(Duration::from_millis(50))
                .with_priority(1),
            ..WorkloadConfig::default()
        },
    ));

    // Hold the only OLAP slot directly through the workload manager,
    // then observe a session's OLAP statement being refused.
    let permit = manager.workload().admit(WorkloadClass::Olap).unwrap();
    let session = manager.connect("SYSTEM", "manager").unwrap();
    let err = session
        .execute("SELECT v, COUNT(*) FROM accounts GROUP BY v")
        .unwrap_err();
    assert_eq!(err.kind(), "overloaded");
    assert!(err.is_retryable(), "clients are told to back off and retry");
    drop(permit);

    // With the slot free the same statement succeeds.
    session
        .execute("SELECT v, COUNT(*) FROM accounts GROUP BY v")
        .unwrap();
}

/// DDL (CREATE/DROP) and MERGE DELTA bump the catalog version and evict
/// stale plans; prepared statements re-prepare transparently.
#[test]
fn ddl_and_merge_delta_invalidate_cached_plans() {
    let platform = platform_with_accounts(1_000);
    let manager = SessionManager::new(Arc::clone(&platform));
    let session = manager.connect("SYSTEM", "manager").unwrap();

    let lookup = session
        .prepare("SELECT v FROM accounts WHERE k = ?")
        .unwrap();
    session.execute_prepared(&lookup, &[Value::Int(5)]).unwrap();
    assert_eq!(manager.plan_cache().len(), 1);

    // CREATE TABLE bumps the version: next lookup purges + re-plans.
    let v_before = platform.catalog_version();
    session
        .execute("CREATE COLUMN TABLE other (x INT)")
        .unwrap();
    assert!(
        platform.catalog_version() > v_before,
        "CREATE bumps version"
    );
    let inv_before = counter("hana_session_plan_cache_invalidations_total");
    session.execute_prepared(&lookup, &[Value::Int(5)]).unwrap();
    assert!(
        counter("hana_session_plan_cache_invalidations_total") > inv_before,
        "stale plan was purged on the next lookup"
    );

    // MERGE DELTA also bumps (synopses/estimates are rebuilt).
    let v_before = platform.catalog_version();
    session
        .execute("INSERT INTO accounts (k, v) VALUES (100000, 42)")
        .unwrap();
    session.execute("MERGE DELTA OF accounts").unwrap();
    assert!(
        platform.catalog_version() > v_before,
        "MERGE DELTA bumps version"
    );

    // DROP + re-CREATE under the same name: the prepared statement
    // keeps working against the new incarnation.
    session.execute("DROP TABLE accounts").unwrap();
    session
        .execute("CREATE COLUMN TABLE accounts (k INT, v INT)")
        .unwrap();
    session
        .execute("INSERT INTO accounts (k, v) VALUES (5, 555)")
        .unwrap();
    let rs = session.execute_prepared(&lookup, &[Value::Int(5)]).unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(555), "re-prepared transparently");
}

proptest! {
    /// Sessions agree with the raw platform: for a random mix of
    /// lookups, aggregates and interleaved delta merges, going through
    /// the plan cache must be result-equivalent to parsing/planning
    /// every time.
    #[test]
    fn cached_results_equal_uncached(seed in any::<u64>(), n_rows in 50i64..400) {
        let platform = platform_with_accounts(n_rows);
        let manager = SessionManager::new(Arc::clone(&platform));
        let session = manager.connect("SYSTEM", "manager").unwrap();
        let raw = platform.connect("SYSTEM", "manager").unwrap();
        let lookup = session.prepare("SELECT v FROM accounts WHERE k = ?").unwrap();

        let mut state = seed;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..40 {
            match next() % 4 {
                0 | 1 => {
                    let k = (next() % n_rows as u64) as i64;
                    let via_cache = session
                        .execute_prepared(&lookup, &[Value::Int(k)])
                        .unwrap();
                    let direct = platform
                        .execute_sql(&raw, &format!("SELECT v FROM accounts WHERE k = {k}"))
                        .unwrap();
                    prop_assert_eq!(via_cache.rows, direct.rows);
                }
                2 => {
                    let via_cache = session
                        .execute("SELECT v, COUNT(*) FROM accounts GROUP BY v ORDER BY v")
                        .unwrap();
                    let direct = platform
                        .execute_sql(
                            &raw,
                            "SELECT v, COUNT(*) FROM accounts GROUP BY v ORDER BY v",
                        )
                        .unwrap();
                    prop_assert_eq!(via_cache.rows, direct.rows);
                }
                _ => {
                    // Mutate + merge: bumps the catalog version, so the
                    // cache must re-plan rather than serve stale plans.
                    let k = n_rows + (next() % 1000) as i64;
                    session
                        .execute(&format!("INSERT INTO accounts (k, v) VALUES ({k}, 7)"))
                        .unwrap();
                    session.execute("MERGE DELTA OF accounts").unwrap();
                }
            }
        }
    }
}
