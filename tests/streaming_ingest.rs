//! End-to-end streaming ingest: ESP events through an
//! `IngestPipeline` into a partitioned table must equal a clean bulk
//! load of the same rows — under both partitioning schemes, any
//! partition count, and injected chunk-level retries — and the
//! `CREATE STREAM SINK` SQL surface must manage pipelines end to end.

use std::sync::Arc;

use proptest::prelude::*;

use hana_data_platform::dist::FaultPlan;
use hana_data_platform::ingest::{IngestConfig, IngestRuntime};
use hana_data_platform::platform::HanaPlatform;
use hana_data_platform::query::TableSource;
use hana_data_platform::{Row, Value};

fn dist_links(hana: &HanaPlatform, table: &str) -> Vec<Arc<hana_data_platform::dist::Link>> {
    let entry = hana.catalog().table(table).unwrap();
    let TableSource::Distributed(dt) = &entry.source else {
        panic!("{table} is not distributed");
    };
    dt.links().to_vec()
}

#[test]
fn create_stream_sink_sql_roundtrip() {
    let hana = Arc::new(HanaPlatform::new_in_memory());
    let s = hana.connect("SYSTEM", "manager").unwrap();
    hana.execute_sql(
        &s,
        "CREATE COLUMN TABLE readings (k INTEGER, v VARCHAR(16)) \
         PARTITION BY HASH(k) PARTITIONS 2",
    )
    .unwrap();
    hana.esp()
        .deploy("CREATE INPUT STREAM events SCHEMA (k INTEGER, v VARCHAR(16));")
        .unwrap();

    // Without a runtime installed, the statement is rejected (the SQL
    // surface exists, the driver is the ingest crate's job).
    let err = hana
        .execute_sql(&s, "CREATE STREAM SINK feed ON events INTO readings")
        .unwrap_err();
    assert!(err.to_string().contains("ingest driver"), "{err}");

    let rt = IngestRuntime::install_with(
        &hana,
        &s,
        IngestConfig::default()
            .with_batch_rows(8)
            .with_max_inflight(2),
    );
    hana.execute_sql(&s, "CREATE STREAM SINK feed ON events INTO readings")
        .unwrap();
    assert_eq!(rt.pipeline_names(), vec!["feed".to_string()]);
    // Duplicate names and missing sources are rejected.
    assert!(hana
        .execute_sql(&s, "CREATE STREAM SINK feed ON events INTO readings")
        .is_err());
    assert!(hana
        .execute_sql(&s, "CREATE STREAM SINK other ON nope INTO readings")
        .is_err());

    for i in 0..40i64 {
        hana.esp()
            .send(
                "events",
                i,
                Row::from_values([Value::Int(i), Value::from(format!("v{i}").as_str())]),
            )
            .unwrap();
    }
    rt.pipeline("feed").unwrap().flush().unwrap();
    let rs = hana
        .execute_sql(&s, "SELECT COUNT(*) FROM readings")
        .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(40));

    hana.execute_sql(&s, "DROP STREAM SINK feed").unwrap();
    assert!(rt.pipeline_names().is_empty());
    // Detached: further events flow into the void (no sink), and
    // dropping again is an error.
    assert!(hana.execute_sql(&s, "DROP STREAM SINK feed").is_err());
}

proptest! {
    /// Streamed ingest (micro-batched, epoch-numbered, chunk-retried)
    /// is byte-identical to a bulk load of the same rows, across both
    /// partitioning schemes and 1–4 partitions.
    #[test]
    fn streamed_ingest_equals_bulk_load(
        parts in 1usize..5,
        hash_scheme in any::<bool>(),
        seed in any::<u64>(),
        n in 1usize..300,
        batch in 1usize..33,
        flaky in any::<bool>(),
    ) {
        let hana = Arc::new(HanaPlatform::new_in_memory());
        let s = hana.connect("SYSTEM", "manager").unwrap();
        let clause = if hash_scheme {
            format!("PARTITION BY HASH(k) PARTITIONS {parts}")
        } else {
            let splits: Vec<String> =
                (1..parts.max(2)).map(|i| (i as i64 * 25).to_string()).collect();
            format!("PARTITION BY RANGE(k) SPLIT AT ({})", splits.join(", "))
        };
        hana.execute_sql(
            &s,
            &format!("CREATE COLUMN TABLE streamed (k INTEGER, v VARCHAR(16)) {clause}"),
        )
        .unwrap();
        hana.execute_sql(&s, "CREATE COLUMN TABLE bulk (k INTEGER, v VARCHAR(16))")
            .unwrap();
        hana.esp()
            .deploy("CREATE INPUT STREAM events SCHEMA (k INTEGER, v VARCHAR(16));")
            .unwrap();
        if flaky {
            // Chunk-level retries inside the repartition exchange must
            // not change the outcome.
            for link in dist_links(&hana, "streamed") {
                link.set_fault(Some(FaultPlan::flaky(seed, 0.3)));
            }
        }

        let mut x = seed | 1;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as i64
        };
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                let k = next().rem_euclid(100);
                Row::from_values([Value::Int(k), Value::from(format!("r{i}").as_str())])
            })
            .collect();

        let rt = IngestRuntime::install_with(
            &hana,
            &s,
            IngestConfig::default().with_batch_rows(batch).with_max_inflight(2),
        );
        rt.attach("feed", "events", "streamed").unwrap();
        for (i, r) in rows.iter().enumerate() {
            hana.esp().send("events", i as i64, r.clone()).unwrap();
        }
        let stats = rt.detach("feed").unwrap(); // drains + stops
        prop_assert_eq!(stats.rows_committed, n as u64);
        // Heal the links so the verification queries are not the ones
        // fighting the fault injection.
        for link in dist_links(&hana, "streamed") {
            link.set_fault(None);
        }

        hana.load_rows(&s, "bulk", &rows).unwrap();
        let q = "SELECT k, v FROM {} ORDER BY k, v";
        let streamed = hana.execute_sql(&s, &q.replace("{}", "streamed")).unwrap();
        let bulk = hana.execute_sql(&s, &q.replace("{}", "bulk")).unwrap();
        prop_assert_eq!(&streamed.rows, &bulk.rows);
    }
}
