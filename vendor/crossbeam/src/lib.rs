//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the two entry points the workspace uses:
//!
//! * [`scope`] — scoped threads, layered on `std::thread::scope`. As in
//!   crossbeam, the spawn closure receives the scope again so nested
//!   spawns are possible, and `scope` returns `Err` if any spawned
//!   thread panicked.
//! * [`channel::unbounded`] — a multi-producer *multi-consumer* FIFO
//!   channel (std's mpsc receiver is not cloneable, so this is a small
//!   Mutex+Condvar queue).

use std::any::Any;

/// Scoped-thread support (`crossbeam::scope`, `crossbeam_utils::thread`).
pub mod thread {
    use std::any::Any;
    use std::marker::PhantomData;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    /// A scope for spawning borrowed threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
        panicked: Arc<AtomicBool>,
    }

    /// Handle to a scoped thread (subset: join only).
    pub struct ScopedJoinHandle<'scope, T> {
        // Panics are carried in the return value rather than unwinding
        // the thread: std's scope would re-panic the parent for an
        // unjoined panicked thread, while crossbeam reports it as an
        // `Err` from `scope` instead.
        inner: std::thread::ScopedJoinHandle<'scope, Result<T, Box<dyn Any + Send + 'static>>>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join().and_then(|r| r)
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again,
        /// crossbeam-style, so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = Scope {
                inner: self.inner,
                panicked: Arc::clone(&self.panicked),
            };
            let panicked = Arc::clone(&self.panicked);
            ScopedJoinHandle {
                inner: self.inner.spawn(move || {
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope)));
                    if result.is_err() {
                        panicked.store(true, Ordering::SeqCst);
                    }
                    result
                }),
                _marker: PhantomData,
            }
        }
    }

    /// Run `f` with a thread scope; all spawned threads are joined before
    /// returning. `Err` when any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let panicked = Arc::new(AtomicBool::new(false));
        let result = std::thread::scope(|s| {
            let scope = Scope {
                inner: s,
                panicked: Arc::clone(&panicked),
            };
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope)))
        });
        match result {
            Ok(v) if !panicked.load(Ordering::SeqCst) => Ok(v),
            Ok(_) => Err(Box::new("a scoped thread panicked")),
            Err(e) => Err(e),
        }
    }
}

/// Run `f` with a thread scope (see [`thread::scope`]).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&thread::Scope<'scope, 'env>) -> R,
{
    thread::scope(f)
}

/// MPMC channels (`crossbeam::channel` subset).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel drained and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Create an unbounded MPMC FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.queue.lock().expect("channel lock");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.queue.lock().expect("channel lock").senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.queue.lock().expect("channel lock");
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).expect("channel lock");
            }
        }

        /// Dequeue a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.queue.lock().expect("channel lock");
            match state.items.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking iterator draining the channel until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.queue.lock().expect("channel lock").receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.queue.lock().expect("channel lock").receivers -= 1;
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let sum = std::sync::atomic::AtomicU64::new(0);
        super::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    sum.fetch_add(
                        chunk.iter().sum::<u64>(),
                        std::sync::atomic::Ordering::Relaxed,
                    )
                });
            }
        })
        .unwrap();
        assert_eq!(sum.into_inner(), 10);
    }

    #[test]
    fn scope_reports_panics() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_mpmc_fifo() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        let consumer = {
            let rx = rx.clone();
            std::thread::spawn(move || rx.into_iter().count())
        };
        for i in 0..50 {
            if i % 2 == 0 {
                tx.send(i).unwrap();
            } else {
                tx2.send(i).unwrap();
            }
        }
        drop(tx);
        drop(tx2);
        let drained = consumer.join().unwrap() + rx.iter().count();
        assert_eq!(drained, 50);
    }
}
