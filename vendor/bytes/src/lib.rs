//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] trait
//! subset used by the segment serializer: little-endian put/get of
//! fixed-width integers and floats, slices, `advance`, `freeze`. Backed
//! by plain `Vec<u8>`/`Arc<[u8]>` — no zero-copy slicing games, which
//! the workspace does not rely on.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// A copied sub-range as a new buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.data[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, where reads
/// consume the slice from the front (as in the real crate).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy out exactly `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_i64_le(-42);
        buf.put_f64_le(2.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 2.5);
        assert_eq!(r, b"xyz");
        r.advance(3);
        assert!(!r.has_remaining());
    }
}
