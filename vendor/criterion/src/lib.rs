//! Offline stand-in for the `criterion` crate.
//!
//! A plain wall-clock harness behind criterion's API surface: groups,
//! `bench_function`, `Bencher::iter`, `Throughput`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark warms up
//! briefly, then runs timed batches until it accumulates ~200 ms, and
//! reports the mean time per iteration (plus derived throughput).
//! No statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes, decimal multiple variant (parity with the real crate).
    BytesDecimal(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render to the printed id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

/// Passed to the benchmark closure; runs and times the iterations.
pub struct Bencher {
    mean_ns: f64,
    measure_for: Duration,
}

impl Bencher {
    /// Time `f`, running enough iterations for a stable mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run for a short period to fault in caches/allocations.
        let warmup_end = Instant::now() + Duration::from_millis(30);
        let mut warmup_iters = 0u64;
        while Instant::now() < warmup_end {
            black_box(f());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        // Measure in growing batches until the budget is spent.
        let mut total_time = Duration::ZERO;
        let mut total_iters = 0u64;
        let mut batch = 1u64;
        while total_time < self.measure_for {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            total_time += elapsed;
            total_iters += batch;
            // Aim each batch at ~1/8 of the budget.
            if elapsed < self.measure_for / 8 {
                batch = batch.saturating_mul(2).min(1 << 24);
            }
        }
        self.mean_ns = total_time.as_nanos() as f64 / total_iters as f64;
    }

    /// Like `iter`, with a per-iteration setup stage that is not timed
    /// as precisely (setup runs inside the timed loop here).
    pub fn iter_with_setup<S, O, SF: FnMut() -> S, F: FnMut(S) -> O>(
        &mut self,
        mut setup: SF,
        mut f: F,
    ) {
        self.iter(move || f(setup()));
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(
    id: &str,
    throughput: Option<Throughput>,
    measure_for: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        mean_ns: f64::NAN,
        measure_for,
    };
    f(&mut b);
    let mut line = format!("{id:<56} time: {:>12}/iter", human_time(b.mean_ns));
    if let Some(t) = throughput {
        let per_sec = |n: u64| n as f64 / (b.mean_ns / 1e9);
        match t {
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                line.push_str(&format!(
                    "   thrpt: {:.1} MiB/s",
                    per_sec(n) / (1024.0 * 1024.0)
                ));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("   thrpt: {:.3} Melem/s", per_sec(n) / 1e6));
            }
        }
    }
    println!("{line}");
}

/// The harness entry point.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measure_for: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Parity shim for the real crate's CLI plumbing (no-op).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measure_for = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measure_for = self.measure_for;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            measure_for,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<ID: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: ID,
        mut f: F,
    ) -> &mut Criterion {
        run_one(&id.into_id(), None, self.measure_for, &mut f);
        self
    }
}

/// A group of benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measure_for: Duration,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted for API parity; the stand-in sizes
    /// batches by time instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set measurement time for benches in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure_for = d;
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<ID: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: ID,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.throughput, self.measure_for, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Define a function running the given benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(100));
        let mut ran = false;
        group.bench_function(BenchmarkId::new("f", 1), |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
