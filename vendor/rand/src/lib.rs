//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The workspace only needs deterministic, seedable generation for data
//! generators and benches: `StdRng::seed_from_u64` plus
//! `Rng::random_range` over integer and float ranges. The generator is
//! xoshiro256++ seeded via SplitMix64 — not cryptographic, statistically
//! fine for test-data generation.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`lo..hi` or `lo..=hi`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a supported primitive type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable without an explicit range.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn unit_f64(word: u64) -> f64 {
    // 53 mantissa bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range for random_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                // Lemire-style scaled sample: unbiased enough for test data.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as $u;
                (self.start as $u).wrapping_add(hi) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range for random_range");
                let span = (end as $u).wrapping_sub(start as $u).wrapping_add(1);
                if span == 0 {
                    // Full domain.
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as $u;
                (start as $u).wrapping_add(hi) as $t
            }
        }
    )*};
}

int_sample_range!(
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range for random_range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range for random_range");
                let u = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Named generators (`rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ seeded via
    /// SplitMix64 (same construction the xoshiro authors recommend).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let i = rng.random_range(-5i64..7);
            assert!((-5..7).contains(&i));
            let f = rng.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "skewed bucket: {b}");
        }
    }
}
