//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators the workspace's property tests
//! use — ranges, tuples, `collection::vec`, `any`, `Just`, `prop_oneof!`,
//! `prop_map`/`prop_filter`, and a small character-class string pattern —
//! over a deterministic per-test RNG. No shrinking: a failing case
//! panics with the generated inputs left to the assertion message.
//! Case count defaults to 64 and follows `PROPTEST_CASES`.

pub mod test_runner {
    /// Deterministic xoshiro256++-style RNG seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// A generator whose stream depends only on `name`.
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform sample in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// The number of cases each property runs (`PROPTEST_CASES`,
        /// default 64).
        pub fn cases() -> usize {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Reject generated values failing `f` (resamples; gives up and
        /// panics after 1000 consecutive rejections).
        fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    trait DynStrategy {
        type Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Always-the-same-value strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 samples in a row: {}",
                self.reason
            );
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Build from the alternatives.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union(options)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

    // u64 separately: the span may overflow u64 for huge ranges, which
    // the workspace never uses; keep the i128 math regardless.
    impl Strategy for Range<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            let span = (self.end as u128 - self.start as u128) as u64;
            self.start + rng.below(span)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + (self.end - self.start) * unit
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+)),* $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A / 0),
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3),
        (A / 0, B / 1, C / 2, D / 3, E / 4),
    );

    /// String generation from a tiny regex-ish pattern: literal
    /// characters, `[a-z0-9_]`-style classes, and `{m,n}` / `{n}` / `?` /
    /// `*` / `+` repetition (star and plus capped at 8).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for atom in &atoms {
                let span = atom.max - atom.min + 1;
                let reps = atom.min + rng.below(span as u64) as usize;
                for _ in 0..reps {
                    let choice = rng.below(atom.chars.len() as u64) as usize;
                    out.push(atom.chars[choice]);
                }
            }
            out
        }
    }

    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let set: Vec<char> = match c {
                '[' => {
                    let content: String = chars.by_ref().take_while(|&d| d != ']').collect();
                    let cs: Vec<char> = content.chars().collect();
                    let mut set = Vec::new();
                    let mut i = 0;
                    while i < cs.len() {
                        // `a-z` spans expand; a trailing or leading `-` is literal.
                        if i + 2 < cs.len() && cs[i + 1] == '-' {
                            for r in cs[i] as u32..=cs[i + 2] as u32 {
                                if let Some(rc) = char::from_u32(r) {
                                    set.push(rc);
                                }
                            }
                            i += 3;
                        } else {
                            set.push(cs[i]);
                            i += 1;
                        }
                    }
                    if set.is_empty() {
                        set.push('?');
                    }
                    set
                }
                '\\' => vec![chars.next().unwrap_or('\\')],
                c => vec![c],
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let spec: String = chars.by_ref().take_while(|&d| d != '}').collect();
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().unwrap_or(0),
                            hi.trim().parse().unwrap_or(8),
                        ),
                        None => {
                            let n = spec.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            atoms.push(Atom {
                chars: set,
                min,
                max,
            });
        }
        atoms
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy for "any value of `T`" (full domain, including the weird
    /// corners: `any::<f64>()` can yield NaN and infinities).
    pub struct Any<T>(PhantomData<T>);

    /// The `any::<T>()` entry point.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    macro_rules! any_int {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for [`vec`]: a fixed size or a half-open range.
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The macro-driven test harness.
///
/// Differences from real proptest: no shrinking and no persisted failure
/// seeds — the RNG is deterministic per test name, so failures reproduce
/// by re-running the test.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::TestRng::cases();
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assertion macro (panics like `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion macro (panics like `assert_eq!`; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion macro.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0i64..40, y in 3u8..9, f in -2.0f64..2.0) {
            prop_assert!((0..40).contains(&x));
            prop_assert!((3..9).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_and_tuples(rows in prop::collection::vec((0i64..40, 0u8..3), 1..200)) {
            prop_assert!(!rows.is_empty() && rows.len() < 200);
            for &(v, a) in &rows {
                prop_assert!((0..40).contains(&v) && a < 3);
            }
        }

        #[test]
        fn oneof_map_filter(v in prop_oneof![
            any::<f64>().prop_filter("no NaN", |v| !v.is_nan()),
            (-1000i64..1000).prop_map(|i| i as f64 / 4.0),
        ]) {
            prop_assert!(!v.is_nan());
        }

        #[test]
        fn string_patterns(s in "[a-c]{0,3}") {
            prop_assert!(s.len() <= 3);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        let s = crate::collection::vec(0u32..100, 0..50);
        for _ in 0..20 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
