//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the *API subset it actually uses*: non-poisoning [`Mutex`]
//! and [`RwLock`] whose `lock()`/`read()`/`write()` return guards
//! directly (no `Result`). Backed by `std::sync`; a poisoned std lock
//! (a thread panicked while holding it) is transparently recovered,
//! matching parking_lot's no-poisoning semantics.

use std::sync::{self, TryLockError};

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking the current thread.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire exclusive write access, blocking the current thread.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempt shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempt exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn no_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
