//! Integration tests: adapters, virtual tables/functions, and the
//! remote materialization cache (Figures 12/13 behaviour).

use std::sync::Arc;
use std::time::Duration;

use hana_hadoop::{Hdfs, Hive, MrCluster, MrConfig, MrFunction, MrFunctionRegistry, KV};
use hana_iq::IqEngine;
use hana_sda::{
    CacheOutcome, HadoopMrAdapter, HiveOdbcAdapter, IqAdapter, RemoteCacheConfig, RemoteContext,
    SdaAdapter, SdaRegistry,
};
use hana_sql::{parse_statement, Statement};
use hana_types::{DataType, Row, Schema, Value};

fn fast_cluster() -> Arc<MrCluster> {
    let cfg = MrConfig {
        worker_slots: 4,
        job_startup: Duration::from_micros(500),
        task_startup: Duration::from_micros(50),
    };
    Arc::new(MrCluster::new(Arc::new(Hdfs::new(4)), cfg))
}

fn hive_with_data() -> Arc<Hive> {
    let hive = Arc::new(Hive::new(fast_cluster()));
    hive.create_table(
        "product",
        Schema::of(&[
            ("product_id", DataType::Int),
            ("product_name", DataType::Varchar),
            ("brand_name", DataType::Varchar),
            ("price", DataType::Double),
        ]),
    )
    .unwrap();
    let rows: Vec<Row> = (0..200)
        .map(|i| {
            Row::from_values([
                Value::Int(i),
                Value::from(format!("Product {i}")),
                Value::from(if i % 3 == 0 { "Acme" } else { "Globex" }),
                Value::Double(9.99 + i as f64),
            ])
        })
        .collect();
    hive.load("product", &rows).unwrap();
    hive
}

fn query(sql: &str) -> hana_sql::Query {
    let Statement::Query(q) = parse_statement(sql).unwrap() else {
        panic!()
    };
    q
}

#[test]
fn virtual_table_workflow_like_paper() {
    // §4.2: CREATE REMOTE SOURCE + CREATE VIRTUAL TABLE + SELECT.
    let hive = hive_with_data();
    let registry = SdaRegistry::new();
    let adapter: Arc<dyn SdaAdapter> =
        Arc::new(HiveOdbcAdapter::new(Arc::clone(&hive), "DSN=hive1"));
    registry
        .create_remote_source("HIVE1", adapter, "DSN=hive1", Some("user=dfuser"))
        .unwrap();
    registry
        .create_virtual_table("VIRTUAL_PRODUCT", "HIVE1", "product")
        .unwrap();
    let vt = registry.virtual_table("virtual_product").unwrap();
    assert_eq!(vt.remote_table, "product");
    assert_eq!(vt.schema.len(), 4);
    // Query through the source.
    let (rs, outcome) = registry
        .execute_remote(
            "hive1",
            &query("SELECT product_name, brand_name FROM product WHERE brand_name = 'Acme'"),
            &RemoteContext::snapshot(1),
        )
        .unwrap();
    assert_eq!(outcome, CacheOutcome::Bypass, "no hint, no cache");
    assert_eq!(rs.len(), 67);
    // Unknown source / duplicate registrations error.
    assert!(registry.source("nope").is_err());
    assert!(registry
        .create_virtual_table("VIRTUAL_PRODUCT", "HIVE1", "product")
        .is_err());
}

#[test]
fn remote_cache_policies() {
    let hive = hive_with_data();
    let registry = SdaRegistry::new();
    let adapter: Arc<dyn SdaAdapter> =
        Arc::new(HiveOdbcAdapter::new(Arc::clone(&hive), "DSN=hive1"));
    registry
        .create_remote_source("hive1", adapter, "DSN=hive1", None)
        .unwrap();

    let q = query(
        "SELECT product_id, price FROM product WHERE brand_name = 'Acme' \
         WITH HINT (USE_REMOTE_CACHE)",
    );

    // Disabled by default: hint alone does nothing.
    let (_, outcome) = registry
        .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
        .unwrap();
    assert_eq!(outcome, CacheOutcome::Bypass);

    registry.set_cache_config(
        RemoteCacheConfig::default()
            .with_remote_cache(true)
            .with_validity(10_000),
    );

    // First execution materializes; second hits.
    let (rs1, o1) = registry
        .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
        .unwrap();
    assert_eq!(o1, CacheOutcome::Materialized);
    let jobs_after_mat = hive.cluster().counters().0;
    let (rs2, o2) = registry
        .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
        .unwrap();
    assert_eq!(o2, CacheOutcome::Hit);
    assert_eq!(rs1.rows.len(), rs2.rows.len());
    assert_eq!(
        hive.cluster().counters().0,
        jobs_after_mat,
        "cache hit must not run any MR job (fetch task only)"
    );
    assert_eq!(registry.cache.stats(), (1, 1));

    // Queries WITHOUT predicates are never materialized.
    let q_nopred = query("SELECT product_id FROM product WITH HINT (USE_REMOTE_CACHE)");
    let (_, o3) = registry
        .execute_remote("hive1", &q_nopred, &RemoteContext::snapshot(1))
        .unwrap();
    assert_eq!(o3, CacheOutcome::Bypass);

    // No hint -> normal execution even while enabled.
    let q_nohint = query("SELECT product_id FROM product WHERE price > 100");
    let (_, o4) = registry
        .execute_remote("hive1", &q_nohint, &RemoteContext::snapshot(1))
        .unwrap();
    assert_eq!(o4, CacheOutcome::Bypass);
}

#[test]
fn remote_cache_validity_expires() {
    let hive = hive_with_data();
    let registry = SdaRegistry::new();
    let adapter: Arc<dyn SdaAdapter> =
        Arc::new(HiveOdbcAdapter::new(Arc::clone(&hive), "DSN=hive1"));
    registry
        .create_remote_source("hive1", adapter, "DSN=hive1", None)
        .unwrap();
    registry.set_cache_config(
        RemoteCacheConfig::default()
            .with_remote_cache(true)
            .with_validity(2), // expires after 2 ticks
    );
    let q = query("SELECT product_id FROM product WHERE price > 100 WITH HINT (USE_REMOTE_CACHE)");
    let (_, o1) = registry
        .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
        .unwrap();
    assert_eq!(o1, CacheOutcome::Materialized);
    // Advance the remote clock past the validity window by loading data.
    for _ in 0..4 {
        hive.load(
            "product",
            &[Row::from_values([
                Value::Int(9_000),
                Value::from("New"),
                Value::from("Acme"),
                Value::Double(500.0),
            ])],
        )
        .unwrap();
    }
    let (rs, o2) = registry
        .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
        .unwrap();
    assert_eq!(o2, CacheOutcome::Refreshed, "stale entry re-materializes");
    // The refreshed copy sees the newly loaded rows.
    assert!(rs.rows.iter().any(|r| r[0] == Value::Int(9_000)));
}

#[test]
fn hadoop_adapter_invokes_driver_class() {
    let cluster = fast_cluster();
    let registry_mr = Arc::new(MrFunctionRegistry::new(Arc::clone(&cluster)));
    cluster
        .hdfs()
        .append_lines("/sensors/day1", &["P-1,95.0", "P-2,99.5"])
        .unwrap();
    let mapper = |_k: &str, line: &str, out: &mut Vec<KV>| {
        if let Some((id, p)) = line.split_once(',') {
            out.push((
                String::new(),
                hana_hadoop::output_line(&[id.to_string(), p.to_string()]),
            ));
        }
    };
    registry_mr.register(
        "com.customer.hadoop.SensorMRDriver",
        MrFunction {
            inputs: vec!["/sensors".into()],
            mapper: Arc::new(mapper),
            reducer: None,
            num_reducers: 0,
            output_schema: Schema::of(&[
                ("equip_id", DataType::Varchar),
                ("pressure", DataType::Double),
            ]),
        },
    );

    let sda = SdaRegistry::new();
    let adapter: Arc<dyn SdaAdapter> = Arc::new(HadoopMrAdapter::new(
        registry_mr,
        "webhdfs=http://mrserver1:50070;webhcatalog=http://mrserver1:50111",
    ));
    sda.create_remote_source("MRSERVER", adapter, "webhdfs=http://mrserver1:50070", None)
        .unwrap();
    sda.create_virtual_function(
        "PLANT100_SENSOR_RECORDS",
        "mrserver",
        "hana.mapred.driver.class = com.customer.hadoop.SensorMRDriver; \
         hana.mapred.jobFiles = job.jar, library.jar",
        Schema::of(&[
            ("equip_id", DataType::Varchar),
            ("pressure", DataType::Double),
        ]),
    )
    .unwrap();
    let rs = sda
        .invoke_virtual_function("plant100_sensor_records")
        .unwrap();
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.schema.index_of("pressure"), Some(1));
    // Missing driver class in configuration errors.
    sda.create_virtual_function(
        "BROKEN",
        "mrserver",
        "no.driver.class=here",
        Schema::of(&[("x", DataType::Int)]),
    )
    .unwrap();
    assert!(sda.invoke_virtual_function("broken").is_err());
}

#[test]
fn iq_adapter_ships_plans() {
    let iq = Arc::new(IqEngine::new("iq", 128).unwrap());
    iq.create_table(
        "sales",
        Schema::of(&[("region", DataType::Varchar), ("amount", DataType::Double)]),
    )
    .unwrap();
    let rows: Vec<Row> = (0..1000)
        .map(|i| {
            Row::from_values([
                Value::from(if i % 2 == 0 { "EMEA" } else { "APJ" }),
                Value::Double(i as f64),
            ])
        })
        .collect();
    iq.direct_load("sales", &rows, 1).unwrap();
    let adapter = IqAdapter::new(Arc::clone(&iq));
    // Shipped group-by with predicate + HAVING + ORDER BY epilogue.
    let rs = adapter
        .execute(
            &query(
                "SELECT region, SUM(amount) AS total, COUNT(*) FROM sales \
                 WHERE amount >= 500 GROUP BY region HAVING COUNT(*) > 10 \
                 ORDER BY total DESC",
            ),
            &RemoteContext::snapshot(1),
        )
        .unwrap();
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.schema.index_of("total"), Some(1));
    assert!(rs.rows[0][1].as_f64().unwrap() > rs.rows[1][1].as_f64().unwrap());
    // Unsupported shapes are rejected, not silently mis-planned.
    assert!(adapter
        .execute(
            &query("SELECT region FROM sales WHERE amount + 1 = 2"),
            &RemoteContext::snapshot(1)
        )
        .is_err());
}

#[test]
fn capability_gates_shape_shipping() {
    let hive = hive_with_data();
    let adapter = HiveOdbcAdapter::new(hive, "DSN=hive1");
    let caps = adapter.capabilities();
    assert!(caps.supports_query(&query(
        "SELECT brand_name, COUNT(*) FROM product GROUP BY brand_name"
    )));
    assert!(!caps.supports_query(&query(
        "SELECT p.product_id FROM product p LEFT OUTER JOIN product q ON p.product_id = q.product_id"
    )));
    assert!(
        !caps.cap_transactions,
        "Hive has no transactional guarantees"
    );
}
