//! Federation-resilience integration tests: seeded fault injection
//! around a real Hive adapter, exercising retry, circuit breaking and
//! stale-fallback degradation through `SdaRegistry::execute_remote`.
//!
//! Everything here is deterministic: whether chaos call *n* fails is a
//! pure function of `(seed, n)`, so these tests never flake. The
//! heavier property sweep at the bottom runs under
//! `--features chaos` (see `.github/workflows/ci.yml`).

use std::sync::Arc;
use std::time::Duration;

use hana_hadoop::{Hdfs, Hive, MrCluster, MrConfig};
use hana_sda::{
    BreakerConfig, BreakerState, CacheOutcome, ChaosAdapter, ChaosConfig, HiveOdbcAdapter,
    RemoteCacheConfig, RemoteContext, RetryPolicy, SdaAdapter, SdaRegistry,
};
use hana_sql::{parse_statement, Statement};
use hana_types::{DataType, Row, Schema, Value};

fn hive_with_data() -> Arc<Hive> {
    let cfg = MrConfig {
        worker_slots: 4,
        job_startup: Duration::from_micros(200),
        task_startup: Duration::from_micros(20),
    };
    let hive = Arc::new(Hive::new(Arc::new(MrCluster::new(
        Arc::new(Hdfs::new(4)),
        cfg,
    ))));
    hive.create_table(
        "orders",
        Schema::of(&[
            ("order_id", DataType::Int),
            ("region", DataType::Varchar),
            ("amount", DataType::Double),
        ]),
    )
    .unwrap();
    let rows: Vec<Row> = (0..100)
        .map(|i| {
            Row::from_values([
                Value::Int(i),
                Value::from(if i % 2 == 0 { "EMEA" } else { "APJ" }),
                Value::Double(i as f64),
            ])
        })
        .collect();
    hive.load("orders", &rows).unwrap();
    hive
}

fn query(sql: &str) -> hana_sql::Query {
    let Statement::Query(q) = parse_statement(sql).unwrap() else {
        panic!()
    };
    q
}

/// Fast-backoff retry policy so tests stay in the milliseconds.
fn fast_retry(attempts: u32) -> RetryPolicy {
    RetryPolicy::default()
        .with_max_attempts(attempts)
        .with_base_backoff(Duration::from_micros(100))
        .with_max_backoff(Duration::from_millis(2))
}

/// Fast-cooldown breaker so recovery tests stay in the milliseconds.
fn fast_breaker(threshold: u32) -> BreakerConfig {
    BreakerConfig::default()
        .with_failure_threshold(threshold)
        .with_cooldown(Duration::from_millis(20))
        .with_half_open_probes(1)
}

/// A registry with one chaos-wrapped Hive source named `hive1`.
fn chaos_registry(
    chaos_cfg: ChaosConfig,
    fed_cfg: RemoteCacheConfig,
) -> (SdaRegistry, Arc<ChaosAdapter>) {
    let hive = hive_with_data();
    let inner: Arc<dyn SdaAdapter> = Arc::new(HiveOdbcAdapter::new(hive, "DSN=hive1"));
    let chaos = Arc::new(ChaosAdapter::new(inner, chaos_cfg));
    let registry = SdaRegistry::new();
    registry
        .create_remote_source(
            "hive1",
            Arc::clone(&chaos) as Arc<dyn SdaAdapter>,
            "DSN=hive1",
            None,
        )
        .unwrap();
    registry.set_cache_config(fed_cfg);
    (registry, chaos)
}

#[test]
fn transient_chaos_succeeds_within_retry_budget() {
    // 30% transient failures over a seeded schedule (the acceptance
    // scenario): every query still succeeds, deterministically, because
    // the retry budget rides out the injected failures.
    let (registry, chaos) = chaos_registry(
        ChaosConfig::default().with_seed(42).with_failure_rate(0.3),
        RemoteCacheConfig::default().with_retry(fast_retry(8)),
    );
    let q = query("SELECT region, COUNT(*) FROM orders GROUP BY region");
    for _ in 0..10 {
        let ctx = RemoteContext::snapshot(1);
        let (rs, outcome) = registry.execute_remote("hive1", &q, &ctx).unwrap();
        assert_eq!(outcome, CacheOutcome::Bypass);
        assert_eq!(rs.len(), 2);
    }
    assert!(
        chaos.injected_failures() > 0,
        "the schedule injected failures ({} calls)",
        chaos.calls()
    );
    let stats = registry.source_stats("hive1").unwrap();
    assert_eq!(stats.breaker_state, BreakerState::Closed);
    assert!(
        stats.retries > 0,
        "retries absorbed the failures: {stats:?}"
    );
    assert_eq!(stats.breaker.successes, 10, "every logical call succeeded");
}

#[test]
fn attempt_trace_records_what_happened() {
    let (registry, _chaos) = chaos_registry(
        ChaosConfig::default().with_seed(7).with_down_window(0, 2),
        RemoteCacheConfig::default().with_retry(fast_retry(5)),
    );
    let q = query("SELECT COUNT(*) FROM orders");
    let ctx = RemoteContext::snapshot(1);
    registry.execute_remote("hive1", &q, &ctx).unwrap();
    let trace = ctx.trace();
    assert_eq!(trace.len(), 3, "two down-window failures, then success");
    assert!(trace[0].error.as_deref().unwrap().contains("down"));
    assert!(trace[1].error.is_some());
    assert!(trace[2].error.is_none());
}

#[test]
fn forced_outage_degrades_to_stale_fallback() {
    let (registry, chaos) = chaos_registry(
        ChaosConfig::default(),
        RemoteCacheConfig::default()
            .with_retry(fast_retry(2))
            .with_breaker(fast_breaker(2))
            .with_stale_fallback(Duration::from_secs(60)),
    );
    let q = query("SELECT region, COUNT(*) FROM orders GROUP BY region");

    // A healthy run populates the local fallback store.
    let (fresh, outcome) = registry
        .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
        .unwrap();
    assert_eq!(outcome, CacheOutcome::Bypass);

    chaos.force_down(true);
    // Degradation: the stale local copy is served, marked as such.
    let (stale, outcome) = registry
        .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
        .unwrap();
    assert_eq!(outcome, CacheOutcome::StaleFallback);
    assert_eq!(
        stale.rows, fresh.rows,
        "bounded-stale copy of the last result"
    );

    // Keep querying until the breaker opens; fallback keeps serving.
    for _ in 0..3 {
        let (_, outcome) = registry
            .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::StaleFallback);
    }
    let stats = registry.source_stats("hive1").unwrap();
    assert_eq!(stats.breaker_state, BreakerState::Open);
    assert!(stats.stale_fallbacks >= 4, "{stats:?}");
    assert!(
        stats.breaker.rejections > 0,
        "open breaker stopped touching the source: {stats:?}"
    );
}

#[test]
fn forced_outage_without_fallback_errors_not_hangs() {
    let (registry, chaos) = chaos_registry(
        ChaosConfig::default(),
        RemoteCacheConfig::default()
            .with_retry(fast_retry(2))
            .with_breaker(fast_breaker(2)),
    );
    chaos.force_down(true);
    let q = query("SELECT COUNT(*) FROM orders WHERE amount > 10");

    // Never-seen query, source down: a retryable error while the
    // breaker is still closed...
    let err = registry
        .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
        .unwrap_err();
    assert!(err.is_retryable(), "{err}");
    let err = registry
        .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
        .unwrap_err();
    assert!(err.is_retryable());

    // ...and once the breaker opens, a fast non-retryable error.
    let stats = registry.source_stats("hive1").unwrap();
    assert_eq!(stats.breaker_state, BreakerState::Open);
    let calls_before = chaos.calls();
    let err = registry
        .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
        .unwrap_err();
    assert!(!err.is_retryable(), "breaker-open fails fast: {err}");
    assert_eq!(err.kind(), "remote");
    assert_eq!(
        chaos.calls(),
        calls_before,
        "the source was not touched while open"
    );
}

#[test]
fn breaker_recovers_through_half_open_probe() {
    let (registry, chaos) = chaos_registry(
        ChaosConfig::default(),
        RemoteCacheConfig::default()
            .with_retry(fast_retry(1))
            .with_breaker(fast_breaker(2))
            .without_stale_fallback(),
    );
    let q = query("SELECT COUNT(*) FROM orders");

    chaos.force_down(true);
    for _ in 0..2 {
        registry
            .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
            .unwrap_err();
    }
    assert_eq!(registry.breaker_state("hive1").unwrap(), BreakerState::Open);

    // Outage ends; after the cooldown the next call is the half-open
    // probe, succeeds, and closes the breaker.
    chaos.force_down(false);
    std::thread::sleep(Duration::from_millis(25));
    let (_, outcome) = registry
        .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
        .unwrap();
    assert_eq!(outcome, CacheOutcome::Bypass);
    let stats = registry.source_stats("hive1").unwrap();
    assert_eq!(stats.breaker_state, BreakerState::Closed);
    assert_eq!(stats.breaker.half_opened, 1);
    assert_eq!(stats.breaker.closed, 1);
}

#[test]
fn deadline_budget_turns_latency_into_timeout() {
    // Stale fallback off: we want to observe the raw timeout, not a
    // graceful degradation to the previous result.
    let (registry, _chaos) = chaos_registry(
        ChaosConfig::default().with_latency(Duration::from_millis(10)),
        RemoteCacheConfig::default()
            .with_retry(fast_retry(3))
            .without_stale_fallback(),
    );
    let q = query("SELECT COUNT(*) FROM orders");

    // Generous budget: succeeds despite the injected latency.
    let ctx = RemoteContext::snapshot(1).with_deadline(Duration::from_secs(5));
    assert!(registry.execute_remote("hive1", &q, &ctx).is_ok());

    // 1ms budget against 10ms injected latency: a retryable timeout,
    // and no further attempts once the budget is spent.
    let ctx = RemoteContext::snapshot(1).with_deadline(Duration::from_millis(1));
    let err = registry.execute_remote("hive1", &q, &ctx).unwrap_err();
    assert_eq!(err.kind(), "remote_timeout", "{err}");
    assert!(err.is_retryable());
    assert_eq!(ctx.attempts(), 1, "no retries past the deadline");
}

#[test]
fn remote_cache_hits_survive_chaos_with_retries() {
    // Remote materialization (§4.4) composes with fault injection: the
    // CTAS + fetch path also rides out transient failures.
    let (registry, _chaos) = chaos_registry(
        ChaosConfig::default().with_seed(11).with_failure_rate(0.2),
        RemoteCacheConfig::default()
            .with_remote_cache(true)
            .with_validity(10_000)
            .with_retry(fast_retry(8)),
    );
    let q = query(
        "SELECT order_id, amount FROM orders WHERE region = 'EMEA' \
         WITH HINT (USE_REMOTE_CACHE)",
    );
    let (rs1, o1) = registry
        .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
        .unwrap();
    let (rs2, o2) = registry
        .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
        .unwrap();
    // The first logical call may land on `Hit` instead of
    // `Materialized`: if an injected failure strikes *after* the CTAS
    // registered the entry, the retry legitimately finds it valid.
    assert!(
        matches!(o1, CacheOutcome::Materialized | CacheOutcome::Hit),
        "{o1:?}"
    );
    assert_eq!(o2, CacheOutcome::Hit);
    assert_eq!(rs1.rows.len(), rs2.rows.len());
}

// ---------------------------------------------------------------------
// Seeded-chaos property sweep (heavier; runs under `--features chaos`).
// ---------------------------------------------------------------------

#[cfg(feature = "chaos")]
mod chaos_sweep {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For any seed and any transient failure rate up to 50%, a
        /// federated query either succeeds within the retry budget or
        /// returns a *retryable* error — it never hangs, panics, or
        /// misclassifies the failure as permanent.
        #[test]
        fn queries_succeed_or_fail_retryably(
            seed in 0u64..1_000_000,
            rate_pct in 0u32..50,
            timeout_pct in 0u32..100,
        ) {
            let (registry, _chaos) = chaos_registry(
                ChaosConfig::default()
                    .with_seed(seed)
                    .with_failure_rate(rate_pct as f64 / 100.0)
                    .with_timeout_share(timeout_pct as f64 / 100.0),
                RemoteCacheConfig::default()
                    .with_retry(fast_retry(4))
                    .without_stale_fallback(),
            );
            let q = query("SELECT region, COUNT(*) FROM orders GROUP BY region");
            for _ in 0..4 {
                match registry.execute_remote("hive1", &q, &RemoteContext::snapshot(1)) {
                    Ok((rs, _)) => prop_assert_eq!(rs.len(), 2),
                    Err(e) => prop_assert!(
                        e.is_retryable(),
                        "injected faults must surface as retryable: {}", e
                    ),
                }
            }
        }

        /// Flap schedules (down windows) leave the registry usable: the
        /// breaker may open during the outage but queries after the
        /// window either succeed or fail fast — never hang.
        #[test]
        fn flap_schedules_never_wedge_the_source(
            seed in 0u64..1_000_000,
            window_len in 1u64..6,
        ) {
            let (registry, _chaos) = chaos_registry(
                ChaosConfig::default()
                    .with_seed(seed)
                    .with_down_window(1, 1 + window_len),
                RemoteCacheConfig::default()
                    .with_retry(fast_retry(3))
                    .with_breaker(
                        fast_breaker(2).with_cooldown(Duration::from_millis(1)),
                    )
                    .without_stale_fallback(),
            );
            let q = query("SELECT COUNT(*) FROM orders");
            let mut successes = 0u32;
            for _ in 0..8 {
                if registry
                    .execute_remote("hive1", &q, &RemoteContext::snapshot(1))
                    .is_ok()
                {
                    successes += 1;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            prop_assert!(successes >= 1, "the source recovers after the window");
        }
    }
}
