//! Conversion of SQL expressions into pushable column predicates.
//!
//! The extended storage and the chunk-pruning layer consume
//! [`ColumnPredicate`]s, not SQL expression trees. This module lowers the
//! pushable subset — `col <op> literal`, `BETWEEN`, `IN`, `LIKE`,
//! `IS [NOT] NULL` — and reports what could not be lowered so the caller
//! can keep a residual filter.

use hana_columnar::ColumnPredicate;
use hana_sql::{BinOp, Expr, UnaryOp};
use hana_types::Value;

/// Try to lower one conjunct to `(column_name, predicate)`.
pub fn expr_to_column_predicate(e: &Expr) -> Option<(String, ColumnPredicate)> {
    match e {
        Expr::Binary { left, op, right } => {
            let (col, lit, flipped) = column_and_literal(left, right)?;
            let pred = match (op, flipped) {
                (BinOp::Eq, _) => ColumnPredicate::Eq(lit),
                (BinOp::Ne, _) => ColumnPredicate::Ne(lit),
                (BinOp::Lt, false) => ColumnPredicate::Lt(lit),
                (BinOp::Lt, true) => ColumnPredicate::Gt(lit),
                (BinOp::Le, false) => ColumnPredicate::Le(lit),
                (BinOp::Le, true) => ColumnPredicate::Ge(lit),
                (BinOp::Gt, false) => ColumnPredicate::Gt(lit),
                (BinOp::Gt, true) => ColumnPredicate::Lt(lit),
                (BinOp::Ge, false) => ColumnPredicate::Ge(lit),
                (BinOp::Ge, true) => ColumnPredicate::Le(lit),
                _ => return None,
            };
            Some((col, pred))
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated: false,
        } => {
            let col = column_name(expr)?;
            Some((col, ColumnPredicate::Between(literal(lo)?, literal(hi)?)))
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } => {
            let col = column_name(expr)?;
            let vals: Option<Vec<Value>> = list.iter().map(literal).collect();
            Some((col, ColumnPredicate::InList(vals?)))
        }
        Expr::Like {
            expr,
            pattern,
            negated: false,
        } => Some((column_name(expr)?, ColumnPredicate::Like(pattern.clone()))),
        Expr::IsNull { expr, negated } => {
            let col = column_name(expr)?;
            Some((
                col,
                if *negated {
                    ColumnPredicate::IsNotNull
                } else {
                    ColumnPredicate::IsNull
                },
            ))
        }
        _ => None,
    }
}

/// Split a conjunctive filter into pushable predicates and residuals.
pub fn split_pushdown(filter: &Expr) -> (Vec<(String, ColumnPredicate)>, Vec<Expr>) {
    let mut pushed = Vec::new();
    let mut residual = Vec::new();
    for c in filter.conjuncts() {
        match expr_to_column_predicate(c) {
            Some(p) => pushed.push(p),
            None => residual.push(c.clone()),
        }
    }
    (pushed, residual)
}

fn column_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Column { name, .. } => Some(name.clone()),
        _ => None,
    }
}

fn literal(e: &Expr) -> Option<Value> {
    match e {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => match literal(expr)? {
            Value::Int(i) => Some(Value::Int(-i)),
            Value::Double(d) => Some(Value::Double(-d)),
            _ => None,
        },
        _ => None,
    }
}

/// `(column, literal, operands_flipped)`.
fn column_and_literal(left: &Expr, right: &Expr) -> Option<(String, Value, bool)> {
    if let (Some(c), Some(l)) = (column_name(left), literal(right)) {
        return Some((c, l, false));
    }
    if let (Some(l), Some(c)) = (literal(left), column_name(right)) {
        return Some((c, l, true));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_sql::{parse_statement, Statement};

    fn filter(sql: &str) -> Expr {
        let Statement::Query(q) = parse_statement(&format!("SELECT * FROM t WHERE {sql}")).unwrap()
        else {
            panic!()
        };
        q.filter.unwrap()
    }

    #[test]
    fn lowers_simple_shapes() {
        let (p, r) = split_pushdown(&filter(
            "a = 1 AND b > 2.5 AND 3 <= c AND d BETWEEN 1 AND 9 \
             AND e IN (1, 2) AND f LIKE 'x%' AND g IS NULL AND h IS NOT NULL",
        ));
        assert!(r.is_empty(), "{r:?}");
        assert_eq!(p.len(), 8);
        assert_eq!(p[0], ("a".into(), ColumnPredicate::Eq(Value::Int(1))));
        assert_eq!(p[2], ("c".into(), ColumnPredicate::Ge(Value::Int(3))));
        assert_eq!(p[6], ("g".into(), ColumnPredicate::IsNull));
    }

    #[test]
    fn negative_literals() {
        let (p, r) = split_pushdown(&filter("a < -5"));
        assert!(r.is_empty());
        assert_eq!(p[0], ("a".into(), ColumnPredicate::Lt(Value::Int(-5))));
    }

    #[test]
    fn residuals_are_kept() {
        let (p, r) = split_pushdown(&filter("a = 1 AND (b = 2 OR c = 3) AND a + 1 = b"));
        assert_eq!(p.len(), 1);
        assert_eq!(r.len(), 2, "OR and column-column comparisons stay residual");
        // NOT-variants are not lowered either.
        let (p2, r2) = split_pushdown(&filter("a NOT IN (1) AND b NOT BETWEEN 1 AND 2"));
        assert!(p2.is_empty());
        assert_eq!(r2.len(), 2);
    }
}
