//! The Smart Data Access adapter trait and concrete adapters.
//!
//! "The communication to remote resources is realized by adapters which
//! are usually specific to the data source" (§4.2). Each adapter exposes
//! its capability set, the remote schemas and statistics, executes
//! shipped sub-queries, and (where supported) materializes results
//! remotely via CTAS.

use std::sync::Arc;

use hana_columnar::ColumnPredicate;
use hana_hadoop::{Hive, MrFunctionRegistry};
use hana_iq::{IqEngine, IqPlan};
use hana_sql::finish::{collect_aggregates, finish_query};
use hana_sql::{BinOp, Expr, JoinKind, Query, TableRef};
use hana_types::{AggFunc, HanaError, Result, ResultSet, Row, Schema};

use crate::capability::CapabilitySet;
use crate::context::RemoteContext;
use crate::pushdown::split_pushdown;

/// MetaStore-style statistics of a remote table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RemoteStats {
    /// Row count.
    pub row_count: u64,
    /// Data file count.
    pub file_count: u64,
    /// Logical modification tick of the remote source.
    pub last_modified: u64,
}

/// One SDA adapter instance, bound to a concrete remote system.
pub trait SdaAdapter: Send + Sync {
    /// Adapter type name (e.g. `hiveodbc`, `hadoop`, `iq`).
    fn adapter_name(&self) -> &'static str;

    /// Host identification (part of the remote-cache hash key).
    fn host(&self) -> &str;

    /// The adapter's capability description.
    fn capabilities(&self) -> CapabilitySet;

    /// Schema of a remote table.
    fn remote_schema(&self, table: &str) -> Result<Schema>;

    /// Statistics of a remote table (for federated cost estimation).
    fn table_stats(&self, table: &str) -> Result<RemoteStats>;

    /// Execute a shipped sub-query under `ctx`. The context carries the
    /// snapshot cid (ignored by sources without transactional
    /// capabilities, like Hive) plus the call's deadline budget —
    /// adapters should honour [`RemoteContext::check_deadline`] at
    /// natural cancellation points so an over-budget federated query
    /// aborts instead of hanging.
    fn execute(&self, q: &Query, ctx: &RemoteContext) -> Result<ResultSet>;

    /// Materialize a query's result into remote table `target`
    /// (CTAS). Returns rows written. Default: unsupported.
    fn ctas(&self, target: &str, q: &Query) -> Result<u64> {
        let _ = (target, q);
        Err(HanaError::Unsupported(format!(
            "adapter '{}' does not support remote materialization",
            self.adapter_name()
        )))
    }

    /// Drop a remote (temp) table. Default: unsupported.
    fn drop_remote_table(&self, name: &str) -> Result<()> {
        Err(HanaError::Unsupported(format!(
            "adapter '{}' cannot drop remote table '{name}'",
            self.adapter_name()
        )))
    }

    /// The remote source's logical clock (cache validity checks).
    fn current_tick(&self) -> u64 {
        0
    }

    /// Invoke a registered remote function (virtual functions, §4.3).
    fn invoke_function(&self, configuration: &str) -> Result<ResultSet> {
        let _ = configuration;
        Err(HanaError::Unsupported(format!(
            "adapter '{}' does not support virtual functions",
            self.adapter_name()
        )))
    }

    /// Ship rows into a remote temp table (semi-join reduction / table
    /// relocation). Returns the temp table name. Default: unsupported.
    fn create_temp_table(
        &self,
        schema: Schema,
        rows: &[Row],
        ctx: &RemoteContext,
    ) -> Result<String> {
        let _ = (schema, rows, ctx);
        Err(HanaError::Unsupported(format!(
            "adapter '{}' cannot receive shipped rows",
            self.adapter_name()
        )))
    }

    /// Source-side selectivity estimate for one column predicate, if the
    /// source maintains statistics for it (§3.1: histograms "on the
    /// extended storage"). `None` falls back to default selectivities.
    fn estimate_selectivity(
        &self,
        table: &str,
        column: &str,
        pred: &ColumnPredicate,
    ) -> Option<f64> {
        let _ = (table, column, pred);
        None
    }

    /// Distinct-count of a remote column, if the source maintains one.
    /// Feeds the join-key synopsis of the federated cost model
    /// (`JoinSituation::remote_key_ndv`); `None` leaves it unknown.
    fn column_distinct(&self, table: &str, column: &str) -> Option<u64> {
        let _ = (table, column);
        None
    }
}

// ---------------------------------------------------------------- hive

/// The `hiveodbc` adapter: ships HiveQL over a simulated ODBC
/// connection (§4.2, Figure 10).
///
/// The configuration may carry `row_cost_us=<n>` to model the per-row
/// ODBC transfer cost of fetching results back into HANA — the paper's
/// mixed queries show lower materialization benefit precisely because
/// "the results fetched from the remote source are joined with local
/// tables in HANA", and that fetch is not free.
pub struct HiveOdbcAdapter {
    hive: Arc<Hive>,
    dsn: String,
    row_cost: std::time::Duration,
}

impl HiveOdbcAdapter {
    /// Connect to `hive` with the DSN from the remote-source
    /// configuration (e.g. `DSN=hive1;row_cost_us=50`).
    pub fn new(hive: Arc<Hive>, configuration: &str) -> HiveOdbcAdapter {
        let get = |key: &str| {
            configuration
                .split(';')
                .find_map(|kv| kv.trim().strip_prefix(key))
                .map(str::to_string)
        };
        let dsn = get("DSN=").unwrap_or_else(|| "hive".into());
        let row_cost_us: u64 = get("row_cost_us=")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        HiveOdbcAdapter {
            hive,
            dsn,
            row_cost: std::time::Duration::from_micros(row_cost_us),
        }
    }

    /// The wrapped Hive engine.
    pub fn hive(&self) -> &Arc<Hive> {
        &self.hive
    }

    fn charge_transfer(&self, rows: usize) {
        if !self.row_cost.is_zero() && rows > 0 {
            std::thread::sleep(self.row_cost * rows as u32);
        }
    }
}

impl SdaAdapter for HiveOdbcAdapter {
    fn adapter_name(&self) -> &'static str {
        "hiveodbc"
    }

    fn host(&self) -> &str {
        &self.dsn
    }

    fn capabilities(&self) -> CapabilitySet {
        CapabilitySet::hive()
    }

    fn remote_schema(&self, table: &str) -> Result<Schema> {
        self.hive.table_schema(table)
    }

    fn table_stats(&self, table: &str) -> Result<RemoteStats> {
        let s = self.hive.table_stats(table)?;
        Ok(RemoteStats {
            row_count: s.row_count,
            file_count: s.file_count,
            last_modified: s.last_modified,
        })
    }

    fn execute(&self, q: &Query, ctx: &RemoteContext) -> Result<ResultSet> {
        ctx.check_deadline("hive query submission")?;
        let rs = self.hive.execute_query(q)?;
        self.charge_transfer(rs.len());
        // The per-row ODBC transfer cost counts against the budget too.
        ctx.check_deadline("hive result transfer")?;
        Ok(rs)
    }

    fn ctas(&self, target: &str, q: &Query) -> Result<u64> {
        // The materialized result stays at the remote source: no
        // transfer cost beyond the job itself (§4.4).
        Ok(self.hive.create_table_as_select(target, q)?.rows)
    }

    fn drop_remote_table(&self, name: &str) -> Result<()> {
        self.hive.drop_table(name)
    }

    fn current_tick(&self) -> u64 {
        self.hive.current_tick()
    }

    fn create_temp_table(
        &self,
        schema: Schema,
        rows: &[Row],
        ctx: &RemoteContext,
    ) -> Result<String> {
        ctx.check_deadline("hive temp-table shipping")?;
        let name = format!("tmp_shipped_{}", self.hive.current_tick());
        self.hive.create_table(&name, schema)?;
        self.hive.load(&name, rows)?;
        Ok(name)
    }
}

// -------------------------------------------------------------- hadoop

/// The raw `hadoop` adapter: invokes registered MR driver classes via
/// WebHDFS/WebHCat-style configuration (§4.3, Figure 11).
pub struct HadoopMrAdapter {
    registry: Arc<MrFunctionRegistry>,
    host: String,
}

impl HadoopMrAdapter {
    /// Bind to a function registry; configuration carries the
    /// `webhdfs=…;webhcatalog=…` endpoints (kept as host label).
    pub fn new(registry: Arc<MrFunctionRegistry>, configuration: &str) -> HadoopMrAdapter {
        let host = configuration
            .split(';')
            .find_map(|kv| kv.trim().strip_prefix("webhdfs="))
            .unwrap_or("hadoop")
            .to_string();
        HadoopMrAdapter { registry, host }
    }
}

impl SdaAdapter for HadoopMrAdapter {
    fn adapter_name(&self) -> &'static str {
        "hadoop"
    }

    fn host(&self) -> &str {
        &self.host
    }

    fn capabilities(&self) -> CapabilitySet {
        CapabilitySet::hadoop_mr()
    }

    fn remote_schema(&self, table: &str) -> Result<Schema> {
        Err(HanaError::Unsupported(format!(
            "the hadoop adapter exposes functions, not tables ('{table}')"
        )))
    }

    fn table_stats(&self, _table: &str) -> Result<RemoteStats> {
        Ok(RemoteStats::default())
    }

    fn execute(&self, q: &Query, _ctx: &RemoteContext) -> Result<ResultSet> {
        Err(HanaError::Unsupported(format!(
            "the hadoop adapter cannot execute SQL ('{q}')"
        )))
    }

    fn invoke_function(&self, configuration: &str) -> Result<ResultSet> {
        // Parse `hana.mapred.driver.class = com.x.Y;` from the virtual
        // function's CONFIGURATION string.
        let driver = configuration
            .split(';')
            .filter_map(|kv| kv.split_once('='))
            .find(|(k, _)| k.trim() == "hana.mapred.driver.class")
            .map(|(_, v)| v.trim().to_string())
            .ok_or_else(|| {
                HanaError::Config(
                    "virtual function configuration lacks hana.mapred.driver.class".into(),
                )
            })?;
        self.registry.invoke(&driver)
    }
}

// ------------------------------------------------------------------ iq

/// The extended-storage adapter: compiles shipped sub-queries into
/// [`IqPlan`]s executed by the IQ engine (§3.1 "Query Processing").
pub struct IqAdapter {
    engine: Arc<IqEngine>,
}

impl IqAdapter {
    /// Wrap an IQ engine.
    pub fn new(engine: Arc<IqEngine>) -> IqAdapter {
        IqAdapter { engine }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Arc<IqEngine> {
        &self.engine
    }

    /// Compile the scan/join/aggregate part of `q` into an [`IqPlan`].
    /// Residual predicates or unsupported shapes are an error — the
    /// federated optimizer must not ship such queries here.
    pub fn compile(&self, q: &Query) -> Result<IqPlan> {
        let from = q
            .from
            .as_ref()
            .ok_or_else(|| HanaError::Plan("query without FROM".into()))?;
        let (first_binding, first_table) = named(from)?;

        // Partition WHERE into per-binding pushdowns.
        let mut bindings = vec![(first_binding.clone(), first_table.clone())];
        for j in &q.joins {
            if j.kind != JoinKind::Inner {
                return Err(HanaError::Unsupported(
                    "IQ plan compiler supports inner joins only".into(),
                ));
            }
            bindings.push(named(&j.table)?);
        }
        let (pushed, residual) = match &q.filter {
            Some(f) => split_pushdown(f),
            None => (Vec::new(), Vec::new()),
        };
        if !residual.is_empty() {
            return Err(HanaError::Unsupported(format!(
                "predicates not pushable to IQ: {residual:?}"
            )));
        }
        // Attribute each predicate to the binding whose schema has it.
        let mut per: Vec<Vec<(String, ColumnPredicate)>> = vec![Vec::new(); bindings.len()];
        'pred: for (col, p) in pushed {
            for (i, (_, table)) in bindings.iter().enumerate() {
                if self.engine.table_schema(table)?.index_of(&col).is_some() {
                    per[i].push((col, p));
                    continue 'pred;
                }
            }
            return Err(HanaError::Plan(format!(
                "predicate column '{col}' not found in any shipped table"
            )));
        }

        let mut plan = IqPlan::scan_where(&first_table, per[0].clone());
        for (i, j) in q.joins.iter().enumerate() {
            let (lk, rk) = equi_columns(&j.on)?;
            plan = IqPlan::Join {
                left: Box::new(plan),
                right: Box::new(IqPlan::scan_where(&bindings[i + 1].1, per[i + 1].clone())),
                left_col: lk,
                right_col: rk,
            };
        }

        // Aggregation: group-by columns and aggregate args must be plain
        // columns for pushdown.
        let aggs = collect_aggregates(q);
        if !q.group_by.is_empty() || !aggs.is_empty() {
            let group_by: Vec<String> = q
                .group_by
                .iter()
                .map(|g| match g {
                    Expr::Column { name, .. } => Ok(name.clone()),
                    other => Err(HanaError::Unsupported(format!(
                        "IQ group-by supports plain columns, got {other}"
                    ))),
                })
                .collect::<Result<_>>()?;
            let aggregates: Vec<(AggFunc, Option<String>)> = aggs
                .iter()
                .map(|(f, arg)| match arg {
                    None => Ok((*f, None)),
                    Some(Expr::Column { name, .. }) => Ok((*f, Some(name.clone()))),
                    Some(other) => Err(HanaError::Unsupported(format!(
                        "IQ aggregates support plain columns, got {other}"
                    ))),
                })
                .collect::<Result<_>>()?;
            plan = IqPlan::Aggregate {
                input: Box::new(plan),
                group_by,
                aggregates,
            };
        }
        Ok(plan)
    }
}

fn named(t: &TableRef) -> Result<(String, String)> {
    match t {
        TableRef::Named { name, alias } => {
            Ok((alias.clone().unwrap_or_else(|| name.clone()), name.clone()))
        }
        other => Err(HanaError::Unsupported(format!(
            "IQ FROM supports named tables only, got {other}"
        ))),
    }
}

fn equi_columns(on: &Expr) -> Result<(String, String)> {
    if let Expr::Binary {
        left,
        op: BinOp::Eq,
        right,
    } = on
    {
        if let (Expr::Column { name: l, .. }, Expr::Column { name: r, .. }) =
            (left.as_ref(), right.as_ref())
        {
            return Ok((l.clone(), r.clone()));
        }
    }
    Err(HanaError::Unsupported(format!(
        "IQ joins need a simple equi-join ON clause, got {on}"
    )))
}

impl SdaAdapter for IqAdapter {
    fn adapter_name(&self) -> &'static str {
        "iq"
    }

    fn host(&self) -> &str {
        self.engine.name()
    }

    fn capabilities(&self) -> CapabilitySet {
        CapabilitySet::iq()
    }

    fn remote_schema(&self, table: &str) -> Result<Schema> {
        self.engine.table_schema(table)
    }

    fn table_stats(&self, table: &str) -> Result<RemoteStats> {
        Ok(RemoteStats {
            row_count: self.engine.row_count(table, u64::MAX - 1)? as u64,
            file_count: 1,
            last_modified: 0,
        })
    }

    fn execute(&self, q: &Query, ctx: &RemoteContext) -> Result<ResultSet> {
        ctx.check_deadline("IQ plan compilation")?;
        let plan = self.compile(q)?;
        let rs = self.engine.execute(&plan, ctx.cid())?;
        // The aggregate stage (if any) produced positional columns named
        // by the engine; rename to the shared `_g/_a` convention before
        // the driver epilogue.
        let aggs = collect_aggregates(q);
        let rs = if !q.group_by.is_empty() || !aggs.is_empty() {
            rename_positional(rs, q.group_by.len())?
        } else {
            rs
        };
        let (rows, schema) = finish_query(rs.rows, &rs.schema, q)?;
        Ok(ResultSet::new(schema, rows))
    }

    fn create_temp_table(
        &self,
        schema: Schema,
        rows: &[Row],
        ctx: &RemoteContext,
    ) -> Result<String> {
        ctx.check_deadline("IQ temp-table shipping")?;
        self.engine.create_temp_table(schema, rows, ctx.cid())
    }

    fn drop_remote_table(&self, name: &str) -> Result<()> {
        self.engine.drop_table(name)
    }

    /// Range-based estimation from the engine's zone-map metadata: a
    /// numeric predicate's selectivity is interpolated over the column's
    /// min/max span.
    fn estimate_selectivity(
        &self,
        table: &str,
        column: &str,
        pred: &ColumnPredicate,
    ) -> Option<f64> {
        let (min, max) = self.engine.column_range(table, column).ok()?;
        let (lo, hi) = (min?.as_f64()?, max?.as_f64()?);
        if hi <= lo {
            return None;
        }
        let span = hi - lo;
        let frac = |v: &hana_types::Value| v.as_f64().map(|x| ((x - lo) / span).clamp(0.0, 1.0));
        match pred {
            ColumnPredicate::Lt(v) | ColumnPredicate::Le(v) => frac(v),
            ColumnPredicate::Gt(v) | ColumnPredicate::Ge(v) => frac(v).map(|f| 1.0 - f),
            ColumnPredicate::Between(a, b) => Some((frac(b)? - frac(a)?).clamp(0.0, 1.0)),
            ColumnPredicate::Eq(_) => {
                let rows = self.engine.row_count(table, u64::MAX - 1).ok()? as f64;
                Some((1.0 / rows.max(1.0)).min(1.0))
            }
            _ => None,
        }
    }

    /// Exact distinct-count from the IQ store.
    fn column_distinct(&self, table: &str, column: &str) -> Option<u64> {
        self.engine.column_distinct(table, column).ok()
    }
}

/// Rename an aggregate result's columns to `_g0.._gN, _a0.._aM`.
fn rename_positional(rs: ResultSet, groups: usize) -> Result<ResultSet> {
    let cols = rs
        .schema
        .columns()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let name = if i < groups {
                format!("_g{i}")
            } else {
                format!("_a{}", i - groups)
            };
            hana_types::ColumnDef {
                name,
                data_type: c.data_type,
                nullable: c.nullable,
            }
        })
        .collect();
    Ok(ResultSet::new(Schema::new(cols)?, rs.rows))
}
