//! The SDA registry: remote sources, virtual tables, virtual functions.
//!
//! Backs the DDL of §4.2/§4.3: `CREATE REMOTE SOURCE` registers an
//! adapter instance, `CREATE VIRTUAL TABLE` wraps a remote table so it
//! "can be referenced like tables or views in SAP HANA queries", and
//! `CREATE VIRTUAL FUNCTION` exposes a registered MR program as a table
//! function.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use hana_types::{HanaError, ResultSet, Result, Schema};

use crate::adapter::SdaAdapter;
use crate::cache::{CacheOutcome, RemoteCache, RemoteCacheConfig};

/// A registered remote source.
#[derive(Clone)]
pub struct RemoteSource {
    /// Source name (from `CREATE REMOTE SOURCE`).
    pub name: String,
    /// The adapter instance.
    pub adapter: Arc<dyn SdaAdapter>,
    /// The raw configuration string.
    pub configuration: String,
    /// Credential payload, if any (single credential control, §2).
    pub credentials: Option<String>,
}

/// A virtual table: local name -> (source, remote table).
#[derive(Debug, Clone)]
pub struct VirtualTable {
    /// Local name.
    pub name: String,
    /// Remote source name.
    pub source: String,
    /// Table name at the remote source.
    pub remote_table: String,
    /// Cached remote schema.
    pub schema: Schema,
}

/// A virtual function: local name -> (source, configuration, schema).
#[derive(Debug, Clone)]
pub struct VirtualFunction {
    /// Local name.
    pub name: String,
    /// Remote source name.
    pub source: String,
    /// Configuration (driver class, jars, reducer count …).
    pub configuration: String,
    /// Declared output schema.
    pub schema: Schema,
}

/// The registry owned by the platform.
pub struct SdaRegistry {
    sources: RwLock<HashMap<String, RemoteSource>>,
    virtual_tables: RwLock<HashMap<String, VirtualTable>>,
    virtual_functions: RwLock<HashMap<String, VirtualFunction>>,
    /// The remote materialization cache (shared across sources; keys
    /// include the host).
    pub cache: RemoteCache,
}

impl SdaRegistry {
    /// An empty registry with the default (disabled) cache config.
    pub fn new() -> SdaRegistry {
        SdaRegistry {
            sources: RwLock::new(HashMap::new()),
            virtual_tables: RwLock::new(HashMap::new()),
            virtual_functions: RwLock::new(HashMap::new()),
            cache: RemoteCache::default(),
        }
    }

    /// Register a remote source.
    pub fn create_remote_source(
        &self,
        name: &str,
        adapter: Arc<dyn SdaAdapter>,
        configuration: &str,
        credentials: Option<&str>,
    ) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut sources = self.sources.write();
        if sources.contains_key(&key) {
            return Err(HanaError::Catalog(format!(
                "remote source '{name}' already exists"
            )));
        }
        sources.insert(
            key.clone(),
            RemoteSource {
                name: key,
                adapter,
                configuration: configuration.to_string(),
                credentials: credentials.map(|c| c.to_string()),
            },
        );
        Ok(())
    }

    /// Look up a remote source.
    pub fn source(&self, name: &str) -> Result<RemoteSource> {
        self.sources
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| HanaError::Catalog(format!("unknown remote source '{name}'")))
    }

    /// Registered source names.
    pub fn list_sources(&self) -> Vec<String> {
        let mut v: Vec<String> = self.sources.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Create a virtual table over `source_name`.`remote_table`,
    /// importing (and caching) the remote schema.
    pub fn create_virtual_table(
        &self,
        local_name: &str,
        source_name: &str,
        remote_table: &str,
    ) -> Result<()> {
        let source = self.source(source_name)?;
        let schema = source.adapter.remote_schema(remote_table)?;
        let key = local_name.to_ascii_lowercase();
        let mut vts = self.virtual_tables.write();
        if vts.contains_key(&key) {
            return Err(HanaError::Catalog(format!(
                "virtual table '{local_name}' already exists"
            )));
        }
        vts.insert(
            key.clone(),
            VirtualTable {
                name: key,
                source: source.name.clone(),
                remote_table: remote_table.to_string(),
                schema,
            },
        );
        Ok(())
    }

    /// Look up a virtual table by local name.
    pub fn virtual_table(&self, name: &str) -> Option<VirtualTable> {
        self.virtual_tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    /// Register a virtual function.
    pub fn create_virtual_function(
        &self,
        name: &str,
        source_name: &str,
        configuration: &str,
        schema: Schema,
    ) -> Result<()> {
        // Validate the source exists up front.
        let source = self.source(source_name)?;
        let key = name.to_ascii_lowercase();
        let mut vfs = self.virtual_functions.write();
        if vfs.contains_key(&key) {
            return Err(HanaError::Catalog(format!(
                "virtual function '{name}' already exists"
            )));
        }
        vfs.insert(
            key.clone(),
            VirtualFunction {
                name: key,
                source: source.name.clone(),
                configuration: configuration.to_string(),
                schema,
            },
        );
        Ok(())
    }

    /// Look up a virtual function by name.
    pub fn virtual_function(&self, name: &str) -> Option<VirtualFunction> {
        self.virtual_functions
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    /// Invoke a virtual function, validating the declared schema against
    /// what the job produced.
    pub fn invoke_virtual_function(&self, name: &str) -> Result<ResultSet> {
        let vf = self.virtual_function(name).ok_or_else(|| {
            HanaError::Catalog(format!("unknown virtual function '{name}'"))
        })?;
        let source = self.source(&vf.source)?;
        let rs = source.adapter.invoke_function(&vf.configuration)?;
        if rs.schema.len() != vf.schema.len() {
            return Err(HanaError::Remote(format!(
                "virtual function '{name}' returned {} columns, declared {}",
                rs.schema.len(),
                vf.schema.len()
            )));
        }
        // Present rows under the *declared* schema (SDA applies the
        // data-type mapping).
        Ok(ResultSet::new(vf.schema.clone(), rs.rows))
    }

    /// Execute a query against a source through the remote cache.
    pub fn execute_remote(
        &self,
        source_name: &str,
        q: &hana_sql::Query,
        cid: u64,
    ) -> Result<(ResultSet, CacheOutcome)> {
        let source = self.source(source_name)?;
        self.cache.execute(&source.adapter, q, cid)
    }

    /// Set the cache configuration.
    pub fn set_cache_config(&self, config: RemoteCacheConfig) {
        self.cache.set_config(config);
    }
}

impl Default for SdaRegistry {
    fn default() -> Self {
        SdaRegistry::new()
    }
}
