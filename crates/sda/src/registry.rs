//! The SDA registry: remote sources, virtual tables, virtual functions.
//!
//! Backs the DDL of §4.2/§4.3: `CREATE REMOTE SOURCE` registers an
//! adapter instance, `CREATE VIRTUAL TABLE` wraps a remote table so it
//! "can be referenced like tables or views in SAP HANA queries", and
//! `CREATE VIRTUAL FUNCTION` exposes a registered MR program as a table
//! function.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use hana_types::{HanaError, Result, ResultSet, Schema};

use crate::adapter::SdaAdapter;
use crate::breaker::{BreakerState, BreakerStats, CircuitBreaker};
use crate::cache::{CacheOutcome, RemoteCache, RemoteCacheConfig};
use crate::context::RemoteContext;
use crate::retry::run_with_retry;

/// A registered remote source.
#[derive(Clone)]
pub struct RemoteSource {
    /// Source name (from `CREATE REMOTE SOURCE`).
    pub name: String,
    /// The adapter instance.
    pub adapter: Arc<dyn SdaAdapter>,
    /// The raw configuration string.
    pub configuration: String,
    /// Credential payload, if any (single credential control, §2).
    pub credentials: Option<String>,
}

/// A virtual table: local name -> (source, remote table).
#[derive(Debug, Clone)]
pub struct VirtualTable {
    /// Local name.
    pub name: String,
    /// Remote source name.
    pub source: String,
    /// Table name at the remote source.
    pub remote_table: String,
    /// Cached remote schema.
    pub schema: Schema,
}

/// A virtual function: local name -> (source, configuration, schema).
#[derive(Debug, Clone)]
pub struct VirtualFunction {
    /// Local name.
    pub name: String,
    /// Remote source name.
    pub source: String,
    /// Configuration (driver class, jars, reducer count …).
    pub configuration: String,
    /// Declared output schema.
    pub schema: Schema,
}

/// Per-source resilience state: one circuit breaker plus counters.
struct SourceResilience {
    breaker: CircuitBreaker,
    retries: AtomicU64,
    stale_fallbacks: AtomicU64,
}

/// Observable per-source resilience statistics
/// ([`SdaRegistry::source_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteSourceStats {
    /// Current breaker state.
    pub breaker_state: BreakerState,
    /// Breaker counters (successes, failures, rejections, transitions).
    pub breaker: BreakerStats,
    /// Retry attempts beyond the first, summed over all calls.
    pub retries: u64,
    /// Queries served from the stale local fallback store.
    pub stale_fallbacks: u64,
}

/// The registry owned by the platform.
pub struct SdaRegistry {
    sources: RwLock<HashMap<String, RemoteSource>>,
    virtual_tables: RwLock<HashMap<String, VirtualTable>>,
    virtual_functions: RwLock<HashMap<String, VirtualFunction>>,
    resilience: RwLock<HashMap<String, Arc<SourceResilience>>>,
    /// The remote materialization cache (shared across sources; keys
    /// include the host).
    pub cache: RemoteCache,
}

impl SdaRegistry {
    /// An empty registry with the default (disabled) cache config.
    pub fn new() -> SdaRegistry {
        SdaRegistry {
            sources: RwLock::new(HashMap::new()),
            virtual_tables: RwLock::new(HashMap::new()),
            virtual_functions: RwLock::new(HashMap::new()),
            resilience: RwLock::new(HashMap::new()),
            cache: RemoteCache::default(),
        }
    }

    /// Register a remote source.
    pub fn create_remote_source(
        &self,
        name: &str,
        adapter: Arc<dyn SdaAdapter>,
        configuration: &str,
        credentials: Option<&str>,
    ) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut sources = self.sources.write();
        if sources.contains_key(&key) {
            return Err(HanaError::Catalog(format!(
                "remote source '{name}' already exists"
            )));
        }
        sources.insert(
            key.clone(),
            RemoteSource {
                name: key,
                adapter,
                configuration: configuration.to_string(),
                credentials: credentials.map(|c| c.to_string()),
            },
        );
        Ok(())
    }

    /// Look up a remote source.
    pub fn source(&self, name: &str) -> Result<RemoteSource> {
        self.sources
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| HanaError::Catalog(format!("unknown remote source '{name}'")))
    }

    /// Registered source names.
    pub fn list_sources(&self) -> Vec<String> {
        let mut v: Vec<String> = self.sources.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Create a virtual table over `source_name`.`remote_table`,
    /// importing (and caching) the remote schema.
    pub fn create_virtual_table(
        &self,
        local_name: &str,
        source_name: &str,
        remote_table: &str,
    ) -> Result<()> {
        let source = self.source(source_name)?;
        let schema = source.adapter.remote_schema(remote_table)?;
        let key = local_name.to_ascii_lowercase();
        let mut vts = self.virtual_tables.write();
        if vts.contains_key(&key) {
            return Err(HanaError::Catalog(format!(
                "virtual table '{local_name}' already exists"
            )));
        }
        vts.insert(
            key.clone(),
            VirtualTable {
                name: key,
                source: source.name.clone(),
                remote_table: remote_table.to_string(),
                schema,
            },
        );
        Ok(())
    }

    /// Look up a virtual table by local name.
    pub fn virtual_table(&self, name: &str) -> Option<VirtualTable> {
        self.virtual_tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    /// Register a virtual function.
    pub fn create_virtual_function(
        &self,
        name: &str,
        source_name: &str,
        configuration: &str,
        schema: Schema,
    ) -> Result<()> {
        // Validate the source exists up front.
        let source = self.source(source_name)?;
        let key = name.to_ascii_lowercase();
        let mut vfs = self.virtual_functions.write();
        if vfs.contains_key(&key) {
            return Err(HanaError::Catalog(format!(
                "virtual function '{name}' already exists"
            )));
        }
        vfs.insert(
            key.clone(),
            VirtualFunction {
                name: key,
                source: source.name.clone(),
                configuration: configuration.to_string(),
                schema,
            },
        );
        Ok(())
    }

    /// Look up a virtual function by name.
    pub fn virtual_function(&self, name: &str) -> Option<VirtualFunction> {
        self.virtual_functions
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
    }

    /// Invoke a virtual function, validating the declared schema against
    /// what the job produced. MR invocations run under the same
    /// breaker/retry regime as remote queries.
    pub fn invoke_virtual_function(&self, name: &str) -> Result<ResultSet> {
        let vf = self
            .virtual_function(name)
            .ok_or_else(|| HanaError::Catalog(format!("unknown virtual function '{name}'")))?;
        let source = self.source(&vf.source)?;
        let res = self.resilience_for(&source.name);
        if !res.breaker.try_acquire() {
            return Err(self.breaker_open_error(&source.name, &res));
        }
        let ctx = RemoteContext::snapshot(0);
        let policy = self.cache.config().retry;
        let rs = self.with_breaker(&res, || {
            run_with_retry(&policy, &ctx, &format!("virtual function '{name}'"), |_| {
                source.adapter.invoke_function(&vf.configuration)
            })
        })?;
        res.retries
            .fetch_add(ctx.attempts().saturating_sub(1) as u64, Ordering::Relaxed);
        if rs.schema.len() != vf.schema.len() {
            return Err(HanaError::remote(format!(
                "virtual function '{name}' returned {} columns, declared {}",
                rs.schema.len(),
                vf.schema.len()
            )));
        }
        // Present rows under the *declared* schema (SDA applies the
        // data-type mapping).
        Ok(ResultSet::new(vf.schema.clone(), rs.rows))
    }

    /// Execute a query against a source through the remote cache, under
    /// the full resilience regime:
    ///
    /// 1. an **open circuit breaker** fails fast — the stale local
    ///    fallback is served if one exists, else a *non-retryable*
    ///    remote error returns immediately (never a hang);
    /// 2. otherwise the call runs with **retry** (the context's policy,
    ///    or the configured default) against the context's deadline,
    ///    every attempt feeding the breaker;
    /// 3. if the retry budget exhausts on a retryable error, the stale
    ///    fallback is tried before the error surfaces.
    pub fn execute_remote(
        &self,
        source_name: &str,
        q: &hana_sql::Query,
        ctx: &RemoteContext,
    ) -> Result<(ResultSet, CacheOutcome)> {
        let source = self.source(source_name)?;
        let res = self.resilience_for(&source.name);
        let obs = hana_obs::registry();
        let span = hana_obs::span("sda_execute");
        if !res.breaker.try_acquire() {
            obs.counter(&format!(
                "hana_sda_breaker_rejections_total_{}",
                source.name
            ))
            .inc();
            if let Some(rs) = self.cache.stale_lookup(q, source.adapter.host()) {
                res.stale_fallbacks.fetch_add(1, Ordering::Relaxed);
                obs.counter(&format!("hana_sda_stale_fallbacks_total_{}", source.name))
                    .inc();
                span.attr("stale_fallback", 1);
                return Ok((rs, CacheOutcome::StaleFallback));
            }
            return Err(self.breaker_open_error(&source.name, &res));
        }
        let policy = ctx.retry().copied().unwrap_or(self.cache.config().retry);
        let attempts_before = ctx.attempts();
        let opened_before = res.breaker.stats().opened;
        let started = std::time::Instant::now();
        let outcome = self.with_breaker(&res, || {
            run_with_retry(
                &policy,
                ctx,
                &format!("remote query on '{}'", source.name),
                |_| self.cache.execute(&source.adapter, q, ctx),
            )
        });
        // Per-source observability: attempt/retry/trip counters plus
        // the remote round-trip latency histogram.
        let attempts = (ctx.attempts() - attempts_before) as u64;
        let retries = attempts.saturating_sub(1);
        res.retries.fetch_add(retries, Ordering::Relaxed);
        obs.histogram(&format!("hana_sda_roundtrip_ns_{}", source.name))
            .record(started.elapsed().as_nanos() as u64);
        obs.counter(&format!("hana_sda_attempts_total_{}", source.name))
            .add(attempts.max(1));
        obs.counter(&format!("hana_sda_retries_total_{}", source.name))
            .add(retries);
        let tripped = res.breaker.stats().opened - opened_before;
        if tripped > 0 {
            obs.counter(&format!("hana_sda_breaker_trips_total_{}", source.name))
                .add(tripped);
        }
        span.attr("attempts", attempts.max(1));
        span.attr("retries", retries);
        match outcome {
            Ok((rs, cache_outcome)) => {
                span.set_rows(rs.rows.len() as u64);
                span.set_bytes(rs.approx_bytes());
                Ok((rs, cache_outcome))
            }
            Err(e) if e.is_retryable() => {
                if let Some(rs) = self.cache.stale_lookup(q, source.adapter.host()) {
                    res.stale_fallbacks.fetch_add(1, Ordering::Relaxed);
                    obs.counter(&format!("hana_sda_stale_fallbacks_total_{}", source.name))
                        .inc();
                    span.attr("stale_fallback", 1);
                    return Ok((rs, CacheOutcome::StaleFallback));
                }
                Err(e)
            }
            Err(e) => Err(e),
        }
    }

    /// Resilience statistics of one source (breaker state/counters,
    /// retries, stale fallbacks served).
    pub fn source_stats(&self, name: &str) -> Result<RemoteSourceStats> {
        // Validate the source exists even if it was never queried.
        let source = self.source(name)?;
        let res = self.resilience_for(&source.name);
        Ok(RemoteSourceStats {
            breaker_state: res.breaker.state(),
            breaker: res.breaker.stats(),
            retries: res.retries.load(Ordering::Relaxed),
            stale_fallbacks: res.stale_fallbacks.load(Ordering::Relaxed),
        })
    }

    /// Current breaker state of a source.
    pub fn breaker_state(&self, name: &str) -> Result<BreakerState> {
        Ok(self.source_stats(name)?.breaker_state)
    }

    /// Replace the adapter behind a registered source (keeps the
    /// configuration/credentials). Used to interpose wrappers such as
    /// [`crate::ChaosAdapter`].
    pub fn replace_adapter(&self, name: &str, adapter: Arc<dyn SdaAdapter>) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut sources = self.sources.write();
        let source = sources
            .get_mut(&key)
            .ok_or_else(|| HanaError::Catalog(format!("unknown remote source '{name}'")))?;
        source.adapter = adapter;
        Ok(())
    }

    /// Set the federation configuration. Per-source breakers are rebuilt
    /// so new thresholds take effect immediately.
    pub fn set_cache_config(&self, config: RemoteCacheConfig) {
        self.cache.set_config(config);
        self.resilience.write().clear();
    }

    fn resilience_for(&self, key: &str) -> Arc<SourceResilience> {
        if let Some(r) = self.resilience.read().get(key) {
            return Arc::clone(r);
        }
        let mut map = self.resilience.write();
        Arc::clone(map.entry(key.to_string()).or_insert_with(|| {
            Arc::new(SourceResilience {
                breaker: CircuitBreaker::new(self.cache.config().breaker),
                retries: AtomicU64::new(0),
                stale_fallbacks: AtomicU64::new(0),
            })
        }))
    }

    /// Run `f`, feeding its outcome to the source's breaker: successes
    /// close the failure streak, retryable failures extend it. Permanent
    /// errors (bad SQL, schema mismatches) say nothing about source
    /// health and leave the breaker alone.
    fn with_breaker<T>(&self, res: &SourceResilience, f: impl FnOnce() -> Result<T>) -> Result<T> {
        match f() {
            Ok(v) => {
                res.breaker.record_success();
                Ok(v)
            }
            Err(e) => {
                if e.is_retryable() {
                    res.breaker.record_failure();
                }
                Err(e)
            }
        }
    }

    fn breaker_open_error(&self, name: &str, res: &SourceResilience) -> HanaError {
        HanaError::remote(format!(
            "circuit breaker open for remote source '{name}' — failing fast \
             ({} consecutive-failure threshold reached, {} rejections so far)",
            res.breaker.config().failure_threshold,
            res.breaker.stats().rejections,
        ))
    }
}

impl Default for SdaRegistry {
    fn default() -> Self {
        SdaRegistry::new()
    }
}
