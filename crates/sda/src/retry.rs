//! Per-source retry with exponential backoff, deterministic jitter and
//! a total deadline budget.
//!
//! Remote sources behind SDA (Hive MR jobs, the extended store, MR
//! driver classes) fail transiently far more often than the in-memory
//! core. The federation layer therefore retries *retryable* errors
//! ([`hana_types::HanaError::is_retryable`]) with capped exponential
//! backoff. Jitter is derived from a seeded SplitMix64 stream rather
//! than a global RNG so that a given policy produces the *same* backoff
//! schedule on every run — chaos tests stay deterministic.

use std::time::Duration;

use hana_types::Result;

use crate::context::RemoteContext;

/// SplitMix64 — the one deterministic pseudo-random primitive shared by
/// the retry jitter and the chaos fault schedules.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a random word onto `[0, 1)`.
pub(crate) fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// Backoff/budget policy for one logical remote call.
///
/// `max_attempts` counts the first try: `max_attempts == 1` means no
/// retries at all. Backoff for attempt *n* (1-based) is
/// `base_backoff * 2^(n-1)` capped at `max_backoff`, then jittered:
/// the final pause keeps `(1 - jitter)` of the exponential value and
/// re-draws the rest uniformly from the policy's seeded stream
/// ("equal jitter" when `jitter = 0.5`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_backoff: Duration,
    /// Upper bound on a single backoff pause.
    pub max_backoff: Duration,
    /// Fraction of each pause that is randomized (`0.0..=1.0`).
    pub jitter: f64,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            jitter: 0.5,
            seed: 0x5DA_5DA,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub fn none() -> RetryPolicy {
        RetryPolicy::default().with_max_attempts(1)
    }

    /// Copy of this policy with a specific attempt budget (≥ 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> RetryPolicy {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Copy of this policy with a specific base backoff.
    pub fn with_base_backoff(mut self, base: Duration) -> RetryPolicy {
        self.base_backoff = base;
        self
    }

    /// Copy of this policy with a specific backoff cap.
    pub fn with_max_backoff(mut self, cap: Duration) -> RetryPolicy {
        self.max_backoff = cap;
        self
    }

    /// Copy of this policy with a specific jitter fraction (clamped to
    /// `0.0..=1.0`).
    pub fn with_jitter(mut self, jitter: f64) -> RetryPolicy {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Copy of this policy with a specific jitter seed.
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// The pause after failed attempt `attempt` (1-based). Deterministic
    /// for a given `(policy, attempt)` pair.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20))
            .min(self.max_backoff);
        if self.jitter <= 0.0 || exp.is_zero() {
            return exp;
        }
        let fixed = exp.mul_f64(1.0 - self.jitter);
        let draw = unit_f64(splitmix64(self.seed ^ u64::from(attempt)));
        fixed + exp.mul_f64(self.jitter).mul_f64(draw)
    }
}

/// Drive `f` under `policy`, honouring `ctx`'s deadline and recording
/// every attempt into the context's trace.
///
/// Rules:
/// * the deadline is checked **before** each attempt — an expired
///   budget surfaces as a retryable `remote_timeout`;
/// * only retryable errors are retried, and only while attempts remain;
/// * a backoff pause that would blow the remaining deadline is not
///   slept — the last error is returned instead (still retryable, so
///   callers know the operation may succeed later).
pub fn run_with_retry<T>(
    policy: &RetryPolicy,
    ctx: &RemoteContext,
    what: &str,
    mut f: impl FnMut(u32) -> Result<T>,
) -> Result<T> {
    let mut attempt: u32 = 1;
    loop {
        ctx.check_deadline(what)?;
        match f(attempt) {
            Ok(v) => {
                ctx.record_attempt(attempt, None, Duration::ZERO);
                return Ok(v);
            }
            Err(e) if e.is_retryable() && attempt < policy.max_attempts => {
                let pause = policy.backoff(attempt);
                if let Some(remaining) = ctx.remaining() {
                    if remaining <= pause {
                        ctx.record_attempt(attempt, Some(&e), Duration::ZERO);
                        return Err(e);
                    }
                }
                ctx.record_attempt(attempt, Some(&e), pause);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                attempt += 1;
            }
            Err(e) => {
                ctx.record_attempt(attempt, Some(&e), Duration::ZERO);
                return Err(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_types::HanaError;

    #[test]
    fn backoff_is_exponential_capped_and_deterministic() {
        let p = RetryPolicy::default()
            .with_base_backoff(Duration::from_millis(10))
            .with_max_backoff(Duration::from_millis(45))
            .with_jitter(0.0);
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(45), "capped");
        let j = p.with_jitter(0.5).with_seed(7);
        assert_eq!(j.backoff(3), j.backoff(3), "same seed, same pause");
        let lo = Duration::from_millis(20);
        let hi = Duration::from_millis(40);
        assert!(j.backoff(3) >= lo && j.backoff(3) <= hi);
    }

    #[test]
    fn retries_transient_errors_until_success() {
        let policy = RetryPolicy::default()
            .with_max_attempts(5)
            .with_base_backoff(Duration::from_micros(50));
        let ctx = RemoteContext::snapshot(1);
        let mut calls = 0;
        let out = run_with_retry(&policy, &ctx, "op", |_| {
            calls += 1;
            if calls < 3 {
                Err(HanaError::remote_unavailable("flap"))
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(calls, 3);
        assert_eq!(ctx.attempts(), 3);
        assert!(ctx.trace().last().unwrap().error.is_none());
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let policy = RetryPolicy::default().with_max_attempts(5);
        let ctx = RemoteContext::snapshot(1);
        let mut calls = 0;
        let err = run_with_retry(&policy, &ctx, "op", |_| -> Result<()> {
            calls += 1;
            Err(HanaError::remote("bad schema"))
        })
        .unwrap_err();
        assert_eq!(calls, 1, "no retry on permanent errors");
        assert!(!err.is_retryable());
    }

    #[test]
    fn budget_exhaustion_returns_last_retryable_error() {
        let policy = RetryPolicy::default()
            .with_max_attempts(3)
            .with_base_backoff(Duration::from_micros(10));
        let ctx = RemoteContext::snapshot(1);
        let mut calls = 0;
        let err = run_with_retry(&policy, &ctx, "op", |_| -> Result<()> {
            calls += 1;
            Err(HanaError::remote_timeout("slow"))
        })
        .unwrap_err();
        assert_eq!(calls, 3);
        assert!(err.is_retryable(), "caller may try again later");
    }

    #[test]
    fn deadline_stops_the_loop() {
        let policy = RetryPolicy::default()
            .with_max_attempts(100)
            .with_base_backoff(Duration::from_millis(5))
            .with_jitter(0.0);
        let ctx = RemoteContext::snapshot(1).with_deadline(Duration::from_millis(12));
        let err = run_with_retry(&policy, &ctx, "op", |_| -> Result<()> {
            Err(HanaError::remote_unavailable("down"))
        })
        .unwrap_err();
        assert!(err.is_retryable());
        assert!(ctx.attempts() < 100, "deadline bounded the attempts");
    }
}
