//! # hana-sda
//!
//! **Smart Data Access** — the capability-based adapter framework of
//! §4.2–4.4: remote sources with capability property files, virtual
//! tables and virtual functions, predicate-pushdown lowering, and the
//! **remote materialization** cache that rewrites repeated federated
//! queries to read a CTAS-materialized temp table at the remote source
//! instead of re-running its MapReduce DAG.
//!
//! Adapters provided: `hiveodbc` (Hive over simulated ODBC), `hadoop`
//! (raw MR driver-class invocation), `iq` (the extended storage).
//!
//! ## Federation resilience
//!
//! Remote sources are slower and flakier than the in-memory core, so
//! the federation boundary carries the resilience machinery: every
//! remote call threads a [`RemoteContext`] (snapshot cid + deadline
//! budget + retry override + attempt trace), `execute_remote` retries
//! retryable errors with seeded-jitter exponential backoff
//! ([`RetryPolicy`]), a per-source three-state [`CircuitBreaker`]
//! fails fast while a source is down, and queries degrade to a
//! stale-but-bounded local copy ([`CacheOutcome::StaleFallback`])
//! instead of erroring when one is available. [`ChaosAdapter`] injects
//! deterministic seeded faults around any adapter for testing.

mod adapter;
mod breaker;
mod cache;
mod capability;
mod context;
mod fault;
mod pushdown;
mod registry;
mod retry;

pub use adapter::{HadoopMrAdapter, HiveOdbcAdapter, IqAdapter, RemoteStats, SdaAdapter};
pub use breaker::{BreakerConfig, BreakerState, BreakerStats, CircuitBreaker};
pub use cache::{CacheOutcome, RemoteCache, RemoteCacheConfig};
pub use capability::CapabilitySet;
pub use context::{AttemptRecord, RemoteContext};
pub use fault::{ChaosAdapter, ChaosConfig};
pub use pushdown::{expr_to_column_predicate, split_pushdown};
pub use registry::{RemoteSource, RemoteSourceStats, SdaRegistry, VirtualFunction, VirtualTable};
pub use retry::{run_with_retry, RetryPolicy};
