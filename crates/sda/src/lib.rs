//! # hana-sda
//!
//! **Smart Data Access** — the capability-based adapter framework of
//! §4.2–4.4: remote sources with capability property files, virtual
//! tables and virtual functions, predicate-pushdown lowering, and the
//! **remote materialization** cache that rewrites repeated federated
//! queries to read a CTAS-materialized temp table at the remote source
//! instead of re-running its MapReduce DAG.
//!
//! Adapters provided: `hiveodbc` (Hive over simulated ODBC), `hadoop`
//! (raw MR driver-class invocation), `iq` (the extended storage).

mod adapter;
mod capability;
mod cache;
mod pushdown;
mod registry;

pub use adapter::{HadoopMrAdapter, HiveOdbcAdapter, IqAdapter, RemoteStats, SdaAdapter};
pub use capability::CapabilitySet;
pub use cache::{CacheOutcome, RemoteCache, RemoteCacheConfig};
pub use pushdown::{expr_to_column_predicate, split_pushdown};
pub use registry::{RemoteSource, SdaRegistry, VirtualFunction, VirtualTable};
