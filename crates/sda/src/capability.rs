//! Capability descriptions of remote sources.
//!
//! "SDA relies on a description of the capabilities of a remote server …
//! In the capability property file one finds, e.g. `CAP_JOINS : true`
//! and `CAP_JOINS_OUTER : true`" (§4.2). The optimizer consults these
//! flags before shipping plan fragments to a source.

use hana_sql::{JoinKind, Query, TableRef};
use hana_types::{HanaError, Result};

/// The capability flags of one adapter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapabilitySet {
    /// Basic SELECT shipping.
    pub cap_select: bool,
    /// Predicate pushdown (WHERE).
    pub cap_where: bool,
    /// Inner joins.
    pub cap_joins: bool,
    /// Outer joins.
    pub cap_joins_outer: bool,
    /// GROUP BY / aggregation.
    pub cap_group_by: bool,
    /// ORDER BY.
    pub cap_order_by: bool,
    /// LIMIT / TOP.
    pub cap_limit: bool,
    /// INSERT / UPDATE / DELETE.
    pub cap_dml: bool,
    /// Transactional guarantees (participates in distributed commits).
    pub cap_transactions: bool,
    /// Semi-join reduction: the source accepts shipped key sets.
    pub cap_semi_join: bool,
    /// Remote result materialization (CTAS-based caching).
    pub cap_remote_cache: bool,
}

impl CapabilitySet {
    /// Capabilities of a Hive/Hadoop source (§4.2: "for Hive and Hadoop
    /// only select statements without transactional guarantees are
    /// supported", but joins/grouping can be pushed).
    pub fn hive() -> CapabilitySet {
        CapabilitySet {
            cap_select: true,
            cap_where: true,
            cap_joins: true,
            cap_joins_outer: false,
            cap_group_by: true,
            cap_order_by: true,
            cap_limit: true,
            cap_dml: false,
            cap_transactions: false,
            cap_semi_join: true,
            cap_remote_cache: true,
        }
    }

    /// Capabilities of the tightly-integrated IQ extended storage
    /// (§3.1: inserts/updates/deletes, order by, group by, joins,
    /// nested queries, full transactions).
    pub fn iq() -> CapabilitySet {
        CapabilitySet {
            cap_select: true,
            cap_where: true,
            cap_joins: true,
            cap_joins_outer: true,
            cap_group_by: true,
            cap_order_by: true,
            cap_limit: true,
            cap_dml: true,
            cap_transactions: true,
            cap_semi_join: true,
            cap_remote_cache: false,
        }
    }

    /// Capabilities of the raw-MapReduce adapter: it can only invoke
    /// registered jobs, nothing can be pushed down.
    pub fn hadoop_mr() -> CapabilitySet {
        CapabilitySet {
            cap_select: false,
            cap_where: false,
            cap_joins: false,
            cap_joins_outer: false,
            cap_group_by: false,
            cap_order_by: false,
            cap_limit: false,
            cap_dml: false,
            cap_transactions: false,
            cap_semi_join: false,
            cap_remote_cache: false,
        }
    }

    /// Can the whole query be shipped to a source with these flags?
    /// (All sources in the query must live on that source; the caller
    /// checks placement, this checks shapes.)
    pub fn supports_query(&self, q: &Query) -> bool {
        if !self.cap_select {
            return false;
        }
        if q.filter.is_some() && !self.cap_where {
            return false;
        }
        for j in &q.joins {
            let ok = match j.kind {
                JoinKind::Inner => self.cap_joins,
                JoinKind::LeftOuter => self.cap_joins_outer,
            };
            if !ok {
                return false;
            }
        }
        if (!q.group_by.is_empty() || q.select.iter().any(|s| s.expr.contains_aggregate()))
            && !self.cap_group_by
        {
            return false;
        }
        if !q.order_by.is_empty() && !self.cap_order_by {
            return false;
        }
        if q.limit.is_some() && !self.cap_limit {
            return false;
        }
        // Derived tables need nested-query support; approximate with
        // joins capability.
        if matches!(q.from, Some(TableRef::Subquery { .. })) {
            return false;
        }
        true
    }

    /// Render as a capability property file (the paper's format).
    pub fn to_property_file(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.entries() {
            out.push_str(&format!("{name} : {v}\n"));
        }
        out
    }

    /// Parse a capability property file.
    pub fn from_property_file(text: &str) -> Result<CapabilitySet> {
        let mut caps = CapabilitySet::hadoop_mr(); // all-false base
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, value) = line.split_once(':').ok_or_else(|| {
                HanaError::Config(format!("capability file line {} malformed", lineno + 1))
            })?;
            let v = match value.trim() {
                "true" => true,
                "false" => false,
                other => {
                    return Err(HanaError::Config(format!(
                        "capability value '{other}' is not a boolean"
                    )))
                }
            };
            caps.set(name.trim(), v)?;
        }
        Ok(caps)
    }

    fn entries(&self) -> Vec<(&'static str, bool)> {
        vec![
            ("CAP_SELECT", self.cap_select),
            ("CAP_WHERE", self.cap_where),
            ("CAP_JOINS", self.cap_joins),
            ("CAP_JOINS_OUTER", self.cap_joins_outer),
            ("CAP_GROUP_BY", self.cap_group_by),
            ("CAP_ORDER_BY", self.cap_order_by),
            ("CAP_LIMIT", self.cap_limit),
            ("CAP_DML", self.cap_dml),
            ("CAP_TRANSACTIONS", self.cap_transactions),
            ("CAP_SEMI_JOIN", self.cap_semi_join),
            ("CAP_REMOTE_CACHE", self.cap_remote_cache),
        ]
    }

    fn set(&mut self, name: &str, v: bool) -> Result<()> {
        match name {
            "CAP_SELECT" => self.cap_select = v,
            "CAP_WHERE" => self.cap_where = v,
            "CAP_JOINS" => self.cap_joins = v,
            "CAP_JOINS_OUTER" => self.cap_joins_outer = v,
            "CAP_GROUP_BY" => self.cap_group_by = v,
            "CAP_ORDER_BY" => self.cap_order_by = v,
            "CAP_LIMIT" => self.cap_limit = v,
            "CAP_DML" => self.cap_dml = v,
            "CAP_TRANSACTIONS" => self.cap_transactions = v,
            "CAP_SEMI_JOIN" => self.cap_semi_join = v,
            "CAP_REMOTE_CACHE" => self.cap_remote_cache = v,
            other => return Err(HanaError::Config(format!("unknown capability '{other}'"))),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_sql::{parse_statement, Statement};

    fn query(sql: &str) -> Query {
        let Statement::Query(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        q
    }

    #[test]
    fn property_file_round_trip() {
        let caps = CapabilitySet::hive();
        let text = caps.to_property_file();
        assert!(text.contains("CAP_JOINS : true"));
        assert!(text.contains("CAP_JOINS_OUTER : false"));
        let parsed = CapabilitySet::from_property_file(&text).unwrap();
        assert_eq!(parsed, caps);
    }

    #[test]
    fn property_file_errors() {
        assert!(CapabilitySet::from_property_file("CAP_JOINS = yes").is_err());
        assert!(CapabilitySet::from_property_file("CAP_JOINS : maybe").is_err());
        assert!(CapabilitySet::from_property_file("CAP_NOPE : true").is_err());
        // Comments and blanks are fine.
        let c = CapabilitySet::from_property_file("# all defaults\n\nCAP_SELECT : true\n").unwrap();
        assert!(c.cap_select && !c.cap_joins);
    }

    #[test]
    fn shape_checks() {
        let hive = CapabilitySet::hive();
        assert!(hive.supports_query(&query("SELECT a FROM t WHERE a > 1")));
        assert!(hive.supports_query(&query(
            "SELECT a, COUNT(*) FROM t JOIN u ON a = b GROUP BY a"
        )));
        assert!(!hive.supports_query(&query("SELECT a FROM t LEFT OUTER JOIN u ON a = b")));
        let mr = CapabilitySet::hadoop_mr();
        assert!(!mr.supports_query(&query("SELECT a FROM t")));
        let iq = CapabilitySet::iq();
        assert!(iq.supports_query(&query("SELECT a FROM t LEFT OUTER JOIN u ON a = b")));
        assert!(!iq.supports_query(&query("SELECT x.a FROM (SELECT a FROM t) x")));
    }
}
