//! The redesigned adapter request context.
//!
//! Every remote call used to carry a bare snapshot `cid: u64` — enough
//! to pick the visible version at transactional sources, but nothing
//! else. [`RemoteContext`] keeps that cid and adds what a federation
//! boundary actually needs: a **total deadline budget** for the call
//! (retries included), an optional per-call **retry policy override**,
//! and a **trace of attempts** so callers can observe what the
//! resilience machinery did on their behalf.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

use hana_types::{HanaError, Result};

use crate::retry::RetryPolicy;

/// One attempt at a remote operation, as recorded in the context trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// 1-based attempt number within the logical call.
    pub attempt: u32,
    /// `None` on success; the error's display form otherwise.
    pub error: Option<String>,
    /// Backoff slept after this attempt (zero for the final attempt).
    pub backoff: Duration,
}

/// Per-call context threaded through `SdaAdapter::execute`,
/// `create_temp_table` and `SdaRegistry::execute_remote`.
pub struct RemoteContext {
    cid: u64,
    deadline: Option<Instant>,
    retry: Option<RetryPolicy>,
    trace: Mutex<Vec<AttemptRecord>>,
}

impl RemoteContext {
    /// A context carrying only the snapshot cid — the drop-in
    /// replacement for the old bare-`u64` call sites. No deadline, and
    /// the source's configured retry policy applies.
    pub fn snapshot(cid: u64) -> RemoteContext {
        RemoteContext {
            cid,
            deadline: None,
            retry: None,
            trace: Mutex::new(Vec::new()),
        }
    }

    /// The snapshot commit id the remote read runs under.
    pub fn cid(&self) -> u64 {
        self.cid
    }

    /// Copy of this context with a total deadline `budget` from now.
    /// Covers the *whole* logical call: every retry attempt and every
    /// backoff pause draws from the same budget.
    pub fn with_deadline(mut self, budget: Duration) -> RemoteContext {
        self.deadline = Some(Instant::now() + budget);
        self
    }

    /// Copy of this context with an absolute deadline.
    pub fn with_deadline_at(mut self, at: Instant) -> RemoteContext {
        self.deadline = Some(at);
        self
    }

    /// Copy of this context with a per-call retry policy, overriding
    /// the source's configured default.
    pub fn with_retry(mut self, policy: RetryPolicy) -> RemoteContext {
        self.retry = Some(policy);
        self
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The per-call retry override, if one was set.
    pub fn retry(&self) -> Option<&RetryPolicy> {
        self.retry.as_ref()
    }

    /// Time left in the budget (`None` = unbounded).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        matches!(self.remaining(), Some(d) if d.is_zero())
    }

    /// Error out with a retryable `remote_timeout` if the budget is
    /// spent. Adapters call this at the top of each remote operation so
    /// a deadline cancels work cooperatively instead of hanging.
    pub fn check_deadline(&self, what: &str) -> Result<()> {
        if self.expired() {
            Err(HanaError::remote_timeout(format!(
                "deadline exceeded before {what}"
            )))
        } else {
            Ok(())
        }
    }

    /// Append one attempt to the trace (called by the retry driver).
    pub fn record_attempt(&self, attempt: u32, error: Option<&HanaError>, backoff: Duration) {
        self.trace.lock().push(AttemptRecord {
            attempt,
            error: error.map(|e| e.to_string()),
            backoff,
        });
    }

    /// Number of attempts recorded so far.
    pub fn attempts(&self) -> usize {
        self.trace.lock().len()
    }

    /// Snapshot of the attempt trace.
    pub fn trace(&self) -> Vec<AttemptRecord> {
        self.trace.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_carries_cid_without_deadline() {
        let ctx = RemoteContext::snapshot(17);
        assert_eq!(ctx.cid(), 17);
        assert!(ctx.deadline().is_none());
        assert!(!ctx.expired());
        assert!(ctx.check_deadline("anything").is_ok());
        assert_eq!(ctx.attempts(), 0);
    }

    #[test]
    fn deadline_budget_expires() {
        let ctx = RemoteContext::snapshot(1).with_deadline(Duration::ZERO);
        assert!(ctx.expired());
        let err = ctx.check_deadline("hive query").unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(err.kind(), "remote_timeout");
        assert!(err.message().contains("hive query"));
    }

    #[test]
    fn trace_accumulates() {
        let ctx = RemoteContext::snapshot(1);
        ctx.record_attempt(
            1,
            Some(&HanaError::remote_unavailable("down")),
            Duration::from_millis(5),
        );
        ctx.record_attempt(2, None, Duration::ZERO);
        let trace = ctx.trace();
        assert_eq!(trace.len(), 2);
        assert!(trace[0].error.as_deref().unwrap().contains("down"));
        assert_eq!(trace[1].error, None);
    }
}
