//! Per-source circuit breaker.
//!
//! A remote source that keeps failing should stop being hammered: after
//! `failure_threshold` consecutive retryable failures the breaker
//! **opens** and `SdaRegistry::execute_remote` fails fast (or degrades
//! to a stale cache entry) without touching the source at all. After
//! `cooldown` the breaker moves to **half-open** and lets probe calls
//! through; `half_open_probes` consecutive successes close it again,
//! while any probe failure re-opens it immediately.
//!
//! ```text
//!            failure_threshold consecutive failures
//!   CLOSED ──────────────────────────────────────────▶ OPEN
//!     ▲                                                 │
//!     │ half_open_probes                                │ cooldown
//!     │ consecutive successes                           ▼
//!     └──────────────────────────────────────────── HALF-OPEN
//!                        any probe failure ──▶ back to OPEN
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// The observable breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally; consecutive failures are counted.
    Closed,
    /// Calls are rejected without touching the source.
    Open,
    /// Probe calls are allowed through to test recovery.
    HalfOpen,
}

/// Breaker tuning knobs (per remote source).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive retryable failures that trip the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before allowing probes.
    pub cooldown: Duration,
    /// Consecutive probe successes required to close again.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            cooldown: Duration::from_millis(250),
            half_open_probes: 1,
        }
    }
}

impl BreakerConfig {
    /// Copy of this config with a specific failure threshold (≥ 1).
    pub fn with_failure_threshold(mut self, n: u32) -> BreakerConfig {
        self.failure_threshold = n.max(1);
        self
    }

    /// Copy of this config with a specific open-state cooldown.
    pub fn with_cooldown(mut self, cooldown: Duration) -> BreakerConfig {
        self.cooldown = cooldown;
        self
    }

    /// Copy of this config with a specific probe-success requirement
    /// (≥ 1).
    pub fn with_half_open_probes(mut self, n: u32) -> BreakerConfig {
        self.half_open_probes = n.max(1);
        self
    }
}

enum State {
    Closed { consecutive_failures: u32 },
    Open { since: Instant },
    HalfOpen { successes: u32 },
}

/// Counter snapshot for observability (`SdaRegistry::source_stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakerStats {
    /// Successful calls recorded.
    pub successes: u64,
    /// Failed calls recorded.
    pub failures: u64,
    /// Calls rejected while open (fast-fail, source untouched).
    pub rejections: u64,
    /// Closed/half-open → open transitions.
    pub opened: u64,
    /// Open → half-open transitions (cooldown elapsed, probing).
    pub half_opened: u64,
    /// Half-open → closed transitions (recovery confirmed).
    pub closed: u64,
}

/// A three-state circuit breaker guarding one remote source.
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: Mutex<State>,
    successes: AtomicU64,
    failures: AtomicU64,
    rejections: AtomicU64,
    opened: AtomicU64,
    half_opened: AtomicU64,
    closed: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given config.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: Mutex::new(State::Closed {
                consecutive_failures: 0,
            }),
            successes: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            opened: AtomicU64::new(0),
            half_opened: AtomicU64::new(0),
            closed: AtomicU64::new(0),
        }
    }

    /// The breaker's configuration.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Current state. Observing an open breaker whose cooldown has
    /// elapsed moves it to half-open (lazy transition — there is no
    /// background timer thread).
    pub fn state(&self) -> BreakerState {
        let mut s = self.state.lock();
        self.tick(&mut s);
        match *s {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Whether a call may proceed. `false` means fail fast: the source
    /// is not consulted and a rejection is counted.
    pub fn try_acquire(&self) -> bool {
        let mut s = self.state.lock();
        self.tick(&mut s);
        match *s {
            State::Closed { .. } | State::HalfOpen { .. } => true,
            State::Open { .. } => {
                self.rejections.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Record a successful call.
    pub fn record_success(&self) {
        self.successes.fetch_add(1, Ordering::Relaxed);
        let mut s = self.state.lock();
        self.tick(&mut s);
        match *s {
            State::Closed { .. } => {
                *s = State::Closed {
                    consecutive_failures: 0,
                };
            }
            State::HalfOpen { successes } => {
                if successes + 1 >= self.config.half_open_probes {
                    self.closed.fetch_add(1, Ordering::Relaxed);
                    *s = State::Closed {
                        consecutive_failures: 0,
                    };
                } else {
                    *s = State::HalfOpen {
                        successes: successes + 1,
                    };
                }
            }
            // A success while open (call admitted just before the trip)
            // does not change the state; the cooldown still applies.
            State::Open { .. } => {}
        }
    }

    /// Record a failed call.
    pub fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        let mut s = self.state.lock();
        self.tick(&mut s);
        match *s {
            State::Closed {
                consecutive_failures,
            } => {
                if consecutive_failures + 1 >= self.config.failure_threshold {
                    self.opened.fetch_add(1, Ordering::Relaxed);
                    *s = State::Open {
                        since: Instant::now(),
                    };
                } else {
                    *s = State::Closed {
                        consecutive_failures: consecutive_failures + 1,
                    };
                }
            }
            State::HalfOpen { .. } => {
                // A failed probe re-opens immediately.
                self.opened.fetch_add(1, Ordering::Relaxed);
                *s = State::Open {
                    since: Instant::now(),
                };
            }
            State::Open { .. } => {}
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BreakerStats {
        BreakerStats {
            successes: self.successes.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            rejections: self.rejections.load(Ordering::Relaxed),
            opened: self.opened.load(Ordering::Relaxed),
            half_opened: self.half_opened.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
        }
    }

    /// Open → half-open once the cooldown has elapsed.
    fn tick(&self, s: &mut State) {
        if let State::Open { since } = *s {
            if since.elapsed() >= self.config.cooldown {
                self.half_opened.fetch_add(1, Ordering::Relaxed);
                *s = State::HalfOpen { successes: 0 };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> BreakerConfig {
        BreakerConfig::default()
            .with_failure_threshold(3)
            .with_cooldown(Duration::from_millis(20))
            .with_half_open_probes(2)
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let b = CircuitBreaker::new(fast());
        b.record_failure();
        b.record_failure();
        b.record_success(); // resets the streak
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.stats().opened, 1);
    }

    #[test]
    fn open_rejects_then_half_opens_after_cooldown() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..3 {
            b.record_failure();
        }
        assert!(!b.try_acquire(), "open rejects");
        assert_eq!(b.stats().rejections, 1);
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.try_acquire(), "half-open admits probes");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.stats().half_opened, 1);
    }

    #[test]
    fn probe_successes_close_probe_failure_reopens() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..3 {
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // One success is not enough (half_open_probes = 2).
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.stats().closed, 1);

        // Trip again; a failed probe goes straight back to open.
        for _ in 0..3 {
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        // Three open transitions total: two trips plus the failed probe.
        assert_eq!(b.stats().opened, 3);
    }
}
