//! Deterministic fault injection for federation testing.
//!
//! [`ChaosAdapter`] wraps any [`SdaAdapter`] and perturbs its
//! data-path operations (`execute`, `ctas`, `create_temp_table`,
//! `invoke_function`) according to a **seeded schedule**: whether call
//! *n* fails is a pure function of `(seed, n)`, so a chaos test that
//! passes once passes always. Supported faults:
//!
//! * **transient failures** — with probability `failure_rate` a call
//!   returns a retryable error (`remote_unavailable`, or
//!   `remote_timeout` for a `timeout_share` of the injected failures);
//! * **latency** — every data-path call sleeps `latency` first;
//! * **down windows** — half-open call-index ranges `[from, to)` during
//!   which the source is hard-down (flap schedules);
//! * **forced outage** — [`ChaosAdapter::force_down`] switches the
//!   source off until further notice, independent of the schedule.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use std::time::Duration;

use hana_columnar::ColumnPredicate;
use hana_sql::Query;
use hana_types::{HanaError, Result, ResultSet, Row, Schema};

use crate::adapter::{RemoteStats, SdaAdapter};
use crate::capability::CapabilitySet;
use crate::context::RemoteContext;
use crate::retry::{splitmix64, unit_f64};

/// The seeded fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the failure schedule; same seed ⇒ same schedule.
    pub seed: u64,
    /// Probability that a data-path call fails transiently.
    pub failure_rate: f64,
    /// Share of injected failures surfaced as timeouts instead of
    /// unavailability (both retryable).
    pub timeout_share: f64,
    /// Extra latency injected into every data-path call.
    pub latency: Duration,
    /// Call-index windows `[from, to)` where the source is hard-down.
    pub down_windows: Vec<(u64, u64)>,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0xC4A0_5C4A,
            failure_rate: 0.0,
            timeout_share: 0.0,
            latency: Duration::ZERO,
            down_windows: Vec::new(),
        }
    }
}

impl ChaosConfig {
    /// Copy of this config with a specific schedule seed.
    pub fn with_seed(mut self, seed: u64) -> ChaosConfig {
        self.seed = seed;
        self
    }

    /// Copy of this config with a transient failure probability
    /// (clamped to `0.0..=1.0`).
    pub fn with_failure_rate(mut self, rate: f64) -> ChaosConfig {
        self.failure_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Copy of this config with a timeout share among injected
    /// failures (clamped to `0.0..=1.0`).
    pub fn with_timeout_share(mut self, share: f64) -> ChaosConfig {
        self.timeout_share = share.clamp(0.0, 1.0);
        self
    }

    /// Copy of this config with injected per-call latency.
    pub fn with_latency(mut self, latency: Duration) -> ChaosConfig {
        self.latency = latency;
        self
    }

    /// Copy of this config with one more down window `[from, to)` in
    /// call indices (a flap schedule is several of these).
    pub fn with_down_window(mut self, from: u64, to: u64) -> ChaosConfig {
        self.down_windows.push((from, to));
        self
    }
}

/// A fault-injecting wrapper around any adapter.
pub struct ChaosAdapter {
    inner: Arc<dyn SdaAdapter>,
    config: ChaosConfig,
    calls: AtomicU64,
    injected: AtomicU64,
    forced_down: AtomicBool,
}

impl ChaosAdapter {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: Arc<dyn SdaAdapter>, config: ChaosConfig) -> ChaosAdapter {
        ChaosAdapter {
            inner,
            config,
            calls: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            forced_down: AtomicBool::new(false),
        }
    }

    /// The wrapped adapter.
    pub fn inner(&self) -> &Arc<dyn SdaAdapter> {
        &self.inner
    }

    /// The fault schedule.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Force the source down (`true`) or lift the outage (`false`).
    pub fn force_down(&self, down: bool) {
        self.forced_down.store(down, Ordering::SeqCst);
    }

    /// Whether the source is currently forced down.
    pub fn is_forced_down(&self) -> bool {
        self.forced_down.load(Ordering::SeqCst)
    }

    /// Data-path calls seen so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }

    /// Failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Consume one schedule slot: sleep the injected latency, then
    /// fail deterministically if the slot says so.
    fn perturb(&self, op: &str) -> Result<()> {
        let n = self.calls.fetch_add(1, Ordering::SeqCst);
        if !self.config.latency.is_zero() {
            std::thread::sleep(self.config.latency);
        }
        let down_window = self
            .config
            .down_windows
            .iter()
            .any(|&(from, to)| n >= from && n < to);
        if self.is_forced_down() || down_window {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(HanaError::remote_unavailable(format!(
                "chaos: source '{}' is down ({op}, call {n})",
                self.inner.host()
            )));
        }
        if self.config.failure_rate > 0.0 {
            let draw = unit_f64(splitmix64(self.config.seed ^ n.wrapping_mul(0x9E37)));
            if draw < self.config.failure_rate {
                self.injected.fetch_add(1, Ordering::SeqCst);
                let as_timeout = unit_f64(splitmix64(self.config.seed ^ n ^ 0x0007_1530_u64))
                    < self.config.timeout_share;
                return Err(if as_timeout {
                    HanaError::remote_timeout(format!("chaos: injected timeout ({op}, call {n})"))
                } else {
                    HanaError::remote_unavailable(format!(
                        "chaos: injected transient failure ({op}, call {n})"
                    ))
                });
            }
        }
        Ok(())
    }
}

impl SdaAdapter for ChaosAdapter {
    fn adapter_name(&self) -> &'static str {
        self.inner.adapter_name()
    }

    fn host(&self) -> &str {
        self.inner.host()
    }

    fn capabilities(&self) -> CapabilitySet {
        self.inner.capabilities()
    }

    fn remote_schema(&self, table: &str) -> Result<Schema> {
        self.inner.remote_schema(table)
    }

    fn table_stats(&self, table: &str) -> Result<RemoteStats> {
        self.inner.table_stats(table)
    }

    fn execute(&self, q: &Query, ctx: &RemoteContext) -> Result<ResultSet> {
        self.perturb("execute")?;
        self.inner.execute(q, ctx)
    }

    fn ctas(&self, target: &str, q: &Query) -> Result<u64> {
        self.perturb("ctas")?;
        self.inner.ctas(target, q)
    }

    fn drop_remote_table(&self, name: &str) -> Result<()> {
        self.inner.drop_remote_table(name)
    }

    fn current_tick(&self) -> u64 {
        self.inner.current_tick()
    }

    fn invoke_function(&self, configuration: &str) -> Result<ResultSet> {
        self.perturb("invoke_function")?;
        self.inner.invoke_function(configuration)
    }

    fn create_temp_table(
        &self,
        schema: Schema,
        rows: &[Row],
        ctx: &RemoteContext,
    ) -> Result<String> {
        self.perturb("create_temp_table")?;
        self.inner.create_temp_table(schema, rows, ctx)
    }

    fn estimate_selectivity(
        &self,
        table: &str,
        column: &str,
        pred: &ColumnPredicate,
    ) -> Option<f64> {
        self.inner.estimate_selectivity(table, column, pred)
    }

    fn column_distinct(&self, table: &str, column: &str) -> Option<u64> {
        self.inner.column_distinct(table, column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let cfg = ChaosConfig::default().with_seed(42).with_failure_rate(0.3);
        let plan = |cfg: &ChaosConfig| -> Vec<bool> {
            (0..64u64)
                .map(|n| unit_f64(splitmix64(cfg.seed ^ n.wrapping_mul(0x9E37))) < cfg.failure_rate)
                .collect()
        };
        assert_eq!(plan(&cfg), plan(&cfg.clone()));
        let failures = plan(&cfg).iter().filter(|&&f| f).count();
        assert!(failures > 5 && failures < 40, "≈30% of 64: {failures}");
    }
}
