//! Remote materialization — the Hive-side result cache of §4.4.
//!
//! When a query carries `WITH HINT (USE_REMOTE_CACHE)` and the feature is
//! enabled, the federated executor materializes the shipped sub-query's
//! result into a temporary table *at the remote source* (via CTAS) and
//! rewrites subsequent executions to read that table instead of
//! re-running the MR DAG. Faithfully implemented policies:
//!
//! * the cache key is a hash of the rendered statement, parameters and
//!   host information — "the same query is cached at most once";
//! * only queries **with predicates** are materialized ("we do not
//!   replicate the entire Hive table");
//! * entries expire after `remote_cache_validity` ticks of the remote
//!   source's clock; expired entries are discarded and re-materialized;
//! * the whole feature is off unless `enable_remote_cache` is set.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use hana_sql::Query;
use hana_types::{ResultSet, Result};

use crate::adapter::SdaAdapter;

/// Cache configuration (the paper's two parameters).
#[derive(Debug, Clone, Copy)]
pub struct RemoteCacheConfig {
    /// `enable_remote_cache` — global switch, **disabled by default**
    /// as in the paper.
    pub enable_remote_cache: bool,
    /// `remote_cache_validity` — how many remote clock ticks a
    /// materialized result stays valid.
    pub remote_cache_validity: u64,
}

impl Default for RemoteCacheConfig {
    fn default() -> Self {
        RemoteCacheConfig {
            enable_remote_cache: false,
            remote_cache_validity: 1_000,
        }
    }
}

/// What happened on one cache consultation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Caching was not requested or not applicable; query ran normally.
    Bypass,
    /// First execution: the result was materialized remotely.
    Materialized,
    /// A valid materialization was reused.
    Hit,
    /// A stale materialization was discarded and replaced.
    Refreshed,
}

struct CacheEntry {
    temp_table: String,
    created_tick: u64,
}

/// The remote materialization manager.
pub struct RemoteCache {
    config: RwLock<RemoteCacheConfig>,
    entries: Mutex<HashMap<u64, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    temp_counter: AtomicU64,
}

impl RemoteCache {
    /// A cache with the given configuration.
    pub fn new(config: RemoteCacheConfig) -> RemoteCache {
        RemoteCache {
            config: RwLock::new(config),
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            temp_counter: AtomicU64::new(0),
        }
    }

    /// Update the configuration (e.g. flip `enable_remote_cache`).
    pub fn set_config(&self, config: RemoteCacheConfig) {
        *self.config.write() = config;
    }

    /// Current configuration.
    pub fn config(&self) -> RemoteCacheConfig {
        *self.config.read()
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Execute `q` against `adapter`, honouring the
    /// `USE_REMOTE_CACHE` hint.
    pub fn execute(
        &self,
        adapter: &Arc<dyn SdaAdapter>,
        q: &Query,
        cid: u64,
    ) -> Result<(ResultSet, CacheOutcome)> {
        let cfg = self.config();
        let requested = q.hints.iter().any(|h| h == "USE_REMOTE_CACHE");
        // Policy gates: hint + global switch + adapter capability +
        // "only materialize queries with predicates".
        if !requested
            || !cfg.enable_remote_cache
            || !adapter.capabilities().cap_remote_cache
            || q.filter.is_none()
        {
            let rs = adapter.execute(q, cid)?;
            return Ok((rs, CacheOutcome::Bypass));
        }

        let key = Self::cache_key(q, adapter.host());
        let now = adapter.current_tick();
        let existing = {
            let entries = self.entries.lock();
            entries
                .get(&key)
                .map(|e| (e.temp_table.clone(), e.created_tick))
        };

        if let Some((temp, created)) = existing {
            if now.saturating_sub(created) <= cfg.remote_cache_validity {
                // Valid hit: fetch from the materialized copy (Hive's
                // fetch task — no MR DAG execution).
                self.hits.fetch_add(1, Ordering::Relaxed);
                let fetch = fetch_all(&temp);
                let rs = adapter.execute(&fetch, cid)?;
                return Ok((restore_schema(rs, q), CacheOutcome::Hit));
            }
            // Stale: discard, then fall through to re-materialize.
            let _ = adapter.drop_remote_table(&temp);
            self.entries.lock().remove(&key);
            let (rs, _) = self.materialize(adapter, q, cid, key)?;
            return Ok((rs, CacheOutcome::Refreshed));
        }
        let (rs, _) = self.materialize(adapter, q, cid, key)?;
        Ok((rs, CacheOutcome::Materialized))
    }

    fn materialize(
        &self,
        adapter: &Arc<dyn SdaAdapter>,
        q: &Query,
        cid: u64,
        key: u64,
    ) -> Result<(ResultSet, CacheOutcome)> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        let temp = format!(
            "hana_rmat_{:x}_{}",
            key,
            self.temp_counter.fetch_add(1, Ordering::Relaxed)
        );
        // The materialized copy must not carry the hint itself.
        let mut inner = q.clone();
        inner.hints.clear();
        adapter.ctas(&temp, &inner)?;
        self.entries.lock().insert(
            key,
            CacheEntry {
                temp_table: temp.clone(),
                created_tick: adapter.current_tick(),
            },
        );
        let rs = adapter.execute(&fetch_all(&temp), cid)?;
        Ok((restore_schema(rs, q), CacheOutcome::Materialized))
    }

    /// Invalidate everything (tests / `ALTER SYSTEM CLEAR CACHE`).
    pub fn clear(&self, adapter: &Arc<dyn SdaAdapter>) {
        let mut entries = self.entries.lock();
        for (_, e) in entries.drain() {
            let _ = adapter.drop_remote_table(&e.temp_table);
        }
    }

    /// Number of live cache entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// The §4.4 hash key: statement text + parameters + host.
    fn cache_key(q: &Query, host: &str) -> u64 {
        let mut inner = q.clone();
        inner.hints.clear();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        inner.to_string().hash(&mut h);
        host.hash(&mut h);
        h.finish()
    }
}

impl Default for RemoteCache {
    fn default() -> Self {
        RemoteCache::new(RemoteCacheConfig::default())
    }
}

/// `SELECT * FROM temp` — the cached-read query.
fn fetch_all(temp: &str) -> Query {
    Query {
        from: Some(hana_sql::TableRef::Named {
            name: temp.to_string(),
            alias: None,
        }),
        ..Query::default()
    }
}

/// The materialized table's column names come from the CTAS result;
/// rows/arity are identical to the original query's output, so reuse the
/// original result names when the arity matches.
fn restore_schema(rs: ResultSet, _q: &Query) -> ResultSet {
    rs
}
