//! Remote materialization — the Hive-side result cache of §4.4 — plus
//! the local stale-fallback store backing graceful degradation.
//!
//! When a query carries `WITH HINT (USE_REMOTE_CACHE)` and the feature is
//! enabled, the federated executor materializes the shipped sub-query's
//! result into a temporary table *at the remote source* (via CTAS) and
//! rewrites subsequent executions to read that table instead of
//! re-running the MR DAG. Faithfully implemented policies:
//!
//! * the cache key is a hash of the rendered statement, parameters and
//!   host information — "the same query is cached at most once";
//! * only queries **with predicates** are materialized ("we do not
//!   replicate the entire Hive table");
//! * entries expire after `remote_cache_validity` ticks of the remote
//!   source's clock; expired entries are discarded and re-materialized;
//! * the whole feature is off unless `enable_remote_cache` is set.
//!
//! Orthogonally to remote materialization, every result that flows
//! through the cache is copied into a **local** bounded fallback store.
//! When a source is down (circuit open, retry budget exhausted), the
//! registry serves the stale copy — bounded by
//! `stale_fallback_max_age` — and surfaces it as
//! [`CacheOutcome::StaleFallback`]. The remote temp table cannot play
//! this role: when the source is down, its temp tables are down too.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use hana_sql::Query;
use hana_types::{Result, ResultSet};

use crate::adapter::SdaAdapter;
use crate::breaker::BreakerConfig;
use crate::context::RemoteContext;
use crate::retry::RetryPolicy;

/// Federation-layer configuration: the paper's two remote-cache
/// parameters plus the resilience knobs (stale fallback, retry budget,
/// breaker thresholds). Extend via the `with_*` builder methods — new
/// knobs then never break constructors again.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteCacheConfig {
    /// `enable_remote_cache` — global switch, **disabled by default**
    /// as in the paper.
    pub enable_remote_cache: bool,
    /// `remote_cache_validity` — how many remote clock ticks a
    /// materialized result stays valid.
    pub remote_cache_validity: u64,
    /// Serve stale local copies when a source is down.
    pub enable_stale_fallback: bool,
    /// Upper bound on the age of a served stale copy.
    pub stale_fallback_max_age: Duration,
    /// Bound on the number of locally retained fallback results.
    pub stale_fallback_max_entries: usize,
    /// Default retry policy for remote calls (a [`RemoteContext`] can
    /// override per call).
    pub retry: RetryPolicy,
    /// Per-source circuit-breaker thresholds.
    pub breaker: BreakerConfig,
}

impl Default for RemoteCacheConfig {
    fn default() -> Self {
        RemoteCacheConfig {
            enable_remote_cache: false,
            remote_cache_validity: 1_000,
            enable_stale_fallback: true,
            stale_fallback_max_age: Duration::from_secs(300),
            stale_fallback_max_entries: 256,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

impl RemoteCacheConfig {
    /// Copy of this config with the remote materialization switch set.
    pub fn with_remote_cache(mut self, enable: bool) -> RemoteCacheConfig {
        self.enable_remote_cache = enable;
        self
    }

    /// Copy of this config with a specific materialization validity
    /// window (remote clock ticks).
    pub fn with_validity(mut self, ticks: u64) -> RemoteCacheConfig {
        self.remote_cache_validity = ticks;
        self
    }

    /// Copy of this config with stale fallback enabled and bounded to
    /// `max_age`.
    pub fn with_stale_fallback(mut self, max_age: Duration) -> RemoteCacheConfig {
        self.enable_stale_fallback = true;
        self.stale_fallback_max_age = max_age;
        self
    }

    /// Copy of this config with stale fallback disabled.
    pub fn without_stale_fallback(mut self) -> RemoteCacheConfig {
        self.enable_stale_fallback = false;
        self
    }

    /// Copy of this config with a specific fallback-store entry bound
    /// (≥ 1).
    pub fn with_stale_fallback_entries(mut self, max: usize) -> RemoteCacheConfig {
        self.stale_fallback_max_entries = max.max(1);
        self
    }

    /// Copy of this config with a specific default retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> RemoteCacheConfig {
        self.retry = retry;
        self
    }

    /// Copy of this config with specific breaker thresholds.
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> RemoteCacheConfig {
        self.breaker = breaker;
        self
    }
}

/// What happened on one cache consultation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Caching was not requested or not applicable; query ran normally.
    Bypass,
    /// First execution: the result was materialized remotely.
    Materialized,
    /// A valid materialization was reused.
    Hit,
    /// A stale materialization was discarded and replaced.
    Refreshed,
    /// The source was unreachable; a stale-but-bounded **local** copy
    /// of an earlier result was served instead (graceful degradation).
    StaleFallback,
}

struct CacheEntry {
    temp_table: String,
    created_tick: u64,
}

struct FallbackEntry {
    result: ResultSet,
    stored_at: Instant,
}

/// The remote materialization manager plus the local fallback store.
pub struct RemoteCache {
    config: RwLock<RemoteCacheConfig>,
    entries: Mutex<HashMap<u64, CacheEntry>>,
    fallback: Mutex<HashMap<u64, FallbackEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stale_served: AtomicU64,
    temp_counter: AtomicU64,
}

impl RemoteCache {
    /// A cache with the given configuration.
    pub fn new(config: RemoteCacheConfig) -> RemoteCache {
        RemoteCache {
            config: RwLock::new(config),
            entries: Mutex::new(HashMap::new()),
            fallback: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale_served: AtomicU64::new(0),
            temp_counter: AtomicU64::new(0),
        }
    }

    /// Update the configuration (e.g. flip `enable_remote_cache`).
    pub fn set_config(&self, config: RemoteCacheConfig) {
        *self.config.write() = config;
    }

    /// Current configuration.
    pub fn config(&self) -> RemoteCacheConfig {
        self.config.read().clone()
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Stale fallback results served so far.
    pub fn stale_served(&self) -> u64 {
        self.stale_served.load(Ordering::Relaxed)
    }

    /// Execute `q` against `adapter` under `ctx`, honouring the
    /// `USE_REMOTE_CACHE` hint. Successful results are copied into the
    /// local fallback store for later degradation.
    pub fn execute(
        &self,
        adapter: &Arc<dyn SdaAdapter>,
        q: &Query,
        ctx: &RemoteContext,
    ) -> Result<(ResultSet, CacheOutcome)> {
        let key = Self::cache_key(q, adapter.host());
        let (rs, outcome) = self.execute_uncached(adapter, q, ctx, key)?;
        self.store_fallback(key, &rs);
        Ok((rs, outcome))
    }

    fn execute_uncached(
        &self,
        adapter: &Arc<dyn SdaAdapter>,
        q: &Query,
        ctx: &RemoteContext,
        key: u64,
    ) -> Result<(ResultSet, CacheOutcome)> {
        let cfg = self.config();
        let requested = q.hints.iter().any(|h| h == "USE_REMOTE_CACHE");
        // Policy gates: hint + global switch + adapter capability +
        // "only materialize queries with predicates".
        if !requested
            || !cfg.enable_remote_cache
            || !adapter.capabilities().cap_remote_cache
            || q.filter.is_none()
        {
            let rs = adapter.execute(q, ctx)?;
            return Ok((rs, CacheOutcome::Bypass));
        }

        let now = adapter.current_tick();
        let existing = {
            let entries = self.entries.lock();
            entries
                .get(&key)
                .map(|e| (e.temp_table.clone(), e.created_tick))
        };

        if let Some((temp, created)) = existing {
            if now.saturating_sub(created) <= cfg.remote_cache_validity {
                // Valid hit: fetch from the materialized copy (Hive's
                // fetch task — no MR DAG execution).
                self.hits.fetch_add(1, Ordering::Relaxed);
                let fetch = fetch_all(&temp);
                let rs = adapter.execute(&fetch, ctx)?;
                return Ok((restore_schema(rs, q), CacheOutcome::Hit));
            }
            // Stale: discard, then fall through to re-materialize.
            let _ = adapter.drop_remote_table(&temp);
            self.entries.lock().remove(&key);
            let (rs, _) = self.materialize(adapter, q, ctx, key)?;
            return Ok((rs, CacheOutcome::Refreshed));
        }
        let (rs, _) = self.materialize(adapter, q, ctx, key)?;
        Ok((rs, CacheOutcome::Materialized))
    }

    fn materialize(
        &self,
        adapter: &Arc<dyn SdaAdapter>,
        q: &Query,
        ctx: &RemoteContext,
        key: u64,
    ) -> Result<(ResultSet, CacheOutcome)> {
        self.misses.fetch_add(1, Ordering::Relaxed);
        let temp = format!(
            "hana_rmat_{:x}_{}",
            key,
            self.temp_counter.fetch_add(1, Ordering::Relaxed)
        );
        // The materialized copy must not carry the hint itself.
        let mut inner = q.clone();
        inner.hints.clear();
        adapter.ctas(&temp, &inner)?;
        self.entries.lock().insert(
            key,
            CacheEntry {
                temp_table: temp.clone(),
                created_tick: adapter.current_tick(),
            },
        );
        let rs = adapter.execute(&fetch_all(&temp), ctx)?;
        Ok((restore_schema(rs, q), CacheOutcome::Materialized))
    }

    /// Copy a fresh result into the bounded local fallback store.
    fn store_fallback(&self, key: u64, rs: &ResultSet) {
        let cfg = self.config();
        if !cfg.enable_stale_fallback {
            return;
        }
        let mut fb = self.fallback.lock();
        if !fb.contains_key(&key) && fb.len() >= cfg.stale_fallback_max_entries {
            // Evict the oldest entry to stay bounded.
            if let Some(oldest) = fb.iter().min_by_key(|(_, e)| e.stored_at).map(|(k, _)| *k) {
                fb.remove(&oldest);
            }
        }
        fb.insert(
            key,
            FallbackEntry {
                result: rs.clone(),
                stored_at: Instant::now(),
            },
        );
    }

    /// A stale-but-bounded local copy for `(q, host)`, if one exists
    /// within `stale_fallback_max_age`. Entries past the bound are
    /// dropped — degraded answers stay bounded-stale, never arbitrary.
    pub fn stale_lookup(&self, q: &Query, host: &str) -> Option<ResultSet> {
        let cfg = self.config();
        if !cfg.enable_stale_fallback {
            return None;
        }
        let key = Self::cache_key(q, host);
        let mut fb = self.fallback.lock();
        match fb.get(&key) {
            Some(e) if e.stored_at.elapsed() <= cfg.stale_fallback_max_age => {
                self.stale_served.fetch_add(1, Ordering::Relaxed);
                Some(e.result.clone())
            }
            Some(_) => {
                fb.remove(&key);
                None
            }
            None => None,
        }
    }

    /// Number of live local fallback copies.
    pub fn fallback_len(&self) -> usize {
        self.fallback.lock().len()
    }

    /// Invalidate everything (tests / `ALTER SYSTEM CLEAR CACHE`).
    pub fn clear(&self, adapter: &Arc<dyn SdaAdapter>) {
        let mut entries = self.entries.lock();
        for (_, e) in entries.drain() {
            let _ = adapter.drop_remote_table(&e.temp_table);
        }
        self.fallback.lock().clear();
    }

    /// Number of live cache entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// The §4.4 hash key: statement text + parameters + host.
    fn cache_key(q: &Query, host: &str) -> u64 {
        let mut inner = q.clone();
        inner.hints.clear();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        inner.to_string().hash(&mut h);
        host.hash(&mut h);
        h.finish()
    }
}

impl Default for RemoteCache {
    fn default() -> Self {
        RemoteCache::new(RemoteCacheConfig::default())
    }
}

/// `SELECT * FROM temp` — the cached-read query.
fn fetch_all(temp: &str) -> Query {
    Query {
        from: Some(hana_sql::TableRef::Named {
            name: temp.to_string(),
            alias: None,
        }),
        ..Query::default()
    }
}

/// The materialized table's column names come from the CTAS result;
/// rows/arity are identical to the original query's output, so reuse the
/// original result names when the arity matches.
fn restore_schema(rs: ResultSet, _q: &Query) -> ResultSet {
    rs
}
