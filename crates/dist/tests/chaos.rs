//! Chaos tests: shuffles over a seeded faulty link must degrade along
//! the SDA error taxonomy — transient faults retry within the budget
//! and deliver exactly-once, exhausted budgets and permanent faults
//! surface their error kind, and expired deadlines report
//! `remote_timeout` — with no partial or duplicated payload in any
//! failure mode.

use std::time::Duration;

use hana_dist::{broadcast, gather, repartition, DistTable, FaultPlan, PartitionSpec};
use hana_sda::{RemoteContext, RetryPolicy};
use hana_types::{DataType, Row, Schema, Value};

fn table(parts: usize) -> DistTable {
    let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
    DistTable::new(
        "chaos",
        schema,
        PartitionSpec::Hash {
            column: "k".into(),
            partitions: parts,
        },
    )
    .unwrap()
}

fn rows(n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| Row::from_values([Value::Int(i), Value::Int(i * 10)]))
        .collect()
}

/// A zero-backoff policy so retry-heavy tests stay fast.
fn eager(attempts: u32) -> RetryPolicy {
    RetryPolicy::default()
        .with_max_attempts(attempts)
        .with_base_backoff(Duration::from_micros(50))
        .with_max_backoff(Duration::from_micros(200))
}

#[test]
fn flaky_link_recovers_within_retry_budget_exactly_once() {
    let t = table(3);
    let ctx = RemoteContext::snapshot(1);
    // 40 % of sends fail; with 8 attempts per chunk every chunk gets
    // through eventually.
    t.link(1).set_fault(Some(FaultPlan::flaky(0xC4A05, 0.4)));

    let payload = rows(500);
    let delivered = gather(&t, &ctx, &eager(8), vec![(1, payload.clone())]).unwrap();
    assert_eq!(delivered, payload, "no loss, no duplication, order kept");

    let stats = t.link(1).stats();
    assert!(stats.faults > 0, "the plan did inject faults");
    assert!(stats.retries > 0, "faults were absorbed by retries");
    assert_eq!(stats.rows, 500, "row accounting counts deliveries once");
}

#[test]
fn exhausted_retry_budget_is_retryable_and_all_or_nothing() {
    let t = table(3);
    let ctx = RemoteContext::snapshot(1);
    // Every send fails: even a generous budget cannot get through.
    t.link(0).set_fault(Some(FaultPlan::flaky(7, 1.0)));

    let err = gather(&t, &ctx, &eager(3), vec![(0, rows(100))])
        .expect_err("a fully faulty link exhausts the budget");
    assert!(
        err.kind() == "remote_timeout" || err.kind() == "remote_unavailable",
        "transient taxonomy, got {}",
        err.kind()
    );
    let stats = t.link(0).stats();
    assert_eq!(stats.rows, 0, "all-or-nothing: nothing was delivered");
    assert_eq!(stats.faults, 3, "one fault per attempt");
    assert_eq!(stats.retries, 2, "attempts beyond the first are retries");
}

#[test]
fn permanent_faults_fail_fast_without_retry() {
    let t = table(3);
    let ctx = RemoteContext::snapshot(1);
    t.link(2)
        .set_fault(Some(FaultPlan::flaky(11, 1.0).with_permanent_share(1.0)));

    let err = broadcast(&t, &ctx, &eager(10), &rows(50), &[2])
        .expect_err("a permanent fault is not retried");
    assert_eq!(err.kind(), "remote", "permanent taxonomy");
    let stats = t.link(2).stats();
    assert_eq!(stats.retries, 0, "failed fast on the first attempt");
    assert_eq!(stats.rows, 0, "no partial payload surfaced");
}

#[test]
fn expired_deadline_reports_remote_timeout() {
    let t = table(3);
    let ctx = RemoteContext::snapshot(1).with_deadline(Duration::from_nanos(1));
    std::thread::sleep(Duration::from_millis(2));

    let err = repartition(&t, &ctx, &RetryPolicy::none(), rows(60))
        .expect_err("an expired deadline fails the shuffle");
    assert_eq!(err.kind(), "remote_timeout");
    for link in t.links() {
        assert_eq!(link.stats().rows, 0, "deadline expiry ships nothing");
    }
}

#[test]
fn timeout_share_steers_the_transient_taxonomy() {
    // With timeout_share = 1.0 every transient fault surfaces as
    // `remote_timeout`; with 0.0 every one is `remote_unavailable`.
    for (share, kind) in [(1.0, "remote_timeout"), (0.0, "remote_unavailable")] {
        let t = table(2);
        let ctx = RemoteContext::snapshot(1);
        t.link(0)
            .set_fault(Some(FaultPlan::flaky(3, 1.0).with_timeout_share(share)));
        let err = gather(&t, &ctx, &RetryPolicy::none(), vec![(0, rows(10))])
            .expect_err("fully faulty link");
        assert_eq!(err.kind(), kind, "timeout_share = {share}");
    }
}

#[test]
fn chunked_transfer_retries_per_chunk_not_per_payload() {
    // 20 000 rows cross the default 8 192-row chunk bound three times;
    // with a third of the sends failing, the shuffle still completes
    // because each chunk retries independently instead of restarting
    // the payload.
    let t = table(2);
    let ctx = RemoteContext::snapshot(1);
    t.link(1).set_fault(Some(FaultPlan::flaky(0xBEEF, 0.33)));

    let payload = rows(20_000);
    let delivered = gather(&t, &ctx, &eager(10), vec![(1, payload.clone())]).unwrap();
    assert_eq!(delivered.len(), 20_000);
    assert_eq!(delivered, payload);
    let stats = t.link(1).stats();
    assert!(
        stats.chunks >= 3 && stats.rows == 20_000,
        "chunk accounting covers the whole payload: {stats:?}"
    );
}

#[test]
fn cleared_fault_restores_clean_transfers() {
    let t = table(2);
    let ctx = RemoteContext::snapshot(1);
    t.link(0).set_fault(Some(FaultPlan::flaky(5, 1.0)));
    gather(&t, &ctx, &RetryPolicy::none(), vec![(0, rows(10))]).expect_err("faulted link fails");

    t.link(0).set_fault(None);
    let delivered = gather(&t, &ctx, &RetryPolicy::none(), vec![(0, rows(10))]).unwrap();
    assert_eq!(delivered.len(), 10, "clearing the plan heals the link");
}
