//! A partitioned table: N node fragments behind one logical name.

use std::sync::Arc;

use parking_lot::RwLock;

use hana_columnar::ColumnPredicate;
use hana_types::{Result, Row, Schema, Value};

use crate::durability::PartitionWals;
use crate::link::Link;
use crate::node::DistNode;
use crate::partition::PartitionSpec;

/// Default worker threads per node pool.
const DEFAULT_NODE_WORKERS: usize = 2;

/// Per-node scan output: `(node_id, rows)` for each surviving fragment.
pub type NodeParts = Vec<(usize, Vec<Row>)>;

/// The outcome of partition pruning for one scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruneOutcome {
    /// Candidate mask: `mask[i]` = node `i` must be scanned.
    pub mask: Vec<bool>,
    /// Nodes scanned.
    pub scanned: u64,
    /// Nodes skipped entirely.
    pub pruned: u64,
}

/// A distributed table: one [`PartitionSpec`], N [`DistNode`]s owning
/// the fragments, and one coordinator [`Link`] per node for exchanges.
pub struct DistTable {
    name: String,
    schema: Schema,
    spec: PartitionSpec,
    key_col: usize,
    nodes: Vec<Arc<DistNode>>,
    links: Vec<Arc<Link>>,
    /// Per-partition WALs, attached by the platform on durable setups
    /// (see [`crate::durability`]).
    wal: RwLock<Option<Arc<PartitionWals>>>,
}

impl DistTable {
    /// Build an empty distributed table. Fails if the partitioning
    /// column is not part of the schema.
    pub fn new(name: &str, schema: Schema, spec: PartitionSpec) -> Result<DistTable> {
        let key_col = schema.require(spec.column())?;
        let n = spec.partitions();
        let nodes = (0..n)
            .map(|id| {
                Arc::new(DistNode::new(
                    id,
                    name,
                    schema.clone(),
                    DEFAULT_NODE_WORKERS,
                ))
            })
            .collect();
        let links = (0..n)
            .map(|id| Arc::new(Link::new(usize::MAX, id)))
            .collect();
        Ok(DistTable {
            name: name.to_string(),
            schema,
            spec,
            key_col,
            nodes,
            links,
            wal: RwLock::new(None),
        })
    }

    /// The partition-WAL slot (used by [`crate::durability`]).
    pub(crate) fn wal_slot(&self) -> &RwLock<Option<Arc<PartitionWals>>> {
        &self.wal
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema (identical on every node).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The partition spec.
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// Index of the partitioning column in the schema.
    pub fn key_col(&self) -> usize {
        self.key_col
    }

    /// The nodes of the landscape.
    pub fn nodes(&self) -> &[Arc<DistNode>] {
        &self.nodes
    }

    /// Number of nodes (== partitions).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The coordinator↔node links (index = node id).
    pub fn links(&self) -> &[Arc<Link>] {
        &self.links
    }

    /// The coordinator link to one node.
    pub fn link(&self, node: usize) -> &Arc<Link> {
        &self.links[node]
    }

    /// Total row count across all fragments (all versions).
    pub fn row_count(&self) -> usize {
        self.nodes.iter().map(|n| n.row_count()).sum()
    }

    /// The node a row routes to.
    pub fn route(&self, row: &[Value]) -> usize {
        self.spec.partition_of(&row[self.key_col])
    }

    /// Insert one row at its home node.
    pub fn insert(&self, row: &[Value], cid: u64) -> Result<usize> {
        self.nodes[self.route(row)].insert(row, cid)
    }

    /// Snapshot of every fragment's visible rows, in node order.
    pub fn snapshot_rows(&self, cid: u64) -> Vec<Row> {
        self.nodes
            .iter()
            .flat_map(|n| n.snapshot_rows(cid))
            .collect()
    }

    /// Force a delta merge on every node.
    pub fn merge_delta(&self) {
        for n in &self.nodes {
            n.merge_delta();
        }
    }

    /// Partition pruning for a predicate set: intersect the candidate
    /// masks of every predicate on the partitioning column. Updates the
    /// global `hana_dist_partitions_{scanned,pruned}_total` counters.
    pub fn prune(&self, preds: &[(String, ColumnPredicate)]) -> PruneOutcome {
        let mut mask = vec![true; self.node_count()];
        for (col, pred) in preds {
            if col != self.spec.column() {
                continue;
            }
            if let Some(candidates) = self.spec.prune(pred) {
                for (m, c) in mask.iter_mut().zip(&candidates) {
                    *m &= *c;
                }
            }
        }
        let scanned = mask.iter().filter(|&&b| b).count() as u64;
        let pruned = mask.len() as u64 - scanned;
        let reg = hana_obs::registry();
        reg.counter("hana_dist_partitions_scanned_total")
            .add(scanned);
        reg.counter("hana_dist_partitions_pruned_total").add(pruned);
        PruneOutcome {
            mask,
            scanned,
            pruned,
        }
    }

    /// Scan the surviving fragments locally (each node on its own
    /// pool), returning `(node_id, rows)` per scanned node. The caller
    /// gathers the per-node results through the links — see
    /// [`crate::gather`].
    pub fn scan_partitions(
        &self,
        preds: &[(String, ColumnPredicate)],
        cid: u64,
    ) -> Result<(PruneOutcome, NodeParts)> {
        let outcome = self.prune(preds);
        let mut parts = Vec::new();
        for (node, keep) in self.nodes.iter().zip(&outcome.mask) {
            if *keep {
                parts.push((node.id(), node.scan(preds, cid)?));
            }
        }
        Ok((outcome, parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_types::DataType;

    fn table(spec: PartitionSpec) -> DistTable {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        let t = DistTable::new("t", schema, spec).unwrap();
        for i in 0..200 {
            t.insert(&[Value::Int(i % 40), Value::Int(i)], 1).unwrap();
        }
        t
    }

    #[test]
    fn routing_covers_all_nodes_and_rows() {
        let t = table(PartitionSpec::Hash {
            column: "k".into(),
            partitions: 4,
        });
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.row_count(), 200);
        assert!(t.nodes().iter().all(|n| n.row_count() > 0));
        assert_eq!(t.snapshot_rows(2).len(), 200);
    }

    #[test]
    fn unknown_partition_column_is_rejected() {
        let schema = Schema::of(&[("k", DataType::Int)]);
        assert!(DistTable::new(
            "t",
            schema,
            PartitionSpec::Hash {
                column: "missing".into(),
                partitions: 2,
            },
        )
        .is_err());
    }

    #[test]
    fn eq_predicate_prunes_to_one_node() {
        let t = table(PartitionSpec::Hash {
            column: "k".into(),
            partitions: 4,
        });
        let preds = vec![("k".to_string(), ColumnPredicate::Eq(Value::Int(7)))];
        let (outcome, parts) = t.scan_partitions(&preds, 2).unwrap();
        assert_eq!(outcome.scanned, 1);
        assert_eq!(outcome.pruned, 3);
        let rows: usize = parts.iter().map(|(_, r)| r.len()).sum();
        assert_eq!(rows, 5, "k==7 occurs 5 times in 0..200 mod 40");
    }

    #[test]
    fn range_scan_prunes_by_split_points() {
        let t = table(PartitionSpec::Range {
            column: "k".into(),
            split_points: vec![Value::Int(10), Value::Int(20), Value::Int(30)],
        });
        let preds = vec![("k".to_string(), ColumnPredicate::Lt(Value::Int(10)))];
        let (outcome, parts) = t.scan_partitions(&preds, 2).unwrap();
        assert_eq!(outcome.scanned, 1);
        assert_eq!(outcome.pruned, 3);
        let rows: usize = parts.iter().map(|(_, r)| r.len()).sum();
        assert_eq!(rows, 50, "k in 0..10, five occurrences each");
    }

    #[test]
    fn unprunable_predicate_scans_everything() {
        let t = table(PartitionSpec::Hash {
            column: "k".into(),
            partitions: 4,
        });
        let preds = vec![("v".to_string(), ColumnPredicate::Lt(Value::Int(100)))];
        let (outcome, parts) = t.scan_partitions(&preds, 2).unwrap();
        assert_eq!(outcome.scanned, 4);
        assert_eq!(outcome.pruned, 0);
        let rows: usize = parts.iter().map(|(_, r)| r.len()).sum();
        assert_eq!(rows, 100);
    }
}
