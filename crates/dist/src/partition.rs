//! Partition specifications: how rows map to nodes, and which nodes a
//! predicate can possibly touch.

use std::hash::{Hash, Hasher};

use hana_columnar::ColumnPredicate;
use hana_types::Value;

/// How a table's rows are split across the nodes of the landscape.
///
/// NULL partition-key values always route to partition 0 (both
/// schemes), so `IS NULL` predicates prune to a single node.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionSpec {
    /// `PARTITION BY HASH(col) PARTITIONS n`: stable value hash modulo
    /// the partition count.
    Hash {
        /// Partitioning column name.
        column: String,
        /// Number of partitions (> 0).
        partitions: usize,
    },
    /// `PARTITION BY RANGE(col) SPLIT AT (…)`: partition *i* holds the
    /// values below `split_points[i]` (and at or above
    /// `split_points[i-1]`); the final catch-all partition holds
    /// everything at or above the last split point. `n` split points
    /// make `n + 1` partitions.
    Range {
        /// Partitioning column name.
        column: String,
        /// Ascending exclusive upper bounds.
        split_points: Vec<Value>,
    },
}

impl PartitionSpec {
    /// The partitioning column.
    pub fn column(&self) -> &str {
        match self {
            PartitionSpec::Hash { column, .. } | PartitionSpec::Range { column, .. } => column,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        match self {
            PartitionSpec::Hash { partitions, .. } => (*partitions).max(1),
            PartitionSpec::Range { split_points, .. } => split_points.len() + 1,
        }
    }

    /// Short display form for EXPLAIN/metrics labels.
    pub fn describe(&self) -> String {
        match self {
            PartitionSpec::Hash { column, partitions } => {
                format!("hash({column}) x{partitions}")
            }
            PartitionSpec::Range {
                column,
                split_points,
            } => format!("range({column}) x{}", split_points.len() + 1),
        }
    }

    /// The partition a key value routes to.
    pub fn partition_of(&self, v: &Value) -> usize {
        if v.is_null() {
            return 0;
        }
        match self {
            PartitionSpec::Hash { partitions, .. } => {
                (stable_value_hash(v) % (*partitions).max(1) as u64) as usize
            }
            PartitionSpec::Range { split_points, .. } => split_points
                .iter()
                .position(|sp| v < sp)
                .unwrap_or(split_points.len()),
        }
    }

    /// The set of partitions a predicate on the partitioning column can
    /// possibly match, as a candidate mask; `None` means the predicate
    /// shape cannot prune (every partition stays a candidate).
    ///
    /// Hash partitioning prunes point shapes (`=`, `IN`, `IS NULL`);
    /// range partitioning additionally prunes the order shapes
    /// (`<`, `<=`, `>`, `>=`, `BETWEEN`) because routing is
    /// order-preserving.
    pub fn prune(&self, pred: &ColumnPredicate) -> Option<Vec<bool>> {
        let n = self.partitions();
        let mut mask = vec![false; n];
        match pred {
            ColumnPredicate::Eq(v) if !v.is_null() => mask[self.partition_of(v)] = true,
            ColumnPredicate::InList(vs) => {
                for v in vs {
                    if !v.is_null() {
                        mask[self.partition_of(v)] = true;
                    }
                }
            }
            ColumnPredicate::IsNull => mask[0] = true,
            ColumnPredicate::Lt(v) => {
                if let PartitionSpec::Range { split_points, .. } = self {
                    // Strict bound: when `v` sits exactly on a split
                    // point, values below it stay below that partition.
                    let hi = split_points
                        .iter()
                        .position(|sp| v <= sp)
                        .unwrap_or(split_points.len());
                    mask[..=hi].fill(true);
                } else {
                    return None;
                }
            }
            ColumnPredicate::Le(v) => {
                if let PartitionSpec::Range { .. } = self {
                    let hi = self.partition_of(v);
                    mask[..=hi].fill(true);
                } else {
                    return None;
                }
            }
            ColumnPredicate::Gt(v) | ColumnPredicate::Ge(v) => {
                if let PartitionSpec::Range { .. } = self {
                    let lo = self.partition_of(v);
                    mask[lo..].fill(true);
                } else {
                    return None;
                }
            }
            ColumnPredicate::Between(lo, hi) => {
                if let PartitionSpec::Range { .. } = self {
                    let (a, b) = (self.partition_of(lo), self.partition_of(hi));
                    mask[a..=b.max(a)].fill(true);
                } else {
                    return None;
                }
            }
            _ => return None,
        }
        Some(mask)
    }
}

/// A process-stable hash of a value, independent of the column it came
/// from. Built on the `Hash` impl of [`Value`] (f64 by bit pattern) via
/// a fixed-key SipHash, then finalized with SplitMix64 so low partition
/// counts still see all input bits.
pub fn stable_value_hash(v: &Value) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    crate::splitmix64(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash4() -> PartitionSpec {
        PartitionSpec::Hash {
            column: "k".into(),
            partitions: 4,
        }
    }

    fn range4() -> PartitionSpec {
        PartitionSpec::Range {
            column: "k".into(),
            split_points: vec![Value::Int(10), Value::Int(20), Value::Int(30)],
        }
    }

    #[test]
    fn hash_routing_is_stable_and_in_range() {
        let s = hash4();
        for i in -100..100 {
            let p = s.partition_of(&Value::Int(i));
            assert!(p < 4);
            assert_eq!(p, s.partition_of(&Value::Int(i)), "stable per value");
        }
        assert_eq!(s.partition_of(&Value::Null), 0);
        // All four partitions receive some traffic.
        let mut seen = [false; 4];
        for i in 0..64 {
            seen[s.partition_of(&Value::Int(i))] = true;
        }
        assert!(seen.iter().all(|&b| b), "hash spreads: {seen:?}");
    }

    #[test]
    fn range_routing_follows_split_points() {
        let s = range4();
        assert_eq!(s.partitions(), 4);
        assert_eq!(s.partition_of(&Value::Int(-5)), 0);
        assert_eq!(s.partition_of(&Value::Int(9)), 0);
        assert_eq!(s.partition_of(&Value::Int(10)), 1, "bounds are exclusive");
        assert_eq!(s.partition_of(&Value::Int(19)), 1);
        assert_eq!(s.partition_of(&Value::Int(25)), 2);
        assert_eq!(s.partition_of(&Value::Int(30)), 3);
        assert_eq!(s.partition_of(&Value::Int(1000)), 3, "catch-all");
        assert_eq!(s.partition_of(&Value::Null), 0);
    }

    #[test]
    fn hash_pruning_points_only() {
        let s = hash4();
        let eq = s.prune(&ColumnPredicate::Eq(Value::Int(7))).unwrap();
        assert_eq!(eq.iter().filter(|&&b| b).count(), 1);
        assert!(eq[s.partition_of(&Value::Int(7))]);
        let inl = s
            .prune(&ColumnPredicate::InList(vec![Value::Int(1), Value::Int(2)]))
            .unwrap();
        assert!(inl.iter().filter(|&&b| b).count() <= 2);
        assert!(s.prune(&ColumnPredicate::Lt(Value::Int(5))).is_none());
        assert!(s.prune(&ColumnPredicate::Like("x%".into())).is_none());
        assert_eq!(
            s.prune(&ColumnPredicate::IsNull).unwrap(),
            vec![true, false, false, false]
        );
    }

    #[test]
    fn range_pruning_covers_order_shapes() {
        let s = range4();
        assert_eq!(
            s.prune(&ColumnPredicate::Lt(Value::Int(9))).unwrap(),
            vec![true, false, false, false]
        );
        assert_eq!(
            s.prune(&ColumnPredicate::Ge(Value::Int(20))).unwrap(),
            vec![false, false, true, true]
        );
        assert_eq!(
            s.prune(&ColumnPredicate::Between(Value::Int(12), Value::Int(22)))
                .unwrap(),
            vec![false, true, true, false]
        );
        assert_eq!(
            s.prune(&ColumnPredicate::Eq(Value::Int(15))).unwrap(),
            vec![false, true, false, false]
        );
    }

    #[test]
    fn pruning_never_loses_rows() {
        // Every value routed to partition p must be a candidate of every
        // predicate it satisfies.
        let specs = [hash4(), range4()];
        let preds = [
            ColumnPredicate::Eq(Value::Int(17)),
            ColumnPredicate::Lt(Value::Int(13)),
            ColumnPredicate::Ge(Value::Int(28)),
            ColumnPredicate::Between(Value::Int(5), Value::Int(25)),
            ColumnPredicate::InList(vec![Value::Int(3), Value::Int(33)]),
        ];
        for spec in &specs {
            for pred in &preds {
                let Some(mask) = spec.prune(pred) else {
                    continue;
                };
                for i in -50..50 {
                    let v = Value::Int(i);
                    if pred.matches(&v) {
                        assert!(
                            mask[spec.partition_of(&v)],
                            "{spec:?} {pred:?} lost value {i}"
                        );
                    }
                }
            }
        }
    }
}
