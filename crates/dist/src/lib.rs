//! # hana-dist
//!
//! The scale-out layer of the platform (§2/§4: "from relational OLAP
//! database to big data infrastructure"): N in-process **nodes**, each
//! owning a hash- or range-partitioned fragment of a column table and
//! driving its local morsels on its own `hana-exec` pool, connected to
//! the coordinator by bounded [`Link`]s that model a network hop —
//! per-link row/byte accounting, deadlines, and injectable faults so the
//! federation retry/deadline machinery of `hana-sda` applies to
//! shuffles exactly as it does to remote sources.
//!
//! On top of the links sit the three classic exchange operators
//! ([`repartition`], [`broadcast`], [`gather`]), each reported as an
//! `exchange[…]` span with rows/bytes shuffled, plus partition pruning
//! ([`PartitionSpec::prune`]) counted via
//! `hana_dist_partitions_{scanned,pruned}_total`.
//!
//! The query side lives in `hana-query` (`PlanOp::DistScan`,
//! partition-wise partial aggregation, broadcast-build distributed hash
//! join); DDL/DML routing lives in `hana-core`.

mod durability;
mod exchange;
mod link;
mod node;
mod partition;
mod table;

pub use durability::PartitionWals;
pub use exchange::{broadcast, gather, repartition, transfer_accounted};
pub use link::{FaultPlan, Link, LinkStats, DEFAULT_CHUNK_ROWS};
pub use node::DistNode;
pub use partition::PartitionSpec;
pub use table::{DistTable, NodeParts, PruneOutcome};

/// SplitMix64 — the deterministic pseudo-random primitive behind the
/// link fault schedules (same generator the `hana-sda` chaos adapter
/// uses, so seeded runs line up across layers).
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a random word onto `[0, 1)`.
pub(crate) fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}
