//! Inter-node links: bounded, accounted, fault-injectable transfers.
//!
//! Everything runs in one process, but every exchange still crosses a
//! [`Link`] that models the network hop between the coordinator and a
//! node: payloads move in bounded chunks (the "bounded channel" of a
//! real shuffle), every delivered chunk is accounted in rows and bytes,
//! and a seeded [`FaultPlan`] can make individual chunk sends fail with
//! the `hana-sda` error taxonomy (`remote_timeout` / `remote_unavailable`
//! are retryable, `remote` is permanent) so the PR 2 retry/deadline
//! machinery drives shuffles too.
//!
//! A faulted send fails **before** delivery: a chunk is either delivered
//! exactly once or not at all, so retries can never duplicate rows and a
//! failed exchange never surfaces a partial result.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use hana_sda::{run_with_retry, RemoteContext, RetryPolicy};
use hana_types::{HanaError, Result};

use crate::{splitmix64, unit_f64};

/// Rows per chunk when the caller does not override it — the bound of
/// the modeled channel.
pub const DEFAULT_CHUNK_ROWS: usize = 8_192;

/// A deterministic fault schedule for one link (the shuffle-level
/// counterpart of `hana_sda::ChaosConfig`). The `n`-th send attempt on
/// the link fails iff the seeded draw for `n` lands under
/// `failure_rate`; a second draw splits failures between `remote_timeout`
/// and `remote_unavailable` (both retryable), and `permanent_rate`
/// carves out non-retryable `remote` errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Probability that a chunk send attempt fails.
    pub failure_rate: f64,
    /// Share of failures surfacing as `remote_timeout` (the rest are
    /// `remote_unavailable`).
    pub timeout_share: f64,
    /// Share of failures that are permanent (`remote`, not retryable);
    /// applied before the timeout split.
    pub permanent_share: f64,
    /// Added latency per send attempt in microseconds — models a slow
    /// (but correct) node. `0` = no slowdown.
    pub slow_us: u64,
}

impl FaultPlan {
    /// A plan that fails `failure_rate` of sends, all retryable.
    pub fn flaky(seed: u64, failure_rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            failure_rate: failure_rate.clamp(0.0, 1.0),
            timeout_share: 0.5,
            permanent_share: 0.0,
            slow_us: 0,
        }
    }

    /// A plan that never fails but delays every send attempt by
    /// `slow_us` microseconds (a slow partition node).
    pub fn slow(slow_us: u64) -> FaultPlan {
        FaultPlan {
            seed: 0,
            failure_rate: 0.0,
            timeout_share: 0.0,
            permanent_share: 0.0,
            slow_us,
        }
    }

    /// Copy of this plan with per-send latency injected.
    pub fn with_slow_us(mut self, slow_us: u64) -> FaultPlan {
        self.slow_us = slow_us;
        self
    }

    /// Copy of this plan with a specific timeout share.
    pub fn with_timeout_share(mut self, share: f64) -> FaultPlan {
        self.timeout_share = share.clamp(0.0, 1.0);
        self
    }

    /// Copy of this plan with a specific permanent-failure share.
    pub fn with_permanent_share(mut self, share: f64) -> FaultPlan {
        self.permanent_share = share.clamp(0.0, 1.0);
        self
    }

    /// The verdict for send number `n` (0-based): `None` = deliver.
    fn verdict(&self, n: u64, what: &str) -> Option<HanaError> {
        if unit_f64(splitmix64(self.seed ^ n.wrapping_mul(0x9E37))) >= self.failure_rate {
            return None;
        }
        if unit_f64(splitmix64(self.seed ^ n ^ 0x0000_D157)) < self.permanent_share {
            return Some(HanaError::remote(format!("link fault injected in {what}")));
        }
        if unit_f64(splitmix64(self.seed ^ n ^ 0x0007_1530)) < self.timeout_share {
            Some(HanaError::remote_timeout(format!(
                "link timeout injected in {what}"
            )))
        } else {
            Some(HanaError::remote_unavailable(format!(
                "link unavailable injected in {what}"
            )))
        }
    }
}

/// Monotonic per-link transfer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Payload items delivered (rows, or partial-aggregate groups).
    pub rows: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Chunks delivered.
    pub chunks: u64,
    /// Send attempts that a fault plan failed.
    pub faults: u64,
    /// Retried attempts (attempts beyond the first per chunk).
    pub retries: u64,
}

/// One directed link of the landscape (coordinator ↔ node `to`).
pub struct Link {
    from: usize,
    to: usize,
    chunk_rows: usize,
    rows: AtomicU64,
    bytes: AtomicU64,
    chunks: AtomicU64,
    faults: AtomicU64,
    retries: AtomicU64,
    sends: AtomicU64,
    fault: Mutex<Option<FaultPlan>>,
}

impl Link {
    /// A healthy link from endpoint `from` to endpoint `to` with the
    /// default channel bound.
    pub fn new(from: usize, to: usize) -> Link {
        Link {
            from,
            to,
            chunk_rows: DEFAULT_CHUNK_ROWS,
            rows: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            sends: AtomicU64::new(0),
            fault: Mutex::new(None),
        }
    }

    /// Copy of this link with a specific chunk bound (rows per send).
    pub fn with_chunk_rows(mut self, rows: usize) -> Link {
        self.chunk_rows = rows.max(1);
        self
    }

    /// Source endpoint id (the coordinator is `usize::MAX`).
    pub fn from(&self) -> usize {
        self.from
    }

    /// Destination endpoint id.
    pub fn to(&self) -> usize {
        self.to
    }

    /// Install (or clear) a fault plan. Applies to subsequent sends.
    pub fn set_fault(&self, plan: Option<FaultPlan>) {
        *self.fault.lock() = plan;
    }

    /// Current transfer counters.
    pub fn stats(&self) -> LinkStats {
        LinkStats {
            rows: self.rows.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
        }
    }

    /// Ship `items` across the link in bounded chunks under `ctx`'s
    /// deadline and `policy`'s retry budget, returning the delivered
    /// payload. `bytes_of` prices one item for the byte accounting.
    ///
    /// All-or-nothing: an error (budget exhausted, deadline expired, or
    /// a permanent fault) delivers **none** of the payload to the
    /// caller; already-delivered chunks are discarded, never surfaced.
    pub fn transfer<T: Clone>(
        &self,
        ctx: &RemoteContext,
        policy: &RetryPolicy,
        what: &str,
        items: Vec<T>,
        bytes_of: impl Fn(&T) -> u64,
    ) -> Result<Vec<T>> {
        let mut delivered: Vec<T> = Vec::with_capacity(items.len());
        if items.is_empty() {
            // An empty exchange still performs one (fault-checked)
            // handshake so deadlines and chaos apply uniformly.
            self.send_chunk(ctx, policy, what, 0)?;
            return Ok(delivered);
        }
        for chunk in items.chunks(self.chunk_rows) {
            let bytes: u64 = chunk.iter().map(&bytes_of).sum();
            self.send_chunk(ctx, policy, what, bytes)?;
            self.rows.fetch_add(chunk.len() as u64, Ordering::Relaxed);
            self.bytes.fetch_add(bytes, Ordering::Relaxed);
            delivered.extend_from_slice(chunk);
        }
        Ok(delivered)
    }

    /// One chunk handshake: deadline check, fault verdict, retries.
    fn send_chunk(
        &self,
        ctx: &RemoteContext,
        policy: &RetryPolicy,
        what: &str,
        _bytes: u64,
    ) -> Result<()> {
        let mut first_attempt = true;
        run_with_retry(policy, ctx, what, |_attempt| {
            if !first_attempt {
                self.retries.fetch_add(1, Ordering::Relaxed);
                hana_obs::registry()
                    .counter("hana_dist_link_retries_total")
                    .inc();
            }
            first_attempt = false;
            let n = self.sends.fetch_add(1, Ordering::Relaxed);
            let installed = *self.fault.lock();
            if let Some(plan) = installed {
                if plan.slow_us > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(plan.slow_us));
                }
                if let Some(err) = plan.verdict(n, what) {
                    self.faults.fetch_add(1, Ordering::Relaxed);
                    hana_obs::registry()
                        .counter("hana_dist_link_faults_total")
                        .inc();
                    return Err(err);
                }
            }
            self.chunks.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn rows(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    #[test]
    fn healthy_link_delivers_everything_chunked() {
        let link = Link::new(usize::MAX, 0).with_chunk_rows(10);
        let ctx = RemoteContext::snapshot(1);
        let out = link
            .transfer(&ctx, &RetryPolicy::none(), "t", rows(35), |_| 8)
            .unwrap();
        assert_eq!(out, rows(35));
        let s = link.stats();
        assert_eq!(s.rows, 35);
        assert_eq!(s.bytes, 35 * 8);
        assert_eq!(s.chunks, 4, "35 rows in 10-row chunks");
        assert_eq!(s.faults, 0);
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let plan = FaultPlan::flaky(42, 0.5);
        let a: Vec<bool> = (0..64).map(|n| plan.verdict(n, "x").is_some()).collect();
        let b: Vec<bool> = (0..64).map(|n| plan.verdict(n, "x").is_some()).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&f| f), "some sends fail at 50%");
        assert!(!a.iter().all(|&f| f), "some sends succeed at 50%");
    }

    #[test]
    fn flaky_link_recovers_within_retry_budget() {
        let link = Link::new(usize::MAX, 1).with_chunk_rows(5);
        link.set_fault(Some(FaultPlan::flaky(7, 0.4)));
        let ctx = RemoteContext::snapshot(1);
        let policy = RetryPolicy::default()
            .with_max_attempts(10)
            .with_base_backoff(Duration::from_micros(10));
        let out = link
            .transfer(&ctx, &policy, "shuffle", rows(40), |_| 8)
            .unwrap();
        assert_eq!(out, rows(40), "no loss, no duplication");
        let s = link.stats();
        assert_eq!(s.rows, 40);
        assert!(s.faults > 0, "the plan did inject faults");
        assert!(s.retries >= s.faults, "every fault was retried");
    }

    #[test]
    fn exhausted_budget_surfaces_retryable_error_and_no_rows() {
        let link = Link::new(usize::MAX, 2);
        link.set_fault(Some(FaultPlan::flaky(3, 1.0)));
        let ctx = RemoteContext::snapshot(1);
        let policy = RetryPolicy::default()
            .with_max_attempts(3)
            .with_base_backoff(Duration::from_micros(1));
        let err = link
            .transfer(&ctx, &policy, "shuffle", rows(10), |_| 8)
            .unwrap_err();
        assert!(err.is_retryable());
        assert_eq!(link.stats().rows, 0, "nothing delivered");
    }

    #[test]
    fn deadline_yields_remote_timeout() {
        let link = Link::new(usize::MAX, 3);
        link.set_fault(Some(FaultPlan::flaky(9, 1.0)));
        let ctx = RemoteContext::snapshot(1).with_deadline(Duration::ZERO);
        let err = link
            .transfer(&ctx, &RetryPolicy::default(), "shuffle", rows(4), |_| 8)
            .unwrap_err();
        assert_eq!(err.kind(), "remote_timeout");
    }

    #[test]
    fn permanent_fault_fails_fast() {
        let link = Link::new(usize::MAX, 4);
        link.set_fault(Some(FaultPlan::flaky(5, 1.0).with_permanent_share(1.0)));
        let ctx = RemoteContext::snapshot(1);
        let err = link
            .transfer(
                &ctx,
                &RetryPolicy::default().with_max_attempts(5),
                "shuffle",
                rows(4),
                |_| 8,
            )
            .unwrap_err();
        assert!(!err.is_retryable());
        assert_eq!(link.stats().retries, 0, "permanent errors do not retry");
    }
}
