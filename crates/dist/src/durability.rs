//! Per-partition write-ahead logs with coordinated recovery.
//!
//! Each node of a distributed table gets its own segmented WAL
//! (`<dir>/part-NNN/`), holding full row images of the inserts routed to
//! that partition. Durability is **coordinated** with the transaction
//! coordinator's log:
//!
//! 1. routed rows are appended to their home partition's log;
//! 2. every touched partition log is fsynced (`sync`) *before* the
//!    coordinator makes its commit record durable — so a commit record
//!    in the coordinator log proves the partition redo is on disk;
//! 3. after the commit point, a `Commit` marker is appended to the
//!    partition logs without its own fsync (pure bookkeeping — the
//!    coordinator log is the source of truth for outcomes).
//!
//! Recovery therefore replays a partition log's `Data` records only for
//! transactions the *coordinator* log committed: a partition record
//! whose coordinator commit never became durable is ignored, and a
//! partition tail torn mid-append can only affect transactions whose
//! commit record cannot exist either.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use hana_txn::{LogRecord, Wal};
use hana_types::{HanaError, Result, Row, Value};

use crate::table::DistTable;

/// Field separator inside one partition redo payload.
const FIELD_SEP: char = '\u{1f}';

/// One WAL per node of a distributed table.
pub struct PartitionWals {
    dir: PathBuf,
    wals: Vec<Arc<Wal>>,
}

impl PartitionWals {
    /// Open (or create) one log per partition under `dir`.
    pub fn open(dir: &Path, partitions: usize) -> Result<PartitionWals> {
        let mut wals = Vec::with_capacity(partitions);
        for p in 0..partitions {
            wals.push(Arc::new(Wal::open_dir(&dir.join(format!("part-{p:03}")))?));
        }
        Ok(PartitionWals {
            dir: dir.to_path_buf(),
            wals,
        })
    }

    /// Root directory of the partition logs.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The per-partition logs, index = partition number.
    pub fn wals(&self) -> &[Arc<Wal>] {
        &self.wals
    }
}

impl DistTable {
    /// Attach per-partition WALs under `dir` (one subdirectory per
    /// node). Idempotent for the same directory.
    pub fn attach_wal(&self, dir: &Path) -> Result<()> {
        let mut slot = self.wal_slot().write();
        if slot.is_none() {
            *slot = Some(Arc::new(PartitionWals::open(dir, self.node_count())?));
        }
        Ok(())
    }

    /// Whether per-partition WALs are attached.
    pub fn wal_attached(&self) -> bool {
        self.wal_slot().read().is_some()
    }

    /// The attached partition logs, if any.
    pub fn partition_wals(&self) -> Option<Arc<PartitionWals>> {
        self.wal_slot().read().clone()
    }

    /// Log one routed row image to its home partition's WAL (no fsync;
    /// [`DistTable::sync_wal`] is the durability point). A no-op when no
    /// WAL is attached.
    pub fn log_insert(&self, tid: u64, row: &[Value]) -> Result<()> {
        let Some(wals) = self.partition_wals() else {
            return Ok(());
        };
        let node = self.route(row);
        wals.wals[node].append(LogRecord::Data {
            tid,
            engine: "dist".into(),
            payload: Row(row.to_vec()).to_delimited(FIELD_SEP),
        })
    }

    /// Make every partition log durable. Called *before* the
    /// coordinator's commit record so a durable commit implies durable
    /// partition redo.
    pub fn sync_wal(&self) -> Result<()> {
        if let Some(wals) = self.partition_wals() {
            for w in &wals.wals {
                w.sync()?;
            }
        }
        Ok(())
    }

    /// Post-commit bookkeeping: mark `tid` committed in every partition
    /// log (not individually fsynced — the coordinator log decides).
    pub fn log_commit(&self, tid: u64, cid: u64) {
        if let Some(wals) = self.partition_wals() {
            for w in &wals.wals {
                if let Err(e) = w.append(LogRecord::Commit { tid, cid }) {
                    hana_obs::warn(format!(
                        "partition WAL commit marker for txn {tid} lost: {e}"
                    ));
                }
            }
        }
    }

    /// Redo the partition-logged inserts of coordinator-committed
    /// transaction `tid`, applying them at `cid` into each node's
    /// fragment. Returns the number of rows applied.
    pub fn redo_txn(&self, tid: u64, cid: u64) -> Result<usize> {
        let Some(wals) = self.partition_wals() else {
            return Ok(0);
        };
        let schema = self.schema().clone();
        let mut applied = 0usize;
        for (node, wal) in wals.wals.iter().enumerate() {
            for rec in wal.records() {
                let LogRecord::Data {
                    tid: t, payload, ..
                } = rec
                else {
                    continue;
                };
                if t != tid {
                    continue;
                }
                let fields: Vec<&str> = payload.split(FIELD_SEP).collect();
                if fields.len() != schema.len() {
                    return Err(HanaError::Io(format!(
                        "corrupt partition redo record for txn {tid} on node {node}"
                    )));
                }
                let mut vals = Vec::with_capacity(fields.len());
                for (f, c) in fields.iter().zip(schema.columns()) {
                    vals.push(Value::parse_typed(f, c.data_type)?);
                }
                self.nodes()[node].insert(&vals, cid)?;
                applied += 1;
            }
        }
        hana_obs::registry()
            .counter("hana_dist_partition_redo_rows_total")
            .add(applied as u64);
        Ok(applied)
    }
}
