//! One in-process node: a table fragment plus its own execution pool.

use std::sync::Arc;

use parking_lot::RwLock;

use hana_columnar::{ColumnPredicate, ColumnTable};
use hana_exec::{ExecConfig, ExecContext};
use hana_types::{Result, Row, Schema, Value};

/// Rows at or above this count route a node-local scan through the
/// node's morsel pool (mirrors the executor's threshold).
const NODE_PARALLEL_ROW_THRESHOLD: usize = 65_536;

/// One node of the landscape: fragment `id` of a distributed table,
/// owned exclusively by this node, scanned and merged on the node's own
/// [`ExecContext`] pool.
pub struct DistNode {
    id: usize,
    table: Arc<RwLock<ColumnTable>>,
    exec: Arc<ExecContext>,
}

impl DistNode {
    /// A node owning an empty fragment of `schema`, with `workers`
    /// local pool threads.
    pub fn new(id: usize, table_name: &str, schema: Schema, workers: usize) -> DistNode {
        let fragment = format!("{table_name}#p{id}");
        DistNode {
            id,
            table: Arc::new(RwLock::new(ColumnTable::new(&fragment, schema))),
            exec: ExecContext::new(ExecConfig::default().with_workers(workers.max(1))),
        }
    }

    /// This node's id (== its partition number).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's table fragment (shared with the write path: routed
    /// inserts buffer against this same handle).
    pub fn table(&self) -> &Arc<RwLock<ColumnTable>> {
        &self.table
    }

    /// The node's private execution context.
    pub fn exec(&self) -> &Arc<ExecContext> {
        &self.exec
    }

    /// Rows currently stored in the fragment (all versions).
    pub fn row_count(&self) -> usize {
        self.table.read().row_count()
    }

    /// Insert a row into the fragment.
    pub fn insert(&self, row: &[Value], cid: u64) -> Result<usize> {
        self.table.write().insert(row, cid)
    }

    /// Scan the fragment under `cid` with name-resolved predicates,
    /// materializing the hit rows. Large fragments scan morsel-parallel
    /// on the node's own pool.
    pub fn scan(&self, preds: &[(String, ColumnPredicate)], cid: u64) -> Result<Vec<Row>> {
        let t = self.table.read();
        let resolved: Vec<(usize, ColumnPredicate)> = preds
            .iter()
            .map(|(c, p)| t.schema().require(c).map(|i| (i, p.clone())))
            .collect::<Result<_>>()?;
        let hits = if t.row_count() >= NODE_PARALLEL_ROW_THRESHOLD {
            t.par_scan_all(&self.exec, &resolved, cid)?
        } else {
            t.scan_all(&resolved, cid)?
        };
        Ok(t.collect_rows(&hits, &[]))
    }

    /// Snapshot of all rows visible at `cid` (backup, gather-all).
    pub fn snapshot_rows(&self, cid: u64) -> Vec<Row> {
        self.table.read().snapshot_rows(cid)
    }

    /// Force a delta merge of the fragment.
    pub fn merge_delta(&self) {
        self.table.write().merge_delta();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_types::DataType;

    #[test]
    fn node_inserts_and_scans_its_fragment() {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        let node = DistNode::new(2, "t", schema, 1);
        for i in 0..100 {
            node.insert(&[Value::Int(i), Value::Int(i * 10)], 1)
                .unwrap();
        }
        assert_eq!(node.id(), 2);
        assert_eq!(node.row_count(), 100);
        let hits = node
            .scan(&[("k".into(), ColumnPredicate::Lt(Value::Int(10)))], 2)
            .unwrap();
        assert_eq!(hits.len(), 10);
        node.merge_delta();
        assert_eq!(node.snapshot_rows(2).len(), 100);
    }
}
