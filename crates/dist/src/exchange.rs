//! The three exchange operators: repartition, broadcast, gather.
//!
//! Every exchange runs on the coordinator thread under an
//! `exchange[<kind>]` observability span carrying the rows and bytes
//! shuffled, and every shipped payload crosses a [`Link`] — so chunk
//! bounds, deadlines, retries and injected faults apply uniformly. The
//! global counters `hana_dist_rows_shuffled_total` /
//! `hana_dist_bytes_shuffled_total` accumulate across all exchanges.

use hana_sda::{RemoteContext, RetryPolicy};
use hana_types::{Result, Row};

use crate::link::Link;
use crate::table::DistTable;

/// Payload bytes of one row (the per-value storage footprint, the same
/// figure `ResultSet::approx_bytes` reports).
pub(crate) fn row_bytes(r: &Row) -> u64 {
    r.values().iter().map(|v| v.storage_bytes() as u64).sum()
}

/// Ship `items` across `link` and account them as shuffled payload in
/// the global registry. This is the accounting primitive all three
/// exchange operators (and the partial-aggregate shuffle in
/// `hana-query`) are built on.
pub fn transfer_accounted<T: Clone>(
    link: &Link,
    ctx: &RemoteContext,
    policy: &RetryPolicy,
    what: &str,
    items: Vec<T>,
    bytes_of: impl Fn(&T) -> u64,
) -> Result<(Vec<T>, u64)> {
    let count = items.len() as u64;
    let bytes: u64 = items.iter().map(&bytes_of).sum();
    let delivered = link.transfer(ctx, policy, what, items, bytes_of)?;
    let reg = hana_obs::registry();
    reg.counter("hana_dist_rows_shuffled_total").add(count);
    reg.counter("hana_dist_bytes_shuffled_total").add(bytes);
    Ok((delivered, bytes))
}

/// Gather: pull each node's rows to the coordinator over its link,
/// concatenated in node order.
pub fn gather(
    table: &DistTable,
    ctx: &RemoteContext,
    policy: &RetryPolicy,
    parts: Vec<(usize, Vec<Row>)>,
) -> Result<Vec<Row>> {
    let span = hana_obs::span("exchange[gather]");
    span.attr("nodes", parts.len() as u64);
    let mut out = Vec::new();
    let mut bytes = 0;
    for (node, rows) in parts {
        let (delivered, b) = transfer_accounted(
            table.link(node),
            ctx,
            policy,
            &format!("gather[{}#p{node}]", table.name()),
            rows,
            row_bytes,
        )?;
        bytes += b;
        out.extend(delivered);
    }
    span.set_rows(out.len() as u64);
    span.set_bytes(bytes);
    Ok(out)
}

/// Broadcast: replicate `rows` to every target node (small build sides
/// of distributed joins), returning each node's delivered copy.
pub fn broadcast(
    table: &DistTable,
    ctx: &RemoteContext,
    policy: &RetryPolicy,
    rows: &[Row],
    targets: &[usize],
) -> Result<Vec<(usize, Vec<Row>)>> {
    let span = hana_obs::span("exchange[broadcast]");
    span.attr("nodes", targets.len() as u64);
    let mut out = Vec::with_capacity(targets.len());
    let mut total_rows = 0u64;
    let mut total_bytes = 0u64;
    for &node in targets {
        let (delivered, b) = transfer_accounted(
            table.link(node),
            ctx,
            policy,
            &format!("broadcast[{}#p{node}]", table.name()),
            rows.to_vec(),
            row_bytes,
        )?;
        total_rows += delivered.len() as u64;
        total_bytes += b;
        out.push((node, delivered));
    }
    span.set_rows(total_rows);
    span.set_bytes(total_bytes);
    Ok(out)
}

/// Repartition (hash shuffle): bucket `rows` by the table's partition
/// spec and ship each bucket to its home node, returning the delivered
/// buckets in node order. This is also the routed bulk-load path.
pub fn repartition(
    table: &DistTable,
    ctx: &RemoteContext,
    policy: &RetryPolicy,
    rows: Vec<Row>,
) -> Result<Vec<Vec<Row>>> {
    let span = hana_obs::span("exchange[repartition]");
    span.attr("nodes", table.node_count() as u64);
    let mut buckets: Vec<Vec<Row>> = (0..table.node_count()).map(|_| Vec::new()).collect();
    for row in rows {
        buckets[table.route(row.values())].push(row);
    }
    let mut out = Vec::with_capacity(buckets.len());
    let mut total_rows = 0u64;
    let mut total_bytes = 0u64;
    for (node, bucket) in buckets.into_iter().enumerate() {
        if bucket.is_empty() {
            // Nothing homed at this node: skip the handshake entirely
            // (an empty bucket is not an exchange).
            out.push(Vec::new());
            continue;
        }
        let (delivered, b) = transfer_accounted(
            table.link(node),
            ctx,
            policy,
            &format!("repartition[{}#p{node}]", table.name()),
            bucket,
            row_bytes,
        )?;
        total_rows += delivered.len() as u64;
        total_bytes += b;
        out.push(delivered);
    }
    span.set_rows(total_rows);
    span.set_bytes(total_bytes);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionSpec;
    use hana_types::{DataType, Schema, Value};

    fn table() -> DistTable {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        DistTable::new(
            "x",
            schema,
            PartitionSpec::Hash {
                column: "k".into(),
                partitions: 3,
            },
        )
        .unwrap()
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| Row::from_values([Value::Int(i), Value::Int(i * 2)]))
            .collect()
    }

    #[test]
    fn repartition_routes_every_row_exactly_once() {
        let t = table();
        let ctx = RemoteContext::snapshot(1);
        let buckets = repartition(&t, &ctx, &RetryPolicy::none(), rows(99)).unwrap();
        assert_eq!(buckets.len(), 3);
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, 99);
        for (node, bucket) in buckets.iter().enumerate() {
            for row in bucket {
                assert_eq!(t.route(row.values()), node, "row landed at its home node");
            }
        }
    }

    #[test]
    fn broadcast_replicates_to_all_targets() {
        let t = table();
        let ctx = RemoteContext::snapshot(1);
        let copies = broadcast(&t, &ctx, &RetryPolicy::none(), &rows(10), &[0, 1, 2]).unwrap();
        assert_eq!(copies.len(), 3);
        for (_, copy) in &copies {
            assert_eq!(copy.len(), 10);
        }
    }

    #[test]
    fn gather_concatenates_and_accounts() {
        let t = table();
        let ctx = RemoteContext::snapshot(1);
        let before = hana_obs::registry()
            .counter("hana_dist_rows_shuffled_total")
            .get();
        let parts = vec![(0, rows(5)), (2, rows(7))];
        let out = gather(&t, &ctx, &RetryPolicy::none(), parts).unwrap();
        assert_eq!(out.len(), 12);
        let after = hana_obs::registry()
            .counter("hana_dist_rows_shuffled_total")
            .get();
        assert_eq!(after - before, 12);
        assert!(t.link(0).stats().rows >= 5);
        assert!(t.link(2).stats().rows >= 7);
    }
}
