//! K-means clustering (Lloyd's algorithm with deterministic seeding).
//!
//! Part of the predictive-analysis toolbox (§4.1 mentions the SAP
//! predictive analysis library; k-means is its second headline
//! algorithm and is exercised by the telecom example for grouping cell
//! towers by load profile).

use hana_types::{HanaError, Result};

/// Clustering outcome.
#[derive(Debug, Clone)]
pub struct KMeansModel {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment per input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Iterations until convergence.
    pub iterations: usize,
}

/// Run k-means. Seeding is deterministic (evenly spaced points of the
/// input), so results are reproducible without an RNG.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iter: usize) -> Result<KMeansModel> {
    if k == 0 {
        return Err(HanaError::Config("k must be positive".into()));
    }
    if points.len() < k {
        return Err(HanaError::Config(format!(
            "need at least k={k} points, got {}",
            points.len()
        )));
    }
    let dim = points[0].len();
    if points.iter().any(|p| p.len() != dim) {
        return Err(HanaError::Config("points have mixed dimensions".into()));
    }

    // Deterministic seeding: evenly spaced input points.
    let mut centroids: Vec<Vec<f64>> = (0..k)
        .map(|i| points[i * points.len() / k].clone())
        .collect();
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;

    for iter in 0..max_iter.max(1) {
        iterations = iter + 1;
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let nearest = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| dist2(p, a).total_cmp(&dist2(p, b)))
                .map(|(j, _)| j)
                .expect("k >= 1");
            if assignments[i] != nearest {
                assignments[i] = nearest;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                *c = sum.iter().map(|s| s / *count as f64).collect();
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }
    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| dist2(p, &centroids[a]))
        .sum();
    Ok(KMeansModel {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeansModel {
    /// Assign a new point to its nearest cluster.
    pub fn predict(&self, point: &[f64]) -> usize {
        self.centroids
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| dist2(point, a).total_cmp(&dist2(point, b)))
            .map(|(j, _)| j)
            .expect("model has centroids")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_obvious_clusters() {
        let mut pts = Vec::new();
        for i in 0..50 {
            pts.push(vec![0.0 + (i % 5) as f64 * 0.01, 0.0]);
            pts.push(vec![10.0 + (i % 5) as f64 * 0.01, 10.0]);
        }
        let model = kmeans(&pts, 2, 50).unwrap();
        // Points alternate; clusters must split them consistently.
        let a = model.assignments[0];
        let b = model.assignments[1];
        assert_ne!(a, b);
        assert!(model
            .assignments
            .iter()
            .enumerate()
            .all(|(i, &c)| c == if i % 2 == 0 { a } else { b }));
        assert!(model.inertia < 1.0);
        // Prediction follows the centroids.
        assert_eq!(model.predict(&[0.1, 0.1]), a);
        assert_eq!(model.predict(&[9.9, 9.8]), b);
    }

    #[test]
    fn validation() {
        assert!(kmeans(&[], 1, 10).is_err());
        assert!(kmeans(&[vec![1.0]], 0, 10).is_err());
        assert!(kmeans(&[vec![1.0], vec![1.0, 2.0]], 1, 10).is_err());
        assert!(kmeans(&[vec![1.0], vec![2.0]], 3, 10).is_err());
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![1.0], vec![5.0], vec![9.0]];
        let model = kmeans(&pts, 3, 20).unwrap();
        assert!(model.inertia < 1e-12);
    }
}
