//! Apriori association-rule mining.
//!
//! §4.1 of the paper: "With the SAP predictive analysis library using the
//! apriory algorithm thousands of association rules were discovered with
//! confidence between 80% and 100%. The derived models then were used to
//! classify new readouts as warranty candidates in real-time".
//!
//! Classic levelwise Apriori with prefix-based candidate generation and
//! subset pruning; itemsets are sorted `Vec<String>`s.

use std::collections::{HashMap, HashSet};

use hana_types::{HanaError, Result};

/// Mining parameters.
#[derive(Debug, Clone, Copy)]
pub struct AprioriParams {
    /// Minimum support (fraction of transactions), `0..=1`.
    pub min_support: f64,
    /// Minimum rule confidence, `0..=1`.
    pub min_confidence: f64,
    /// Largest itemset size explored.
    pub max_len: usize,
}

impl Default for AprioriParams {
    fn default() -> Self {
        AprioriParams {
            min_support: 0.05,
            min_confidence: 0.8,
            max_len: 4,
        }
    }
}

/// One mined rule `antecedent => consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// Left-hand side items (sorted).
    pub antecedent: Vec<String>,
    /// Right-hand side items (sorted).
    pub consequent: Vec<String>,
    /// Support of the full itemset.
    pub support: f64,
    /// `support(A ∪ C) / support(A)`.
    pub confidence: f64,
    /// `confidence / support(C)` — how much better than chance.
    pub lift: f64,
}

/// Mine association rules from transactions (each a set of items).
pub fn apriori(
    transactions: &[Vec<String>],
    params: AprioriParams,
) -> Result<Vec<AssociationRule>> {
    if !(0.0..=1.0).contains(&params.min_support) || !(0.0..=1.0).contains(&params.min_confidence) {
        return Err(HanaError::Config(
            "apriori thresholds must be within [0, 1]".into(),
        ));
    }
    let n = transactions.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let min_count = (params.min_support * n as f64).ceil().max(1.0) as usize;

    // Normalize transactions to sorted, deduped item sets.
    let txs: Vec<Vec<String>> = transactions
        .iter()
        .map(|t| {
            let mut v = t.clone();
            v.sort();
            v.dedup();
            v
        })
        .collect();

    // L1.
    let mut counts: HashMap<Vec<String>, usize> = HashMap::new();
    for t in &txs {
        for item in t {
            *counts.entry(vec![item.clone()]).or_insert(0) += 1;
        }
    }
    counts.retain(|_, c| *c >= min_count);

    // All frequent itemsets with their counts.
    let mut frequent: HashMap<Vec<String>, usize> = counts.clone();
    let mut current: Vec<Vec<String>> = counts.keys().cloned().collect();
    current.sort();

    let mut k = 1usize;
    while !current.is_empty() && k < params.max_len {
        k += 1;
        // Candidate generation: join itemsets sharing a (k-2)-prefix.
        let mut candidates: Vec<Vec<String>> = Vec::new();
        for i in 0..current.len() {
            for j in (i + 1)..current.len() {
                let (a, b) = (&current[i], &current[j]);
                if a[..k - 2] == b[..k - 2] {
                    let mut cand = a.clone();
                    cand.push(b[k - 2].clone());
                    // Subset pruning: all (k-1)-subsets must be frequent.
                    let all_frequent = (0..cand.len()).all(|drop| {
                        let mut sub = cand.clone();
                        sub.remove(drop);
                        frequent.contains_key(&sub)
                    });
                    if all_frequent {
                        candidates.push(cand);
                    }
                } else {
                    break; // sorted: no further shared prefixes for i
                }
            }
        }
        // Count candidates.
        let mut cand_counts: HashMap<Vec<String>, usize> = HashMap::new();
        for t in &txs {
            if t.len() < k {
                continue;
            }
            let set: HashSet<&String> = t.iter().collect();
            for cand in &candidates {
                if cand.iter().all(|i| set.contains(i)) {
                    *cand_counts.entry(cand.clone()).or_insert(0) += 1;
                }
            }
        }
        cand_counts.retain(|_, c| *c >= min_count);
        current = cand_counts.keys().cloned().collect();
        current.sort();
        frequent.extend(cand_counts);
    }

    // Rule generation: for each frequent itemset of size >= 2, split
    // into antecedent/consequent.
    let mut rules = Vec::new();
    for (itemset, &count) in &frequent {
        if itemset.len() < 2 {
            continue;
        }
        let support = count as f64 / n as f64;
        for mask in 1..(1u32 << itemset.len()) - 1 {
            let mut ante = Vec::new();
            let mut cons = Vec::new();
            for (i, item) in itemset.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    ante.push(item.clone());
                } else {
                    cons.push(item.clone());
                }
            }
            let Some(&ante_count) = frequent.get(&ante) else {
                continue;
            };
            let confidence = count as f64 / ante_count as f64;
            if confidence < params.min_confidence {
                continue;
            }
            let cons_support = frequent
                .get(&cons)
                .map(|&c| c as f64 / n as f64)
                .unwrap_or(support);
            rules.push(AssociationRule {
                antecedent: ante,
                consequent: cons,
                support,
                confidence,
                lift: confidence / cons_support.max(f64::MIN_POSITIVE),
            });
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(b.support.total_cmp(&a.support))
            .then(a.antecedent.cmp(&b.antecedent))
            .then(a.consequent.cmp(&b.consequent))
    });
    Ok(rules)
}

/// A rule-based classifier built from mined rules whose consequent
/// contains `target_item` — the paper's "classify new readouts as
/// warranty candidates in real-time".
#[derive(Debug, Clone)]
pub struct RuleClassifier {
    rules: Vec<AssociationRule>,
    target: String,
}

impl RuleClassifier {
    /// Keep only rules predicting `target_item`.
    pub fn new(rules: &[AssociationRule], target_item: &str) -> RuleClassifier {
        RuleClassifier {
            rules: rules
                .iter()
                .filter(|r| r.consequent.iter().any(|c| c == target_item))
                .cloned()
                .collect(),
            target: target_item.to_string(),
        }
    }

    /// Number of usable rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// The predicted item.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Score an observation: the highest confidence among rules whose
    /// antecedent is contained in the observation, or `None` if no rule
    /// fires.
    pub fn score(&self, observation: &[String]) -> Option<f64> {
        let set: HashSet<&String> = observation.iter().collect();
        self.rules
            .iter()
            .filter(|r| r.antecedent.iter().all(|i| set.contains(i)))
            .map(|r| r.confidence)
            .max_by(f64::total_cmp)
    }

    /// Classify with a confidence threshold.
    pub fn classify(&self, observation: &[String], threshold: f64) -> bool {
        self.score(observation).is_some_and(|s| s >= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn classic_dataset() -> Vec<Vec<String>> {
        vec![
            tx(&["bread", "milk"]),
            tx(&["bread", "diapers", "beer", "eggs"]),
            tx(&["milk", "diapers", "beer", "cola"]),
            tx(&["bread", "milk", "diapers", "beer"]),
            tx(&["bread", "milk", "diapers", "cola"]),
        ]
    }

    #[test]
    fn finds_classic_rules() {
        let rules = apriori(
            &classic_dataset(),
            AprioriParams {
                min_support: 0.4,
                min_confidence: 0.7,
                max_len: 3,
            },
        )
        .unwrap();
        assert!(!rules.is_empty());
        // {beer} => {diapers} is the textbook rule: confidence 1.0.
        let rule = rules
            .iter()
            .find(|r| r.antecedent == vec!["beer".to_string()])
            .expect("beer => diapers");
        assert_eq!(rule.consequent, vec!["diapers".to_string()]);
        assert!((rule.confidence - 1.0).abs() < 1e-9);
        assert!(rule.lift > 1.0);
        // All reported rules respect the thresholds.
        for r in &rules {
            assert!(r.confidence >= 0.7 - 1e-12);
            assert!(r.support >= 0.4 - 1e-12);
        }
    }

    #[test]
    fn support_counts_are_exact() {
        let rules = apriori(
            &classic_dataset(),
            AprioriParams {
                min_support: 0.6,
                min_confidence: 0.1,
                max_len: 2,
            },
        )
        .unwrap();
        // {bread, milk} appears in 3/5 transactions.
        let r = rules
            .iter()
            .find(|r| r.antecedent == vec!["bread".to_string()])
            .unwrap();
        assert!((r.support - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_and_invalid_inputs() {
        assert!(apriori(&[], AprioriParams::default()).unwrap().is_empty());
        assert!(apriori(
            &classic_dataset(),
            AprioriParams {
                min_support: 1.5,
                ..AprioriParams::default()
            }
        )
        .is_err());
    }

    #[test]
    fn duplicate_items_in_transaction_counted_once() {
        let rules = apriori(
            &[tx(&["a", "a", "b"]), tx(&["a", "b"]), tx(&["a", "b"])],
            AprioriParams {
                min_support: 0.9,
                min_confidence: 0.9,
                max_len: 2,
            },
        )
        .unwrap();
        let r = rules
            .iter()
            .find(|r| r.antecedent == vec!["a".to_string()])
            .unwrap();
        assert!((r.support - 1.0).abs() < 1e-9);
    }

    #[test]
    fn classifier_scores_and_thresholds() {
        let rules = apriori(
            &[
                tx(&["dtc_P0300", "hot_climate", "claim"]),
                tx(&["dtc_P0300", "hot_climate", "claim"]),
                tx(&["dtc_P0300", "hot_climate", "claim"]),
                tx(&["dtc_P0300", "cold_climate"]),
                tx(&["dtc_P0420", "hot_climate"]),
            ],
            AprioriParams {
                min_support: 0.3,
                min_confidence: 0.7,
                max_len: 3,
            },
        )
        .unwrap();
        let clf = RuleClassifier::new(&rules, "claim");
        assert!(clf.rule_count() > 0);
        let hit = clf
            .score(&tx(&["dtc_P0300", "hot_climate", "city_driving"]))
            .expect("rule fires");
        assert!(hit >= 0.7);
        assert!(clf.classify(&tx(&["dtc_P0300", "hot_climate"]), 0.7));
        assert!(!clf.classify(&tx(&["dtc_P0420"]), 0.7));
        assert_eq!(clf.score(&tx(&["unrelated"])), None);
    }

    #[test]
    fn max_len_bounds_exploration() {
        let txs: Vec<Vec<String>> = (0..20).map(|_| tx(&["a", "b", "c", "d", "e"])).collect();
        let rules = apriori(
            &txs,
            AprioriParams {
                min_support: 0.5,
                min_confidence: 0.5,
                max_len: 2,
            },
        )
        .unwrap();
        assert!(rules
            .iter()
            .all(|r| r.antecedent.len() + r.consequent.len() <= 2));
    }
}
