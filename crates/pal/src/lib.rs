//! # hana-pal
//!
//! The predictive analysis library (PAL) of the platform, reproducing
//! the §4.1 warranty-claim scenario: **apriori** association-rule mining
//! over diagnostic read-outs stored in Hadoop, a **rule classifier**
//! applying the mined model to new read-outs "in real time in the SAP
//! HANA database", and **k-means** clustering for profile grouping.
//!
//! ```
//! use hana_pal::{apriori, AprioriParams, RuleClassifier};
//!
//! let txs: Vec<Vec<String>> = (0..10).map(|i| {
//!     if i < 8 { vec!["dtc_123".into(), "claim".into()] }
//!     else { vec!["dtc_999".into()] }
//! }).collect();
//! let rules = apriori(&txs, AprioriParams { min_support: 0.3, min_confidence: 0.8, max_len: 2 }).unwrap();
//! let clf = RuleClassifier::new(&rules, "claim");
//! assert!(clf.classify(&["dtc_123".to_string()], 0.8));
//! ```

mod apriori;
mod kmeans;

pub use apriori::{apriori, AprioriParams, AssociationRule, RuleClassifier};
pub use kmeans::{kmeans, KMeansModel};
