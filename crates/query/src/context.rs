//! The planner's injection point.
//!
//! [`PlannerContext`] bundles everything a planning run depends on —
//! catalog, statistics, cost model, resolved knobs — into one value
//! (the old ad-hoc `Planner::new(catalog)` constructors are gone; build
//! through [`PlannerContext::new`]). Knobs are resolved **once**, when
//! the context is built, so a plan sees a consistent snapshot even if
//! the environment changes mid-flight.

use crate::catalog::Catalog;
use crate::cost::CostModel;
use crate::planner::Planner;
use crate::stats::StatsProvider;

/// Knob values resolved at context-construction time.
#[derive(Debug, Clone, Copy)]
pub struct PlannerKnobs {
    /// Broadcast-join build-side row limit — the **fallback** bound the
    /// executor applies at runtime when the planner had no statistics
    /// to decide broadcast-vs-repartition itself.
    pub broadcast_build_row_limit: usize,
}

impl PlannerKnobs {
    /// Resolve every knob through its usual chain (thread override,
    /// then environment, then compiled default).
    pub fn resolved() -> PlannerKnobs {
        PlannerKnobs {
            broadcast_build_row_limit: crate::knobs::broadcast_build_row_limit(),
        }
    }
}

impl Default for PlannerKnobs {
    fn default() -> Self {
        PlannerKnobs::resolved()
    }
}

/// Everything one planning run depends on.
#[derive(Clone, Copy)]
pub struct PlannerContext<'a> {
    /// Table/function resolution.
    pub catalog: &'a dyn Catalog,
    /// Persisted statistics (defaults to [`crate::NoStats`]).
    pub stats: &'a dyn StatsProvider,
    /// Cost constants for federation strategy choice.
    pub cost: CostModel,
    /// Knob snapshot.
    pub knobs: PlannerKnobs,
}

impl<'a> PlannerContext<'a> {
    /// A context over `catalog` with the catalog's own statistics
    /// provider ([`Catalog::stats`], the empty provider unless
    /// overridden), the default cost model, and knobs resolved now.
    pub fn new(catalog: &'a dyn Catalog) -> PlannerContext<'a> {
        PlannerContext {
            catalog,
            stats: catalog.stats(),
            cost: CostModel::default(),
            knobs: PlannerKnobs::resolved(),
        }
    }

    /// Use persisted statistics from `stats`.
    pub fn with_stats(mut self, stats: &'a dyn StatsProvider) -> PlannerContext<'a> {
        self.stats = stats;
        self
    }

    /// Override the cost model (ablation benches).
    pub fn with_cost_model(mut self, cost: CostModel) -> PlannerContext<'a> {
        self.cost = cost;
        self
    }

    /// Override the knob snapshot.
    pub fn with_knobs(mut self, knobs: PlannerKnobs) -> PlannerContext<'a> {
        self.knobs = knobs;
        self
    }

    /// Build the planner.
    pub fn planner(self) -> Planner<'a> {
        Planner::with_context(self)
    }
}
