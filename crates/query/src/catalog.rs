//! The catalog abstraction the planner compiles against.
//!
//! The platform (in `hana-core`) owns the real catalog; the query crate
//! only needs to resolve a name to one of the storage locations of
//! Figure 1: local column/row tables, extended (IQ) tables, hybrid
//! tables spanning both, virtual tables at a remote source, or table
//! functions (virtual MR functions, ESP windows).

use std::sync::Arc;

use parking_lot::RwLock;

use hana_columnar::ColumnTable;
use hana_iq::IqEngine;
use hana_rowstore::RowTable;
use hana_sda::SdaRegistry;
use hana_types::{HanaError, Result, ResultSet, Schema, Value};

/// A table-valued function (virtual MR function, ESP window, …).
pub trait TableFunction: Send + Sync {
    /// The function's output schema.
    fn schema(&self) -> Schema;
    /// Produce the rows.
    fn invoke(&self, args: &[Value]) -> Result<ResultSet>;
}

/// Where a resolved table lives.
#[derive(Clone)]
pub enum TableSource {
    /// In-memory column table.
    Column(Arc<RwLock<ColumnTable>>),
    /// In-memory row table.
    Row(Arc<RwLock<RowTable>>),
    /// Table fully in the extended storage, reached through the named
    /// SDA source (the shielded internal IQ instance).
    Extended {
        /// SDA source name of the IQ instance.
        source: String,
        /// Table name inside the IQ engine.
        remote_table: String,
        /// Schema.
        schema: Schema,
    },
    /// Hybrid table: hot partition in memory, cold partition in IQ.
    Hybrid {
        /// Hot (in-memory) partition.
        hot: Arc<RwLock<ColumnTable>>,
        /// SDA source name of the IQ instance.
        source: String,
        /// Cold partition's table name inside IQ.
        cold_table: String,
        /// The dedicated aging-flag column (§3.1).
        aging_column: String,
    },
    /// Virtual table at an external remote source (Hive, …).
    Virtual {
        /// SDA source name.
        source: String,
        /// Remote table name.
        remote_table: String,
        /// Imported schema.
        schema: Schema,
    },
    /// Partitioned table scaled out across the in-process node
    /// landscape; scans prune partitions and gather over links.
    Distributed(Arc<hana_dist::DistTable>),
}

impl TableSource {
    /// The source's schema.
    pub fn schema(&self) -> Schema {
        match self {
            TableSource::Column(t) => t.read().schema().clone(),
            TableSource::Row(t) => t.read().schema().clone(),
            TableSource::Extended { schema, .. } | TableSource::Virtual { schema, .. } => {
                schema.clone()
            }
            TableSource::Hybrid { hot, .. } => hot.read().schema().clone(),
            TableSource::Distributed(t) => t.schema().clone(),
        }
    }

    /// The remote source name, when the data is (partly) remote.
    pub fn remote_source(&self) -> Option<&str> {
        match self {
            TableSource::Extended { source, .. }
            | TableSource::Hybrid { source, .. }
            | TableSource::Virtual { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Name resolution + access to the SDA registry and the engines.
pub trait Catalog: Send + Sync {
    /// Resolve a table name.
    fn resolve_table(&self, name: &str) -> Result<TableSource>;

    /// Resolve a table function by name.
    fn resolve_function(&self, name: &str) -> Result<Arc<dyn TableFunction>> {
        Err(HanaError::Catalog(format!(
            "unknown table function '{name}'"
        )))
    }

    /// The SDA registry (remote execution + cache).
    fn sda(&self) -> &SdaRegistry;

    /// The IQ engine behind an internal extended-storage source, for
    /// operations SDA does not expose (direct load, admin).
    fn iq_engine(&self, source: &str) -> Result<Arc<IqEngine>>;

    /// Persisted statistics the planner consults for this catalog.
    /// Defaults to the empty provider (every estimate falls back to
    /// plan-time heuristics); the platform catalog overrides this with
    /// its versioned stats registry.
    fn stats(&self) -> &dyn crate::stats::StatsProvider {
        &crate::stats::NO_STATS
    }
}
