//! The plan executor.

use hana_columnar::BLOCK_ROWS;
use hana_exec::ExecContext;
use hana_sda::{RemoteContext, RetryPolicy};
use hana_sql::finish::{finish_query, project_final, sort_rows};
use hana_sql::{evaluate, evaluate_predicate, resolve_column, Expr, JoinKind, Query, TableRef};
use hana_types::{Accumulator, AggFunc, HanaError, Result, ResultSet, Row, Schema, Value};

use crate::catalog::{Catalog, TableSource};
use crate::hash::{FxBuildHasher, FxHashMap};
use crate::plan::{PlanNode, PlanOp};

/// Inputs at or above this many rows are routed through the parallel
/// execution engine (table scans and group-by aggregation); smaller
/// inputs run serially — one default morsel's worth of rows, below
/// which fan-out overhead buys nothing.
pub const PARALLEL_ROW_THRESHOLD: usize = 65_536;

/// Default broadcast-join build-side limit: build sides at or below
/// this many rows are broadcast to the nodes of a distributed probe
/// side (fragment-local join); larger build sides fall back to
/// gathering the probe side at the coordinator. The effective limit is
/// resolved per statement by [`crate::broadcast_build_row_limit`]
/// (thread override, then environment, then this default).
pub const BROADCAST_BUILD_ROW_LIMIT: usize = 16_384;

/// Execute a SQL query against the catalog under snapshot `cid`, using
/// the process-wide [`ExecContext`] for parallel operators.
pub fn execute_query(q: &Query, catalog: &dyn Catalog, cid: u64) -> Result<ResultSet> {
    execute_query_with(ExecContext::global(), q, catalog, cid)
}

/// Execute a SQL query with an explicit execution context (tests pin
/// worker counts this way).
pub fn execute_query_with(
    exec: &ExecContext,
    q: &Query,
    catalog: &dyn Catalog,
    cid: u64,
) -> Result<ResultSet> {
    let plan = {
        let _span = hana_obs::span("plan");
        crate::PlannerContext::new(catalog).planner().plan(q)?
    };
    execute_plan_with(exec, &plan, catalog, cid)
}

/// Render the plan for a query (EXPLAIN).
pub fn explain_query(q: &Query, catalog: &dyn Catalog, cid: u64) -> Result<String> {
    let _ = cid;
    let plan = crate::PlannerContext::new(catalog).planner().plan(q)?;
    Ok(plan.explain())
}

/// Execute a physical plan using the process-wide [`ExecContext`].
pub fn execute_plan(plan: &PlanNode, catalog: &dyn Catalog, cid: u64) -> Result<ResultSet> {
    execute_plan_with(ExecContext::global(), plan, catalog, cid)
}

/// Operator name a plan node reports its span under.
fn span_name(op: &PlanOp) -> String {
    match op {
        PlanOp::ColumnScan { table, .. } => format!("column_scan[{table}]"),
        PlanOp::IndexSeek { table, index, .. } => format!("index_seek[{table}.{index}]"),
        PlanOp::RowScan { table, .. } => format!("row_scan[{table}]"),
        PlanOp::DistScan { table, .. } => format!("dist_scan[{table}]"),
        PlanOp::HybridScan { table, .. } => format!("hybrid_scan[{table}]"),
        PlanOp::RemoteQuery { source, .. } => format!("remote_query[{source}]"),
        PlanOp::FunctionScan { function, .. } => format!("function_scan[{function}]"),
        PlanOp::HashJoin { .. } => "hash_join".into(),
        PlanOp::NestedLoopJoin { .. } => "nested_loop_join".into(),
        PlanOp::SemiJoin { source, .. } => format!("semi_join[{source}]"),
        PlanOp::RelocateJoin { source, .. } => format!("relocate_join[{source}]"),
        PlanOp::Filter { .. } => "filter".into(),
        PlanOp::Aggregate { group_by, .. } => {
            if group_by.is_empty() {
                "aggregate".into()
            } else {
                "group_by".into()
            }
        }
        PlanOp::Finish { .. } => "finish".into(),
    }
}

/// Execute a physical plan with an explicit execution context.
///
/// Every operator runs under an observability span named after the
/// plan node (`column_scan[t]`, `group_by`, `hash_join`, …) carrying
/// output rows/bytes — [`hana_obs::Tracer::profile`] turns the spans of
/// one query into an `EXPLAIN ANALYZE`-style tree. Without an installed
/// tracer the spans are inert.
pub fn execute_plan_with(
    exec: &ExecContext,
    plan: &PlanNode,
    catalog: &dyn Catalog,
    cid: u64,
) -> Result<ResultSet> {
    let span = hana_obs::span(&span_name(&plan.op));
    let rs = execute_plan_inner(exec, plan, catalog, cid, &span)?;
    span.set_rows(rs.rows.len() as u64);
    span.set_bytes(rs.approx_bytes());
    Ok(rs)
}

fn execute_plan_inner(
    exec: &ExecContext,
    plan: &PlanNode,
    catalog: &dyn Catalog,
    cid: u64,
    span: &hana_obs::Span,
) -> Result<ResultSet> {
    match &plan.op {
        PlanOp::ColumnScan { table, preds, .. } => {
            let TableSource::Column(t) = catalog.resolve_table(table)? else {
                return Err(HanaError::Plan(format!("'{table}' is not a column table")));
            };
            let t = t.read();
            let resolved: Vec<(usize, hana_columnar::ColumnPredicate)> = preds
                .iter()
                .map(|(c, p)| t.schema().require(c).map(|i| (i, p.clone())))
                .collect::<Result<_>>()?;
            // Morsel-parallel above the row threshold; bit-identical to
            // the serial scan (see ColumnTable::par_scan_all).
            let hits = if t.row_count() >= PARALLEL_ROW_THRESHOLD {
                span.set_workers(exec.config().workers as u64);
                t.par_scan_all(exec, &resolved, cid)?
            } else {
                t.scan_all(&resolved, cid)?
            };
            span.attr("input_rows", t.row_count() as u64);
            Ok(ResultSet::new(
                plan.schema.clone(),
                t.collect_rows(&hits, &[]),
            ))
        }
        PlanOp::IndexSeek {
            table,
            index,
            prefix,
            range,
            residual,
            ..
        } => {
            let TableSource::Column(t) = catalog.resolve_table(table)? else {
                return Err(HanaError::Plan(format!("'{table}' is not a column table")));
            };
            let t = t.read();
            let prefix_vals: Vec<Value> = prefix.iter().map(|(_, v)| v.clone()).collect();
            let mut hits =
                t.index_seek(index, &prefix_vals, range.as_ref().map(|(_, p)| p), cid)?;
            span.attr("input_rows", t.row_count() as u64);
            span.attr("seek_hits", hits.count() as u64);
            // Residual predicates the index key does not cover are
            // re-checked per hit — seek output stays bit-identical to
            // the equivalent scan.
            if !residual.is_empty() {
                let resolved: Vec<(usize, hana_columnar::ColumnPredicate)> = residual
                    .iter()
                    .map(|(c, p)| t.schema().require(c).map(|i| (i, p.clone())))
                    .collect::<Result<_>>()?;
                let mut filtered = hana_columnar::RowIdBitmap::new(hits.len());
                for row in hits.iter() {
                    if resolved.iter().all(|(i, p)| p.matches(&t.value(row, *i))) {
                        filtered.set(row);
                    }
                }
                hits = filtered;
            }
            Ok(ResultSet::new(
                plan.schema.clone(),
                t.collect_rows(&hits, &[]),
            ))
        }
        PlanOp::RowScan { table, preds, .. } => {
            let TableSource::Row(t) = catalog.resolve_table(table)? else {
                return Err(HanaError::Plan(format!("'{table}' is not a row table")));
            };
            let t = t.read();
            let resolved: Vec<(usize, hana_columnar::ColumnPredicate)> = preds
                .iter()
                .map(|(c, p)| t.schema().require(c).map(|i| (i, p.clone())))
                .collect::<Result<_>>()?;
            let rows = t.scan_filtered(hana_txn::Snapshot::at(cid), |row| {
                resolved.iter().all(|(i, p)| p.matches(&row[*i]))
            });
            Ok(ResultSet::new(plan.schema.clone(), rows))
        }
        PlanOp::DistScan { table, preds, .. } => {
            let TableSource::Distributed(t) = catalog.resolve_table(table)? else {
                return Err(HanaError::Plan(format!(
                    "'{table}' is not a distributed table"
                )));
            };
            let ctx = RemoteContext::snapshot(cid);
            let policy = RetryPolicy::default();
            let (outcome, parts) = t.scan_partitions(preds, cid)?;
            span.attr("partitions_scanned", outcome.scanned);
            span.attr("partitions_pruned", outcome.pruned);
            let rows = hana_dist::gather(&t, &ctx, &policy, parts)?;
            Ok(ResultSet::new(plan.schema.clone(), rows))
        }
        PlanOp::HybridScan { table, preds, .. } => {
            let TableSource::Hybrid {
                hot,
                source,
                cold_table,
                ..
            } = catalog.resolve_table(table)?
            else {
                return Err(HanaError::Plan(format!("'{table}' is not a hybrid table")));
            };
            // Hot partition: local column scan.
            let hot = hot.read();
            let resolved: Vec<(usize, hana_columnar::ColumnPredicate)> = preds
                .iter()
                .map(|(c, p)| hot.schema().require(c).map(|i| (i, p.clone())))
                .collect::<Result<_>>()?;
            let hits = hot.scan_all(&resolved, cid)?;
            let mut rows = hot.collect_rows(&hits, &[]);
            // Cold partition: pushdown scan at the extended store.
            let iq = catalog.iq_engine(&source)?;
            let named: Vec<(String, hana_columnar::ColumnPredicate)> = preds.to_vec();
            let cold = iq.scan(&cold_table, &named, None, cid)?;
            rows.extend(cold.rows);
            Ok(ResultSet::new(plan.schema.clone(), rows))
        }
        PlanOp::RemoteQuery { source, query, .. } => {
            let (rs, _) =
                catalog
                    .sda()
                    .execute_remote(source, query, &RemoteContext::snapshot(cid))?;
            // Positional alignment: trust the planner's schema when the
            // arity matches (names may differ between engines).
            if rs.schema.len() == plan.schema.len() {
                Ok(ResultSet::new(plan.schema.clone(), rs.rows))
            } else {
                Ok(rs)
            }
        }
        PlanOp::FunctionScan { function, args, .. } => {
            let f = catalog.resolve_function(function)?;
            let empty = Schema::default();
            let arg_vals: Vec<Value> = args
                .iter()
                .map(|a| evaluate(a, &empty, &Row::new()))
                .collect::<Result<_>>()?;
            let rs = f.invoke(&arg_vals)?;
            if rs.schema.len() == plan.schema.len() {
                Ok(ResultSet::new(plan.schema.clone(), rs.rows))
            } else {
                Ok(rs)
            }
        }
        PlanOp::HashJoin {
            left,
            right,
            left_key,
            right_key,
            kind,
            dist,
        } => {
            // Distributed fast path: when the probe side is a
            // partitioned scan and the build side is small, broadcast
            // the build rows to the surviving nodes and join
            // fragment-locally, shipping only join results. The planner
            // decides broadcast-vs-repartition from the persisted
            // statistics when it can; `Runtime` defers to the build-side
            // row-limit knob, the pre-statistics behaviour.
            if let PlanOp::DistScan { table, preds, .. } = &left.op {
                if let Ok(TableSource::Distributed(dt)) = catalog.resolve_table(table) {
                    let r = execute_plan_with(exec, right, catalog, cid)?;
                    let broadcast = match dist {
                        crate::DistJoinStrategy::Broadcast => true,
                        crate::DistJoinStrategy::Repartition => false,
                        crate::DistJoinStrategy::Runtime => {
                            r.rows.len() <= crate::knobs::broadcast_build_row_limit()
                        }
                    };
                    if broadcast {
                        span.attr("broadcast_join", 1);
                        return dist_broadcast_join(
                            &dt,
                            &left.schema,
                            preds,
                            &r,
                            left_key,
                            right_key,
                            *kind,
                            &plan.schema,
                            cid,
                            span,
                        );
                    }
                    let l = execute_plan_with(exec, left, catalog, cid)?;
                    return hash_join(&l, &r, left_key, right_key, *kind, &plan.schema);
                }
            }
            let l = execute_plan_with(exec, left, catalog, cid)?;
            let r = execute_plan_with(exec, right, catalog, cid)?;
            hash_join(&l, &r, left_key, right_key, *kind, &plan.schema)
        }
        PlanOp::NestedLoopJoin { left, right, on } => {
            let l = execute_plan_with(exec, left, catalog, cid)?;
            let r = execute_plan_with(exec, right, catalog, cid)?;
            let mut rows = Vec::new();
            for lr in &l.rows {
                for rr in &r.rows {
                    let joined = lr.clone().concat(rr.clone());
                    if evaluate_predicate(on, &plan.schema, &joined)? {
                        rows.push(joined);
                    }
                }
            }
            Ok(ResultSet::new(plan.schema.clone(), rows))
        }
        PlanOp::SemiJoin {
            local,
            local_key,
            source,
            remote_table,
            remote_preds,
            remote_key,
            remote_binding,
        } => {
            let l = execute_plan_with(exec, local, catalog, cid)?;
            // Distinct non-null local join keys.
            let ki = resolve_key(&l.schema, local_key)?;
            let mut keys: Vec<Value> = l
                .rows
                .iter()
                .map(|r| r[ki].clone())
                .filter(|v| !v.is_null())
                .collect();
            keys.sort();
            keys.dedup();
            if keys.is_empty() {
                return Ok(ResultSet::empty(plan.schema.clone()));
            }
            // Remote reduction: the IN-clause variant of §3.1.
            let in_pred = Expr::InList {
                expr: Box::new(col_expr(remote_key)),
                list: keys.into_iter().map(Expr::Literal).collect(),
                negated: false,
            };
            let filter = remote_preds
                .iter()
                .cloned()
                .fold(in_pred, |acc, p| acc.and(p));
            let sub = Query {
                from: Some(TableRef::Named {
                    name: remote_table.clone(),
                    alias: Some(remote_binding.clone()),
                }),
                filter: Some(filter),
                ..Query::default()
            };
            let (reduced, _) =
                catalog
                    .sda()
                    .execute_remote(source, &sub, &RemoteContext::snapshot(cid))?;
            hash_join(
                &l,
                &reduced,
                local_key,
                remote_key,
                JoinKind::Inner,
                &plan.schema,
            )
        }
        PlanOp::RelocateJoin {
            local,
            local_key,
            source,
            remote_table,
            remote_preds,
            remote_key,
            remote_binding,
        } => {
            let l = execute_plan_with(exec, local, catalog, cid)?;
            // Ship the local rows with bare column names.
            let bare: Vec<hana_types::ColumnDef> = l
                .schema
                .columns()
                .iter()
                .map(|c| hana_types::ColumnDef {
                    name: c.name.rsplit('.').next().unwrap_or(&c.name).to_string(),
                    data_type: c.data_type,
                    nullable: true,
                })
                .collect();
            let ship_schema = Schema::new(bare)?;
            let rctx = RemoteContext::snapshot(cid);
            let adapter = catalog.sda().source(source)?.adapter;
            let temp = adapter.create_temp_table(ship_schema, &l.rows, &rctx)?;
            let bare_key = local_key.rsplit('.').next().unwrap_or(local_key);
            let sub = Query {
                from: Some(TableRef::Named {
                    name: temp.clone(),
                    alias: None,
                }),
                joins: vec![hana_sql::JoinClause {
                    kind: JoinKind::Inner,
                    table: TableRef::Named {
                        name: remote_table.clone(),
                        alias: Some(remote_binding.clone()),
                    },
                    on: Expr::Binary {
                        left: Box::new(Expr::col(bare_key)),
                        op: hana_sql::BinOp::Eq,
                        right: Box::new(col_expr(remote_key)),
                    },
                }],
                filter: remote_preds.iter().cloned().reduce(|a, b| a.and(b)),
                ..Query::default()
            };
            let (rs, _) = catalog.sda().execute_remote(source, &sub, &rctx)?;
            let _ = adapter.drop_remote_table(&temp);
            // Positional alignment: temp columns then remote columns.
            if rs.schema.len() == plan.schema.len() {
                Ok(ResultSet::new(plan.schema.clone(), rs.rows))
            } else {
                Err(HanaError::Plan(format!(
                    "relocated join returned {} columns, expected {}",
                    rs.schema.len(),
                    plan.schema.len()
                )))
            }
        }
        PlanOp::Filter { input, pred } => {
            let inp = execute_plan_with(exec, input, catalog, cid)?;
            let rows = filter_rows(pred, &inp.schema, inp.rows, span)?;
            Ok(ResultSet::new(plan.schema.clone(), rows))
        }
        PlanOp::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // Distributed fast path: aggregate each partition on its
            // node and ship only the partial aggregate states — the
            // shuffle carries groups, not rows.
            if let Some(rs) =
                try_distributed_group_by(&plan.schema, input, group_by, aggs, catalog, cid, span)?
            {
                return Ok(rs);
            }
            // Late-materialization fast path: group-by over a single
            // dictionary-encoded column keys accumulators on packed
            // vids and decodes each distinct group's value once.
            if let Some(rs) = try_fused_group_by(
                exec,
                &plan.schema,
                input,
                group_by,
                aggs,
                catalog,
                cid,
                span,
            )? {
                return Ok(rs);
            }
            let inp = execute_plan_with(exec, input, catalog, cid)?;
            // Above the threshold, aggregate row chunks into partial
            // hash tables on the pool and merge the accumulators
            // (partial aggregation, MapReduce-combiner style).
            let mut groups: FxHashMap<Vec<Value>, Vec<Accumulator>> =
                if inp.rows.len() >= PARALLEL_ROW_THRESHOLD {
                    let chunk_rows = exec.config().aligned_morsel_rows();
                    let chunks: Vec<&[Row]> = inp.rows.chunks(chunk_rows).collect();
                    if let Some(q) = hana_exec::current_query_metrics() {
                        q.add_morsels(chunks.len() as u64);
                        q.add_tasks(chunks.len() as u64);
                    }
                    span.set_workers(exec.config().workers as u64);
                    span.attr("partials", chunks.len() as u64);
                    let partials = exec.scatter(chunks, |rows| {
                        aggregate_chunk(rows, group_by, aggs, &inp.schema)
                    });
                    let mut merged: FxHashMap<Vec<Value>, Vec<Accumulator>> = FxHashMap::default();
                    for partial in partials {
                        for (key, accs) in partial? {
                            match merged.entry(key) {
                                std::collections::hash_map::Entry::Occupied(mut e) => {
                                    for (into, from) in e.get_mut().iter_mut().zip(&accs) {
                                        into.merge(from);
                                    }
                                }
                                std::collections::hash_map::Entry::Vacant(e) => {
                                    e.insert(accs);
                                }
                            }
                        }
                    }
                    merged
                } else {
                    aggregate_chunk(&inp.rows, group_by, aggs, &inp.schema)?
                };
            if groups.is_empty() && group_by.is_empty() {
                groups.insert(
                    Vec::new(),
                    aggs.iter().map(|(f, _)| f.accumulator()).collect(),
                );
            }
            let mut rows: Vec<Row> = groups
                .into_iter()
                .map(|(mut key, accs)| {
                    key.extend(accs.iter().map(|a| a.finish()));
                    Row(key)
                })
                .collect();
            rows.sort();
            Ok(ResultSet::new(plan.schema.clone(), rows))
        }
        PlanOp::Finish { input, query } => {
            let inp = execute_plan_with(exec, input, catalog, cid)?;
            if let Some(rs) = try_vm_finish(&inp, query, span)? {
                return Ok(rs);
            }
            // When the child already satisfied the whole query remotely,
            // the planner does not emit Finish; here the epilogue runs.
            let (rows, schema) = finish_query(inp.rows, &inp.schema, query)?;
            Ok(ResultSet::new(schema, rows))
        }
    }
}

/// Apply a filter predicate over materialized rows.
///
/// When expression compilation is on and the predicate lowers to
/// bytecode, rows run through the VM one [`BLOCK_ROWS`] block at a
/// time. Block-level evaluation can raise an error the tree-walk's
/// per-row short-circuit would have skipped (see [`crate::vm`]), and a
/// predicate may legally evaluate to a non-boolean the tree-walk
/// reports with its own message — any such block falls back to the
/// row-at-a-time evaluator, which is the authority for both results
/// and errors.
fn filter_rows(
    pred: &Expr,
    schema: &Schema,
    rows: Vec<Row>,
    span: &hana_obs::Span,
) -> Result<Vec<Row>> {
    let prog = if crate::knobs::compiled_expressions() {
        crate::compile::compile_expr(pred, schema)
    } else {
        None
    };
    let Some(prog) = prog else {
        let mut out = Vec::with_capacity(rows.len());
        for r in rows {
            if evaluate_predicate(pred, schema, &r)? {
                out.push(r);
            }
        }
        return Ok(out);
    };
    let mut keep = vec![false; rows.len()];
    let mut regs: Vec<Vec<Value>> = Vec::new();
    let mut compiled_blocks = 0u64;
    for (bi, block) in rows.chunks(BLOCK_ROWS).enumerate() {
        let base = bi * BLOCK_ROWS;
        let vm_ok = prog.run_block(block, &mut regs).is_ok()
            && regs[prog.result]
                .iter()
                .all(|v| matches!(v, Value::Bool(_) | Value::Null));
        if vm_ok {
            compiled_blocks += 1;
            for (i, v) in regs[prog.result].iter().enumerate() {
                keep[base + i] = *v == Value::Bool(true);
            }
        } else {
            for (i, r) in block.iter().enumerate() {
                keep[base + i] = evaluate_predicate(pred, schema, r)?;
            }
        }
    }
    span.attr("compiled_blocks", compiled_blocks);
    let mut out = Vec::with_capacity(rows.len());
    for (r, k) in rows.into_iter().zip(keep) {
        if k {
            out.push(r);
        }
    }
    Ok(out)
}

/// The Finish epilogue through the VM: when the query has no
/// aggregation and no HAVING and every select item compiles, project
/// each block with one bytecode program per output column, then apply
/// DISTINCT / ORDER BY / LIMIT exactly as [`finish_query`] would.
/// Returns `Ok(None)` when the shape does not fit and the tree-walking
/// epilogue should run instead.
fn try_vm_finish(inp: &ResultSet, q: &Query, span: &hana_obs::Span) -> Result<Option<ResultSet>> {
    if !crate::knobs::compiled_expressions() || q.select.is_empty() {
        return Ok(None);
    }
    let aggregated = !q.group_by.is_empty()
        || q.having.is_some()
        || q.select.iter().any(|s| s.expr.contains_aggregate());
    if aggregated {
        return Ok(None);
    }
    let progs: Option<Vec<crate::vm::Program>> = q
        .select
        .iter()
        .map(|s| crate::compile::compile_expr(&s.expr, &inp.schema))
        .collect();
    let Some(progs) = progs else {
        return Ok(None);
    };
    span.attr("compiled", 1);
    // The output schema from the shared projection code, so names,
    // de-duplication and inferred types match the tree-walk path.
    let (_, out_schema) = project_final(&[], &inp.schema, q)?;
    let mut rows: Vec<Row> = Vec::with_capacity(inp.rows.len());
    let mut regs: Vec<Vec<Value>> = Vec::new();
    for block in inp.rows.chunks(BLOCK_ROWS) {
        let base = rows.len();
        for _ in 0..block.len() {
            rows.push(Row(vec![Value::Null; progs.len()]));
        }
        let mut vm_ok = true;
        for (ci, p) in progs.iter().enumerate() {
            if p.run_block(block, &mut regs).is_err() {
                vm_ok = false;
                break;
            }
            for i in 0..block.len() {
                rows[base + i].0[ci] = std::mem::replace(&mut regs[p.result][i], Value::Null);
            }
        }
        if !vm_ok {
            // Same per-block fallback as the filter: the tree-walk is
            // the authority for rows the VM cannot evaluate.
            rows.truncate(base);
            for r in block {
                let mut vals = Vec::with_capacity(q.select.len());
                for s in &q.select {
                    vals.push(evaluate(&s.expr, &inp.schema, r)?);
                }
                rows.push(Row(vals));
            }
        }
    }
    if q.distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| seen.insert(r.clone()));
    }
    if !q.order_by.is_empty() {
        sort_rows(&mut rows, &out_schema, &q.order_by)?;
    }
    if let Some(n) = q.limit {
        rows.truncate(n);
    }
    Ok(Some(ResultSet::new(out_schema, rows)))
}

/// Feed one row into a group's accumulators.
fn accumulate_row(
    accs: &mut [Accumulator],
    aggs: &[(AggFunc, Option<Expr>)],
    schema: &Schema,
    r: &Row,
) -> Result<()> {
    for (acc, (_, arg)) in accs.iter_mut().zip(aggs) {
        match arg {
            Some(e) => acc.add(&evaluate(e, schema, r)?),
            None => acc.add(&Value::Null), // COUNT(*)
        }
    }
    Ok(())
}

/// Group-and-accumulate one chunk of rows into a partial hash table.
///
/// The table is FxHash-keyed and probed with a reused scratch key
/// (`Vec<Value>: Borrow<[Value]>`), so the per-row hot path does one
/// lookup and zero allocations; the key is only cloned into the table
/// once per distinct group.
fn aggregate_chunk(
    rows: &[Row],
    group_by: &[Expr],
    aggs: &[(AggFunc, Option<Expr>)],
    schema: &Schema,
) -> Result<FxHashMap<Vec<Value>, Vec<Accumulator>>> {
    let mut groups: FxHashMap<Vec<Value>, Vec<Accumulator>> = FxHashMap::default();
    let mut key: Vec<Value> = Vec::with_capacity(group_by.len());
    for r in rows {
        key.clear();
        for g in group_by {
            key.push(evaluate(g, schema, r)?);
        }
        if let Some(accs) = groups.get_mut(key.as_slice()) {
            accumulate_row(accs, aggs, schema, r)?;
        } else {
            let mut accs: Vec<Accumulator> = aggs.iter().map(|(f, _)| f.accumulator()).collect();
            accumulate_row(&mut accs, aggs, schema, r)?;
            groups.insert(key.clone(), accs);
        }
    }
    Ok(groups)
}

/// Fused, late-materializing group-by: `GROUP BY c` directly over a
/// column-table scan, where every aggregate argument is a plain column.
///
/// Instead of materializing each hit row and hashing a `Vec<Value>`
/// key per row, the group key stays a packed dictionary vid all the way
/// through accumulation: main-fragment vids are bulk-decoded one
/// [`BLOCK_ROWS`] block at a time, accumulators live in dense
/// per-fragment tables indexed by vid, and group `Value`s are decoded
/// once per *distinct group* at finish (then main/delta groups merge by
/// value). Returns `Ok(None)` when the plan shape does not fit, and the
/// caller falls back to the generic row-at-a-time aggregation.
#[allow(clippy::too_many_arguments)]
fn try_fused_group_by(
    exec: &ExecContext,
    out_schema: &Schema,
    input: &PlanNode,
    group_by: &[Expr],
    aggs: &[(AggFunc, Option<Expr>)],
    catalog: &dyn Catalog,
    cid: u64,
    span: &hana_obs::Span,
) -> Result<Option<ResultSet>> {
    let PlanOp::ColumnScan { table, preds, .. } = &input.op else {
        return Ok(None);
    };
    let [Expr::Column { qualifier, name }] = group_by else {
        return Ok(None);
    };
    let Ok(TableSource::Column(t)) = catalog.resolve_table(table) else {
        return Ok(None);
    };
    let t = t.read();
    // The scan emits all table columns in table order; if the plan
    // schema disagrees, positions cannot be trusted — fall back.
    if input.schema.len() != t.schema().len() {
        return Ok(None);
    }
    let Ok(group_col) = resolve_column(&input.schema, qualifier.as_deref(), name) else {
        return Ok(None);
    };
    let mut agg_cols: Vec<Option<usize>> = Vec::with_capacity(aggs.len());
    for (_, arg) in aggs {
        match arg {
            None => agg_cols.push(None),
            Some(Expr::Column { qualifier, name }) => {
                match resolve_column(&input.schema, qualifier.as_deref(), name) {
                    Ok(i) => agg_cols.push(Some(i)),
                    Err(_) => return Ok(None),
                }
            }
            Some(_) => return Ok(None),
        }
    }
    span.attr("fused", 1);

    // The scan itself, reported under its usual operator span so
    // profiles keep the query -> group_by -> column_scan[t] shape.
    let resolved: Vec<(usize, hana_columnar::ColumnPredicate)> = preds
        .iter()
        .map(|(c, p)| t.schema().require(c).map(|i| (i, p.clone())))
        .collect::<Result<_>>()?;
    let scan_span = hana_obs::span(&span_name(&input.op));
    let hits = if t.row_count() >= PARALLEL_ROW_THRESHOLD {
        scan_span.set_workers(exec.config().workers as u64);
        t.par_scan_all(exec, &resolved, cid)?
    } else {
        t.scan_all(&resolved, cid)?
    };
    scan_span.attr("input_rows", t.row_count() as u64);
    scan_span.set_rows(hits.count() as u64);
    drop(scan_span);

    // Dense vid-indexed accumulator tables, one per fragment (slot 0 is
    // the NULL group).
    let main_rows = t.main_rows();
    let mcol = t.main_column(group_col);
    let codec = mcol.codec();
    let main_dict = mcol.dictionary();
    let dcol = t.delta_column(group_col);
    let delta_dict = dcol.dictionary();
    let delta_vids = dcol.vids();
    let mut main_groups: Vec<Option<Vec<Accumulator>>> = vec![None; main_dict.len() + 1];
    let mut delta_groups: Vec<Option<Vec<Accumulator>>> = vec![None; delta_dict.len() + 1];

    let mut block_buf = [0u32; BLOCK_ROWS];
    let mut cur_block = usize::MAX;
    for row in hits.iter() {
        let (fragment, vid) = if row < main_rows {
            let block = row / BLOCK_ROWS;
            if block != cur_block {
                codec.unpack_block(block, &mut block_buf);
                cur_block = block;
            }
            (&mut main_groups, block_buf[row % BLOCK_ROWS])
        } else {
            (&mut delta_groups, delta_vids[row - main_rows])
        };
        let accs = fragment[vid as usize]
            .get_or_insert_with(|| aggs.iter().map(|(f, _)| f.accumulator()).collect());
        for (acc, col) in accs.iter_mut().zip(&agg_cols) {
            match col {
                Some(c) => acc.add(&t.value(row, *c)),
                None => acc.add(&Value::Null), // COUNT(*)
            }
        }
    }

    // Materialize each distinct group once; main and delta fragments
    // dictionary-encode independently, so merge by decoded value.
    let mut by_value: FxHashMap<Value, Vec<Accumulator>> = FxHashMap::default();
    for (vid, accs) in main_groups.into_iter().enumerate() {
        if let Some(accs) = accs {
            by_value.insert(main_dict.decode(vid as u32), accs);
        }
    }
    for (vid, accs) in delta_groups.into_iter().enumerate() {
        if let Some(accs) = accs {
            match by_value.entry(delta_dict.decode(vid as u32)) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (into, from) in e.get_mut().iter_mut().zip(&accs) {
                        into.merge(from);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(accs);
                }
            }
        }
    }
    let mut rows: Vec<Row> = by_value
        .into_iter()
        .map(|(key, accs)| {
            let mut vals = Vec::with_capacity(1 + accs.len());
            vals.push(key);
            vals.extend(accs.iter().map(|a| a.finish()));
            Row(vals)
        })
        .collect();
    rows.sort();
    Ok(Some(ResultSet::new(out_schema.clone(), rows)))
}

/// Partition-wise partial aggregation over a distributed scan.
///
/// Each node aggregates its fragment locally; only the partial
/// accumulator states cross the links (under an
/// `exchange[partial_agg]` span and the `hana_dist_rows_shuffled_total`
/// counter, where "rows" are groups). The coordinator merges the
/// partials and finishes — byte-identical to gathering all rows first
/// because accumulator merge is the same algebra the parallel
/// aggregation path already relies on. Returns `Ok(None)` when the
/// input is not a distributed scan.
fn try_distributed_group_by(
    out_schema: &Schema,
    input: &PlanNode,
    group_by: &[Expr],
    aggs: &[(AggFunc, Option<Expr>)],
    catalog: &dyn Catalog,
    cid: u64,
    span: &hana_obs::Span,
) -> Result<Option<ResultSet>> {
    let PlanOp::DistScan { table, preds, .. } = &input.op else {
        return Ok(None);
    };
    let Ok(TableSource::Distributed(t)) = catalog.resolve_table(table) else {
        return Ok(None);
    };
    span.attr("distributed", 1);
    let ctx = RemoteContext::snapshot(cid);
    let policy = RetryPolicy::default();

    // The scan itself, reported under its usual operator span so
    // profiles keep the query -> group_by -> dist_scan[t] shape.
    let scan_span = hana_obs::span(&span_name(&input.op));
    let (outcome, parts) = t.scan_partitions(preds, cid)?;
    scan_span.attr("partitions_scanned", outcome.scanned);
    scan_span.attr("partitions_pruned", outcome.pruned);
    scan_span.set_rows(parts.iter().map(|(_, r)| r.len() as u64).sum());
    drop(scan_span);

    let xspan = hana_obs::span("exchange[partial_agg]");
    xspan.attr("nodes", parts.len() as u64);
    let mut merged: FxHashMap<Vec<Value>, Vec<Accumulator>> = FxHashMap::default();
    let mut shipped_groups = 0u64;
    let mut shipped_bytes = 0u64;
    for (node, rows) in parts {
        let partial = aggregate_chunk(&rows, group_by, aggs, &input.schema)?;
        let items: Vec<(Vec<Value>, Vec<Accumulator>)> = partial.into_iter().collect();
        let (delivered, bytes) = hana_dist::transfer_accounted(
            t.link(node),
            &ctx,
            &policy,
            &format!("partial_agg[{}#p{node}]", t.name()),
            items,
            |(key, accs)| {
                key.iter().map(|v| v.storage_bytes() as u64).sum::<u64>() + 16 * accs.len() as u64
            },
        )?;
        shipped_groups += delivered.len() as u64;
        shipped_bytes += bytes;
        for (key, accs) in delivered {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (into, from) in e.get_mut().iter_mut().zip(&accs) {
                        into.merge(from);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(accs);
                }
            }
        }
    }
    xspan.set_rows(shipped_groups);
    xspan.set_bytes(shipped_bytes);
    drop(xspan);

    if merged.is_empty() && group_by.is_empty() {
        merged.insert(
            Vec::new(),
            aggs.iter().map(|(f, _)| f.accumulator()).collect(),
        );
    }
    let mut rows: Vec<Row> = merged
        .into_iter()
        .map(|(mut key, accs)| {
            key.extend(accs.iter().map(|a| a.finish()));
            Row(key)
        })
        .collect();
    rows.sort();
    Ok(Some(ResultSet::new(out_schema.clone(), rows)))
}

/// Broadcast-build distributed hash join: replicate the build rows to
/// every surviving node of the partitioned probe side, join each
/// fragment locally, gather only the join results.
#[allow(clippy::too_many_arguments)]
fn dist_broadcast_join(
    dt: &hana_dist::DistTable,
    left_schema: &Schema,
    preds: &[(String, hana_columnar::ColumnPredicate)],
    r: &ResultSet,
    left_key: &str,
    right_key: &str,
    kind: JoinKind,
    out_schema: &Schema,
    cid: u64,
    span: &hana_obs::Span,
) -> Result<ResultSet> {
    let ctx = RemoteContext::snapshot(cid);
    let policy = RetryPolicy::default();
    let (outcome, parts) = dt.scan_partitions(preds, cid)?;
    span.attr("partitions_scanned", outcome.scanned);
    span.attr("partitions_pruned", outcome.pruned);
    let targets: Vec<usize> = parts.iter().map(|(n, _)| *n).collect();
    let copies = hana_dist::broadcast(dt, &ctx, &policy, &r.rows, &targets)?;
    let mut joined_parts = Vec::with_capacity(parts.len());
    for ((node, rows), (_, build)) in parts.into_iter().zip(copies) {
        let l = ResultSet::new(left_schema.clone(), rows);
        let b = ResultSet::new(r.schema.clone(), build);
        let out = hash_join(&l, &b, left_key, right_key, kind, out_schema)?;
        joined_parts.push((node, out.rows));
    }
    let rows = hana_dist::gather(dt, &ctx, &policy, joined_parts)?;
    Ok(ResultSet::new(out_schema.clone(), rows))
}

/// Build a column expression from a possibly qualified key name.
fn col_expr(key: &str) -> Expr {
    match key.split_once('.') {
        Some((q, n)) => Expr::Column {
            qualifier: Some(q.to_string()),
            name: n.to_string(),
        },
        None => Expr::col(key),
    }
}

fn resolve_key(schema: &Schema, key: &str) -> Result<usize> {
    let (q, n) = match key.split_once('.') {
        Some((q, n)) => (Some(q), n),
        None => (None, key),
    };
    resolve_column(schema, q, n)
}

fn hash_join(
    l: &ResultSet,
    r: &ResultSet,
    left_key: &str,
    right_key: &str,
    kind: JoinKind,
    out_schema: &Schema,
) -> Result<ResultSet> {
    let li = resolve_key(&l.schema, left_key)?;
    let ri = resolve_key(&r.schema, right_key)?;
    let mut build: FxHashMap<&Value, Vec<usize>> =
        FxHashMap::with_capacity_and_hasher(r.rows.len(), FxBuildHasher::default());
    for (i, row) in r.rows.iter().enumerate() {
        if !row[ri].is_null() {
            build.entry(&row[ri]).or_default().push(i);
        }
    }
    let mut rows = Vec::with_capacity(l.rows.len());
    for lr in &l.rows {
        match build.get(&lr[li]) {
            Some(matches) => {
                for &i in matches {
                    rows.push(lr.clone().concat(r.rows[i].clone()));
                }
            }
            None => {
                if kind == JoinKind::LeftOuter {
                    let total = lr.values().len() + r.schema.len();
                    let mut vals = Vec::with_capacity(total);
                    vals.extend_from_slice(lr.values());
                    vals.resize(total, Value::Null);
                    rows.push(Row(vals));
                }
            }
        }
    }
    Ok(ResultSet::new(out_schema.clone(), rows))
}
