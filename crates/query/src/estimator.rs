//! Statistics-backed cardinality estimation.
//!
//! The planner asks these helpers first; only when no synopsis exists
//! for a table does it fall back to the plan-time heuristics (rebuilt
//! histograms, default selectivities). Every estimate returned here is
//! clamped to `[0, row_count]` by the underlying `ColumnStats`
//! estimators.

use hana_columnar::{ColumnPredicate, TableStatistics};

/// Estimated output rows of a scan with the given pushed-down
/// predicates, from a persisted synopsis.
pub(crate) fn scan_estimate(stats: &TableStatistics, preds: &[(String, ColumnPredicate)]) -> f64 {
    let mut est = stats.row_count as f64;
    for (col, pred) in preds {
        let bare = col.rsplit('.').next().unwrap_or(col);
        match stats.column(bare) {
            Some(c) => est *= c.selectivity(pred),
            None => est *= pred.default_selectivity(),
        }
    }
    est.max(if preds.is_empty() { 1.0 } else { 0.0 })
}

/// Estimated output rows of a distributed scan: per-partition synopses
/// are filtered by the prune `mask` (true = partition survives) and
/// estimated independently, so partition-skewed data is priced
/// per-fragment rather than by a uniform fraction.
pub(crate) fn dist_scan_estimate(
    parts: &[TableStatistics],
    mask: &[bool],
    preds: &[(String, ColumnPredicate)],
) -> f64 {
    let est: f64 = parts
        .iter()
        .zip(mask.iter().copied().chain(std::iter::repeat(true)))
        .filter(|(_, keep)| *keep)
        .map(|(p, _)| scan_estimate(p, preds))
        .sum();
    est.max(1.0)
}

/// Distinct-count of a (possibly binding-qualified) key column, if the
/// synopsis knows it.
pub(crate) fn key_ndv(stats: &TableStatistics, key: &str) -> Option<f64> {
    let bare = key.rsplit('.').next().unwrap_or(key);
    stats.column_distinct(bare)
}

/// Estimated equi-join output: `|L| * |R| / max(ndv_l, ndv_r)`, the
/// textbook containment assumption; falls back to `min(|L|, |R|)` when
/// neither side's key distinct-count is known.
pub(crate) fn join_out(
    left_rows: f64,
    right_rows: f64,
    left_ndv: Option<f64>,
    right_ndv: Option<f64>,
) -> f64 {
    let ndv = left_ndv.unwrap_or(0.0).max(right_ndv.unwrap_or(0.0));
    if ndv > 0.0 {
        (left_rows * right_rows / ndv).max(1.0)
    } else {
        left_rows.min(right_rows).max(1.0)
    }
}
