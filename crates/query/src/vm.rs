//! Block-vectorized bytecode interpreter for SQL expressions.
//!
//! The tree-walking evaluator in `hana-sql` re-dispatches on the `Expr`
//! enum and re-resolves column names *per row*. For the OLTP hot path
//! (a residual filter or a projection applied to thousands of rows)
//! that dispatch dominates. [`compile`](crate::compile::compile_expr)
//! lowers an expression tree once into flat register bytecode — columns
//! resolved to positions, constants materialized, short-circuit jumps
//! laid out — and this module executes it **one opcode per block** of
//! up to [`BLOCK_ROWS`](hana_columnar::BLOCK_ROWS) rows: each
//! instruction loops over the block before the interpreter advances,
//! so the per-row cost is the operation itself, not the dispatch.
//!
//! Semantics are identical to `hana_sql::evaluate` with one deliberate
//! exception: tree-walk `AND`/`OR` short-circuits *per row*, while the
//! VM short-circuits *per block* ([`Op::JumpIfAllFalse`] /
//! [`Op::JumpIfAllTrue`]). A block that does not short-circuit
//! evaluates both sides for every row, which can raise an error the
//! tree-walk would have skipped (e.g. a division by zero guarded by
//! the left conjunct). Callers therefore treat any VM error as "this
//! block is not VM-able" and re-run that block through the tree-walk,
//! which either succeeds row-by-row or raises the authoritative error.

use std::cmp::Ordering;

use hana_types::{HanaError, Result, Row, Value};

/// A register index. Registers are column vectors of block length.
pub type Reg = usize;

/// Arithmetic opcodes (delegate to the checked `Value` arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Comparison opcodes (three-valued over [`Value::sql_cmp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One bytecode instruction. Every instruction processes the whole
/// block before the next dispatches; `dst` registers are always freshly
/// allocated by the compiler, so an instruction never reads a register
/// it writes.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Copy a column of the input rows into `dst`.
    LoadCol {
        /// Input column position (resolved at compile time).
        col: usize,
        /// Destination register.
        dst: Reg,
    },
    /// Fill `dst` with a constant.
    LoadConst {
        /// The constant.
        val: Value,
        /// Destination register.
        dst: Reg,
    },
    /// Arithmetic negation (`0 - src`, matching the tree-walk).
    Neg {
        /// Operand register.
        src: Reg,
        /// Destination register.
        dst: Reg,
    },
    /// Boolean NOT; null passes through, non-boolean errors.
    Not {
        /// Operand register.
        src: Reg,
        /// Destination register.
        dst: Reg,
    },
    /// `lhs ∘ rhs` for `+ - * /`.
    Arith {
        /// The operator.
        op: ArithOp,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
        /// Destination register.
        dst: Reg,
    },
    /// `lhs ∘ rhs` for comparisons; incomparable values yield null.
    Cmp {
        /// The operator.
        op: CmpOp,
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
        /// Destination register.
        dst: Reg,
    },
    /// Three-valued AND.
    And {
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
        /// Destination register.
        dst: Reg,
    },
    /// Three-valued OR.
    Or {
        /// Left operand register.
        lhs: Reg,
        /// Right operand register.
        rhs: Reg,
        /// Destination register.
        dst: Reg,
    },
    /// `src [NOT] BETWEEN lo AND hi` (inclusive, null-propagating).
    Between {
        /// Probe register.
        src: Reg,
        /// Lower-bound register.
        lo: Reg,
        /// Upper-bound register.
        hi: Reg,
        /// NOT given.
        negated: bool,
        /// Destination register.
        dst: Reg,
    },
    /// `src [NOT] IN (consts…)` against a constant probe list.
    InProbe {
        /// Probe register.
        src: Reg,
        /// The constant list.
        list: Vec<Value>,
        /// NOT given.
        negated: bool,
        /// Destination register.
        dst: Reg,
    },
    /// `src [NOT] LIKE pattern`.
    Like {
        /// Probe register.
        src: Reg,
        /// Pattern with `%`/`_` wildcards.
        pattern: String,
        /// NOT given.
        negated: bool,
        /// Destination register.
        dst: Reg,
    },
    /// `src IS [NOT] NULL`.
    IsNull {
        /// Probe register.
        src: Reg,
        /// NOT given.
        negated: bool,
        /// Destination register.
        dst: Reg,
    },
    /// Block-level AND short-circuit: when every row of `src` is
    /// `false`, copy `src` into `dst` (the conjunction *is* all-false)
    /// and jump past the right-hand side.
    JumpIfAllFalse {
        /// Left-conjunct register.
        src: Reg,
        /// The AND's destination register.
        dst: Reg,
        /// Instruction index to resume at when taken.
        target: usize,
    },
    /// Block-level OR short-circuit: when every row of `src` is `true`,
    /// copy `src` into `dst` and jump past the right-hand side.
    JumpIfAllTrue {
        /// Left-disjunct register.
        src: Reg,
        /// The OR's destination register.
        dst: Reg,
        /// Instruction index to resume at when taken.
        target: usize,
    },
}

/// A compiled expression: flat bytecode plus the register holding the
/// per-row result.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The instructions, executed in order (subject to jumps).
    pub ops: Vec<Op>,
    /// Number of registers the program uses.
    pub regs: usize,
    /// Register holding the expression's value after execution.
    pub result: Reg,
}

impl Program {
    /// Execute over one block of rows. `regs` is caller-owned scratch
    /// reused across blocks (resized/cleared here); after `Ok(())`,
    /// `regs[self.result][i]` is the expression's value for `rows[i]`.
    pub fn run_block(&self, rows: &[Row], regs: &mut Vec<Vec<Value>>) -> Result<()> {
        let n = rows.len();
        regs.resize_with(self.regs, Vec::new);
        for r in regs.iter_mut() {
            r.clear();
            r.resize(n, Value::Null);
        }
        // The compiler allocates a fresh destination register per node,
        // so `dst` never aliases a source register: each arm below takes
        // the destination vector out of `regs` (cheap pointer swap),
        // fills it by zipping the source registers, and puts it back. An
        // early `?` leaves the taken register empty; the resize at the
        // top of the next call restores it.
        let mut pc = 0;
        while pc < self.ops.len() {
            match &self.ops[pc] {
                Op::LoadCol { col, dst } => {
                    for (i, row) in rows.iter().enumerate() {
                        regs[*dst][i] = row[*col].clone();
                    }
                }
                Op::LoadConst { val, dst } => {
                    regs[*dst].fill(val.clone());
                }
                Op::Neg { src, dst } => {
                    let mut out = std::mem::take(&mut regs[*dst]);
                    for (o, v) in out.iter_mut().zip(&regs[*src]) {
                        *o = Value::Int(0).sub(v)?;
                    }
                    regs[*dst] = out;
                }
                Op::Not { src, dst } => {
                    let mut out = std::mem::take(&mut regs[*dst]);
                    for (o, v) in out.iter_mut().zip(&regs[*src]) {
                        *o = match v {
                            Value::Null => Value::Null,
                            Value::Bool(b) => Value::Bool(!b),
                            other => {
                                return Err(HanaError::Execution(format!(
                                    "NOT applied to non-boolean {other}"
                                )))
                            }
                        };
                    }
                    regs[*dst] = out;
                }
                Op::Arith { op, lhs, rhs, dst } => {
                    let mut out = std::mem::take(&mut regs[*dst]);
                    for (o, (l, r)) in out.iter_mut().zip(regs[*lhs].iter().zip(&regs[*rhs])) {
                        *o = match op {
                            ArithOp::Add => l.add(r)?,
                            ArithOp::Sub => l.sub(r)?,
                            ArithOp::Mul => l.mul(r)?,
                            ArithOp::Div => l.div(r)?,
                        };
                    }
                    regs[*dst] = out;
                }
                Op::Cmp { op, lhs, rhs, dst } => {
                    let mut out = std::mem::take(&mut regs[*dst]);
                    for (o, (l, r)) in out.iter_mut().zip(regs[*lhs].iter().zip(&regs[*rhs])) {
                        *o = match l.sql_cmp(r) {
                            None => Value::Null,
                            Some(ord) => Value::Bool(match op {
                                CmpOp::Eq => ord == Ordering::Equal,
                                CmpOp::Ne => ord != Ordering::Equal,
                                CmpOp::Lt => ord == Ordering::Less,
                                CmpOp::Le => ord != Ordering::Greater,
                                CmpOp::Gt => ord == Ordering::Greater,
                                CmpOp::Ge => ord != Ordering::Less,
                            }),
                        };
                    }
                    regs[*dst] = out;
                }
                Op::And { lhs, rhs, dst } => {
                    let mut out = std::mem::take(&mut regs[*dst]);
                    for (o, (l, r)) in out.iter_mut().zip(regs[*lhs].iter().zip(&regs[*rhs])) {
                        *o = match (l.as_bool(), r.as_bool()) {
                            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                            (Some(true), Some(true)) => Value::Bool(true),
                            _ => Value::Null,
                        };
                    }
                    regs[*dst] = out;
                }
                Op::Or { lhs, rhs, dst } => {
                    let mut out = std::mem::take(&mut regs[*dst]);
                    for (o, (l, r)) in out.iter_mut().zip(regs[*lhs].iter().zip(&regs[*rhs])) {
                        *o = match (l.as_bool(), r.as_bool()) {
                            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                            (Some(false), Some(false)) => Value::Bool(false),
                            _ => Value::Null,
                        };
                    }
                    regs[*dst] = out;
                }
                Op::Between {
                    src,
                    lo,
                    hi,
                    negated,
                    dst,
                } => {
                    let mut out = std::mem::take(&mut regs[*dst]);
                    let bounds = regs[*lo].iter().zip(&regs[*hi]);
                    for (o, (v, (l, h))) in out.iter_mut().zip(regs[*src].iter().zip(bounds)) {
                        *o = if v.is_null() || l.is_null() || h.is_null() {
                            Value::Null
                        } else {
                            Value::Bool((v >= l && v <= h) != *negated)
                        };
                    }
                    regs[*dst] = out;
                }
                Op::InProbe {
                    src,
                    list,
                    negated,
                    dst,
                } => {
                    let mut out = std::mem::take(&mut regs[*dst]);
                    for (o, v) in out.iter_mut().zip(&regs[*src]) {
                        *o = if v.is_null() {
                            Value::Null
                        } else {
                            let found = list.iter().any(|w| v.sql_cmp(w) == Some(Ordering::Equal));
                            Value::Bool(found != *negated)
                        };
                    }
                    regs[*dst] = out;
                }
                Op::Like {
                    src,
                    pattern,
                    negated,
                    dst,
                } => {
                    let mut out = std::mem::take(&mut regs[*dst]);
                    for (o, v) in out.iter_mut().zip(&regs[*src]) {
                        *o = match v.sql_like(pattern) {
                            None => Value::Null,
                            Some(m) => Value::Bool(m != *negated),
                        };
                    }
                    regs[*dst] = out;
                }
                Op::IsNull { src, negated, dst } => {
                    let mut out = std::mem::take(&mut regs[*dst]);
                    for (o, v) in out.iter_mut().zip(&regs[*src]) {
                        *o = Value::Bool(v.is_null() != *negated);
                    }
                    regs[*dst] = out;
                }
                Op::JumpIfAllFalse { src, dst, target } => {
                    if regs[*src].iter().all(|v| *v == Value::Bool(false)) {
                        let mut out = std::mem::take(&mut regs[*dst]);
                        out.clone_from_slice(&regs[*src]);
                        regs[*dst] = out;
                        pc = *target;
                        continue;
                    }
                }
                Op::JumpIfAllTrue { src, dst, target } => {
                    if regs[*src].iter().all(|v| *v == Value::Bool(true)) {
                        let mut out = std::mem::take(&mut regs[*dst]);
                        out.clone_from_slice(&regs[*src]);
                        regs[*dst] = out;
                        pc = *target;
                        continue;
                    }
                }
            }
            pc += 1;
        }
        Ok(())
    }
}
