//! The federated cost model.
//!
//! §3.1: "The query optimizer considers communication costs for the data
//! access to the extended storage" and §4.2: "the plan generator attempts
//! to minimize both the amount of transferred data and the response time
//! of the query". Costs are unit-less; only their ratios matter for
//! strategy choice.

use crate::plan::FederationStrategy;

/// Tunable cost constants.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Processing one local row.
    pub local_row: f64,
    /// Transferring one row from a remote source to HANA.
    pub transfer_row: f64,
    /// Shipping one row *to* a remote source (temp-table load).
    pub ship_row: f64,
    /// Fixed cost of one remote round trip.
    pub remote_request: f64,
    /// Executing one row remotely (scan/join work at the source).
    pub remote_row: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            local_row: 1.0,
            transfer_row: 20.0,
            ship_row: 25.0,
            remote_request: 500.0,
            remote_row: 2.0,
        }
    }
}

/// Inputs to a remote-join strategy decision.
///
/// With persisted statistics the planner fills the widths from average
/// row bytes and the key distinct-counts from the column synopses;
/// without them it falls back to column-count width proxies and leaves
/// the distinct-counts at `0.0` (unknown).
#[derive(Debug, Clone, Copy)]
pub struct JoinSituation {
    /// Estimated rows of the (already filtered) local side.
    pub local_rows: f64,
    /// Total rows of the remote table.
    pub remote_total: f64,
    /// Estimated rows of the remote table after pushed-down predicates.
    pub remote_filtered: f64,
    /// Estimated join output rows.
    pub join_out: f64,
    /// Width of the local side in column-equivalents (8-byte units when
    /// derived from statistics, column count otherwise).
    pub local_width: f64,
    /// Width of the remote side in column-equivalents.
    pub remote_width: f64,
    /// Distinct join-key values on the local side (`0.0` = unknown).
    pub local_key_ndv: f64,
    /// Distinct join-key values on the remote side (`0.0` = unknown).
    pub remote_key_ndv: f64,
}

impl Default for JoinSituation {
    fn default() -> Self {
        JoinSituation {
            local_rows: 0.0,
            remote_total: 0.0,
            remote_filtered: 0.0,
            join_out: 0.0,
            local_width: 1.0,
            remote_width: 1.0,
            local_key_ndv: 0.0,
            remote_key_ndv: 0.0,
        }
    }
}

impl CostModel {
    /// Cost of evaluating one strategy in the given situation.
    pub fn strategy_cost(&self, s: FederationStrategy, j: &JoinSituation) -> f64 {
        let width = |w: f64| (w / 4.0).max(0.25);
        match s {
            // Pull the filtered remote rows, join locally.
            FederationStrategy::RemoteScan => {
                self.remote_request
                    + j.remote_filtered * self.remote_row
                    + j.remote_filtered * self.transfer_row * width(j.remote_width)
                    + (j.local_rows + j.remote_filtered) * self.local_row
            }
            // Ship local keys, remote reduces, pull reduced rows.
            FederationStrategy::SemiJoin => {
                // Shipped keys are distinct: the synopsis count when
                // known, else the row count as an upper bound.
                let keys = if j.local_key_ndv > 0.0 {
                    j.local_key_ndv.min(j.local_rows)
                } else {
                    j.local_rows
                };
                let reduced = j.join_out.min(j.remote_filtered);
                2.0 * self.remote_request
                    + keys * self.ship_row * 0.25 // keys are narrow
                    + j.remote_filtered * self.remote_row
                    + reduced * self.transfer_row * width(j.remote_width)
                    + (j.local_rows + reduced) * self.local_row
            }
            // Ship whole local rows; remote joins; pull wide results.
            FederationStrategy::TableRelocation => {
                2.0 * self.remote_request
                    + j.local_rows * self.ship_row * width(j.local_width)
                    + (j.remote_filtered + j.local_rows) * self.remote_row
                    + j.join_out * self.transfer_row * width(j.local_width + j.remote_width)
            }
            // Hybrid scans: both partitions read with the same preds.
            FederationStrategy::UnionPlan => {
                self.remote_request
                    + j.remote_filtered * (self.remote_row + self.transfer_row)
                    + j.local_rows * self.local_row
            }
        }
    }

    /// Pick the cheapest of the given strategies; returns
    /// `(strategy, cost)`.
    pub fn pick(
        &self,
        options: &[FederationStrategy],
        j: &JoinSituation,
    ) -> (FederationStrategy, f64) {
        options
            .iter()
            .map(|&s| (s, self.strategy_cost(s, j)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one strategy")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 7's scenario: a selective local predicate leaves one local
    /// row; the remote table is large. The semijoin must win.
    #[test]
    fn selective_local_side_picks_semijoin() {
        let m = CostModel::default();
        let j = JoinSituation {
            local_rows: 1.0,
            remote_total: 1_000_000.0,
            remote_filtered: 1_000_000.0,
            join_out: 10.0,
            local_width: 4.0,
            remote_width: 8.0,
            ..JoinSituation::default()
        };
        let (s, _) = m.pick(
            &[
                FederationStrategy::RemoteScan,
                FederationStrategy::SemiJoin,
                FederationStrategy::TableRelocation,
            ],
            &j,
        );
        assert_eq!(s, FederationStrategy::SemiJoin);
    }

    /// A heavily filtered remote side that is small after pushdown makes
    /// the plain remote scan cheapest.
    #[test]
    fn small_filtered_remote_picks_remote_scan() {
        let m = CostModel::default();
        let j = JoinSituation {
            local_rows: 100_000.0,
            remote_total: 1_000_000.0,
            remote_filtered: 50.0,
            join_out: 50.0,
            local_width: 4.0,
            remote_width: 4.0,
            ..JoinSituation::default()
        };
        let (s, _) = m.pick(
            &[
                FederationStrategy::RemoteScan,
                FederationStrategy::SemiJoin,
                FederationStrategy::TableRelocation,
            ],
            &j,
        );
        assert_eq!(s, FederationStrategy::RemoteScan);
    }

    /// With a moderately small local side, a huge unfiltered remote side
    /// and a tiny join result, relocation beats pulling and key-shipping
    /// when the reduced transfer dominates.
    #[test]
    fn costs_are_monotonic_in_transfer_volume() {
        let m = CostModel::default();
        let small = JoinSituation {
            local_rows: 10.0,
            remote_total: 10_000.0,
            remote_filtered: 10_000.0,
            join_out: 10.0,
            local_width: 2.0,
            remote_width: 4.0,
            ..JoinSituation::default()
        };
        let big = JoinSituation {
            remote_filtered: 1_000_000.0,
            remote_total: 1_000_000.0,
            ..small
        };
        for s in [
            FederationStrategy::RemoteScan,
            FederationStrategy::SemiJoin,
            FederationStrategy::TableRelocation,
        ] {
            assert!(
                m.strategy_cost(s, &big) > m.strategy_cost(s, &small),
                "{s:?} must cost more with more remote rows"
            );
        }
    }
}
