//! Lowering `Expr` trees into [`Program`] bytecode.
//!
//! Compilation is best-effort: shapes the VM does not model — function
//! calls, CASE, unbound parameters, non-constant IN lists, wildcards —
//! return `None` and the caller keeps the tree-walking evaluator for
//! that expression. Column references resolve to positions **here**,
//! once, with the same [`resolve_column`] rules the tree-walk applies
//! per row (qualified-first, then bare, then unambiguous suffix).

use hana_sql::{resolve_column, BinOp, Expr, UnaryOp};
use hana_types::Schema;

use crate::vm::{ArithOp, CmpOp, Op, Program, Reg};

/// Compile `e` against `schema`, or `None` when the expression uses a
/// shape the VM does not support.
pub fn compile_expr(e: &Expr, schema: &Schema) -> Option<Program> {
    let mut c = Compiler {
        schema,
        ops: Vec::new(),
        regs: 0,
    };
    let result = c.lower(e)?;
    Some(Program {
        ops: c.ops,
        regs: c.regs,
        result,
    })
}

struct Compiler<'a> {
    schema: &'a Schema,
    ops: Vec<Op>,
    regs: usize,
}

impl Compiler<'_> {
    fn fresh(&mut self) -> Reg {
        self.regs += 1;
        self.regs - 1
    }

    fn lower(&mut self, e: &Expr) -> Option<Reg> {
        match e {
            Expr::Literal(v) => {
                let dst = self.fresh();
                self.ops.push(Op::LoadConst {
                    val: v.clone(),
                    dst,
                });
                Some(dst)
            }
            Expr::Column { qualifier, name } => {
                let col = resolve_column(self.schema, qualifier.as_deref(), name).ok()?;
                let dst = self.fresh();
                self.ops.push(Op::LoadCol { col, dst });
                Some(dst)
            }
            // Unbound parameters error at evaluation time; leave that
            // to the tree-walk so the message matches.
            Expr::Parameter(_) | Expr::Wildcard => None,
            Expr::Unary { op, expr } => {
                let src = self.lower(expr)?;
                let dst = self.fresh();
                self.ops.push(match op {
                    UnaryOp::Neg => Op::Neg { src, dst },
                    UnaryOp::Not => Op::Not { src, dst },
                });
                Some(dst)
            }
            Expr::Binary { left, op, right } => {
                if matches!(op, BinOp::And | BinOp::Or) {
                    return self.lower_logic(left, *op, right);
                }
                let lhs = self.lower(left)?;
                let rhs = self.lower(right)?;
                let dst = self.fresh();
                self.ops.push(match op {
                    BinOp::Add => Op::Arith {
                        op: ArithOp::Add,
                        lhs,
                        rhs,
                        dst,
                    },
                    BinOp::Sub => Op::Arith {
                        op: ArithOp::Sub,
                        lhs,
                        rhs,
                        dst,
                    },
                    BinOp::Mul => Op::Arith {
                        op: ArithOp::Mul,
                        lhs,
                        rhs,
                        dst,
                    },
                    BinOp::Div => Op::Arith {
                        op: ArithOp::Div,
                        lhs,
                        rhs,
                        dst,
                    },
                    BinOp::Eq => Op::Cmp {
                        op: CmpOp::Eq,
                        lhs,
                        rhs,
                        dst,
                    },
                    BinOp::Ne => Op::Cmp {
                        op: CmpOp::Ne,
                        lhs,
                        rhs,
                        dst,
                    },
                    BinOp::Lt => Op::Cmp {
                        op: CmpOp::Lt,
                        lhs,
                        rhs,
                        dst,
                    },
                    BinOp::Le => Op::Cmp {
                        op: CmpOp::Le,
                        lhs,
                        rhs,
                        dst,
                    },
                    BinOp::Gt => Op::Cmp {
                        op: CmpOp::Gt,
                        lhs,
                        rhs,
                        dst,
                    },
                    BinOp::Ge => Op::Cmp {
                        op: CmpOp::Ge,
                        lhs,
                        rhs,
                        dst,
                    },
                    BinOp::And | BinOp::Or => unreachable!("handled by lower_logic"),
                });
                Some(dst)
            }
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let src = self.lower(expr)?;
                let lo = self.lower(lo)?;
                let hi = self.lower(hi)?;
                let dst = self.fresh();
                self.ops.push(Op::Between {
                    src,
                    lo,
                    hi,
                    negated: *negated,
                    dst,
                });
                Some(dst)
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                // Only constant probe lists compile; item expressions
                // would need lazy per-item evaluation to match the
                // tree-walk's early break.
                let consts: Option<Vec<_>> = list
                    .iter()
                    .map(|i| match i {
                        Expr::Literal(v) => Some(v.clone()),
                        _ => None,
                    })
                    .collect();
                let src = self.lower(expr)?;
                let dst = self.fresh();
                self.ops.push(Op::InProbe {
                    src,
                    list: consts?,
                    negated: *negated,
                    dst,
                });
                Some(dst)
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let src = self.lower(expr)?;
                let dst = self.fresh();
                self.ops.push(Op::Like {
                    src,
                    pattern: pattern.clone(),
                    negated: *negated,
                    dst,
                });
                Some(dst)
            }
            Expr::IsNull { expr, negated } => {
                let src = self.lower(expr)?;
                let dst = self.fresh();
                self.ops.push(Op::IsNull {
                    src,
                    negated: *negated,
                    dst,
                });
                Some(dst)
            }
            Expr::Func { .. } | Expr::Case { .. } => None,
        }
    }

    /// AND/OR with a block-level short-circuit: evaluate the left side,
    /// then skip the right side entirely when the whole block already
    /// decided (all-false for AND, all-true for OR).
    fn lower_logic(&mut self, left: &Expr, op: BinOp, right: &Expr) -> Option<Reg> {
        let lhs = self.lower(left)?;
        let dst = self.fresh();
        let jump_at = self.ops.len();
        // Placeholder target, patched once the right side is laid out.
        self.ops.push(match op {
            BinOp::And => Op::JumpIfAllFalse {
                src: lhs,
                dst,
                target: 0,
            },
            _ => Op::JumpIfAllTrue {
                src: lhs,
                dst,
                target: 0,
            },
        });
        let rhs = self.lower(right)?;
        self.ops.push(match op {
            BinOp::And => Op::And { lhs, rhs, dst },
            _ => Op::Or { lhs, rhs, dst },
        });
        let after = self.ops.len();
        match &mut self.ops[jump_at] {
            Op::JumpIfAllFalse { target, .. } | Op::JumpIfAllTrue { target, .. } => {
                *target = after;
            }
            _ => unreachable!(),
        }
        Some(dst)
    }
}
