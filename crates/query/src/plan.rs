//! Physical plans and EXPLAIN rendering.

use hana_columnar::ColumnPredicate;
use hana_sql::{Expr, JoinKind, Query};
use hana_types::{AggFunc, Schema, Value};

/// A physical plan node with its output schema and cardinality estimate.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// The operator.
    pub op: PlanOp,
    /// Output schema (column names qualified by binding where needed).
    pub schema: Schema,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Where the estimate came from (EXPLAIN shows the marker).
    pub est_source: EstSource,
}

/// Provenance of a cardinality estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstSource {
    /// Derived from persisted column statistics.
    Stats,
    /// Fallback heuristics (plan-time histograms, default
    /// selectivities).
    #[default]
    Heuristic,
}

impl EstSource {
    /// The marker EXPLAIN appends to each estimate.
    pub fn marker(&self) -> &'static str {
        match self {
            EstSource::Stats => "stats",
            EstSource::Heuristic => "heuristic",
        }
    }

    /// `Stats` only if both inputs are stats-backed.
    pub fn and(self, other: EstSource) -> EstSource {
        if self == EstSource::Stats && other == EstSource::Stats {
            EstSource::Stats
        } else {
            EstSource::Heuristic
        }
    }
}

/// How a hash join above a distributed probe side moves data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistJoinStrategy {
    /// Replicate the build rows to every surviving node; join
    /// fragment-locally, ship only results.
    Broadcast,
    /// Gather the probe side to the coordinator (repartition-style
    /// shuffle) and join there.
    Repartition,
    /// No statistics at plan time: the executor decides at runtime by
    /// comparing the materialized build side against the
    /// broadcast-build row-limit knob.
    #[default]
    Runtime,
}

impl DistJoinStrategy {
    /// Display name used in EXPLAIN.
    pub fn name(&self) -> &'static str {
        match self {
            DistJoinStrategy::Broadcast => "broadcast",
            DistJoinStrategy::Repartition => "repartition",
            DistJoinStrategy::Runtime => "runtime-knob",
        }
    }
}

/// Federation strategy chosen for a remote join input (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FederationStrategy {
    /// Pull the (filtered) remote table and join locally.
    RemoteScan,
    /// Ship local join keys; the remote filters and returns the
    /// reduced table.
    SemiJoin,
    /// Ship the local rows; the remote executes the join.
    TableRelocation,
    /// Hybrid table: local hot partition unioned with remote cold.
    UnionPlan,
}

impl FederationStrategy {
    /// Display name used in EXPLAIN and the benches.
    pub fn name(&self) -> &'static str {
        match self {
            FederationStrategy::RemoteScan => "Remote Scan",
            FederationStrategy::SemiJoin => "Semijoin",
            FederationStrategy::TableRelocation => "Table Relocation",
            FederationStrategy::UnionPlan => "Union Plan",
        }
    }
}

/// Physical operators.
#[derive(Debug, Clone)]
pub enum PlanOp {
    /// Scan of a local column table.
    ColumnScan {
        /// Binding name in the query.
        binding: String,
        /// Catalog table name.
        table: String,
        /// Pushed-down predicates.
        preds: Vec<(String, ColumnPredicate)>,
    },
    /// Ordered seek on a secondary index of a column table: an equality
    /// prefix over the leading indexed columns, an optional range on the
    /// next one, and residual predicates re-checked per hit.
    IndexSeek {
        /// Binding name in the query.
        binding: String,
        /// Catalog table name.
        table: String,
        /// Index name.
        index: String,
        /// Equality prefix `(column, value)` in key order.
        prefix: Vec<(String, Value)>,
        /// Range predicate on the key column after the prefix.
        range: Option<(String, ColumnPredicate)>,
        /// Pushed-down predicates the index does not consume.
        residual: Vec<(String, ColumnPredicate)>,
    },
    /// Scan of a local row table.
    RowScan {
        /// Binding name in the query.
        binding: String,
        /// Catalog table name.
        table: String,
        /// Pushed-down predicates.
        preds: Vec<(String, ColumnPredicate)>,
    },
    /// Scan of a distributed (partitioned) table: prune partitions by
    /// the pushed-down predicates, scan the surviving fragments on their
    /// nodes, gather to the coordinator over the links.
    DistScan {
        /// Binding name in the query.
        binding: String,
        /// Catalog table name.
        table: String,
        /// Pushed-down predicates.
        preds: Vec<(String, ColumnPredicate)>,
    },
    /// Hybrid table scan: hot partition locally, cold partition at the
    /// extended store, unioned (the §3.1 "Union Plan" at scan level).
    HybridScan {
        /// Binding name in the query.
        binding: String,
        /// Catalog table name.
        table: String,
        /// Pushed-down predicates (applied to both partitions).
        preds: Vec<(String, ColumnPredicate)>,
    },
    /// A shipped sub-query executed at a remote source (below the
    /// distributed exchange operator), via SDA with the remote cache.
    RemoteQuery {
        /// SDA source name.
        source: String,
        /// The shipped query.
        query: Query,
        /// Human-readable role ("whole query", "remote prefix",
        /// "remote scan").
        label: String,
    },
    /// Table-function invocation (virtual MR function, ESP window).
    FunctionScan {
        /// Binding name.
        binding: String,
        /// Function name.
        function: String,
        /// Arguments (must be literal-foldable).
        args: Vec<Expr>,
    },
    /// In-memory hash join (equi).
    HashJoin {
        /// Build side.
        left: Box<PlanNode>,
        /// Probe side.
        right: Box<PlanNode>,
        /// Join key column in the left schema.
        left_key: String,
        /// Join key column in the right schema.
        right_key: String,
        /// Join kind.
        kind: JoinKind,
        /// Exchange strategy when the probe side is distributed
        /// (ignored for purely local joins).
        dist: DistJoinStrategy,
    },
    /// Nested-loop join with an arbitrary ON condition (fallback).
    NestedLoopJoin {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// ON condition (`true` = cross join).
        on: Expr,
    },
    /// Semi-join reduction: execute `local`, ship its distinct join
    /// keys to the remote source as a temp table, join there to reduce
    /// the remote table, then hash-join locally.
    SemiJoin {
        /// Local input (already planned).
        local: Box<PlanNode>,
        /// Join key in the local schema.
        local_key: String,
        /// SDA source of the remote side.
        source: String,
        /// Remote table.
        remote_table: String,
        /// Predicates pushed to the remote side (as SQL expressions).
        remote_preds: Vec<Expr>,
        /// Join key in the remote table.
        remote_key: String,
        /// Remote binding name (for schema qualification).
        remote_binding: String,
    },
    /// Table relocation: ship the local rows to the remote source and
    /// execute the join there.
    RelocateJoin {
        /// Local input (already planned).
        local: Box<PlanNode>,
        /// Join key in the local schema.
        local_key: String,
        /// SDA source of the remote side.
        source: String,
        /// Remote table.
        remote_table: String,
        /// Predicates pushed to the remote side (as SQL expressions).
        remote_preds: Vec<Expr>,
        /// Join key in the remote table.
        remote_key: String,
        /// Remote binding name.
        remote_binding: String,
    },
    /// Residual filter.
    Filter {
        /// Input.
        input: Box<PlanNode>,
        /// Predicate.
        pred: Expr,
    },
    /// Hash aggregation producing `_g0.._gN, _a0.._aM`.
    Aggregate {
        /// Input.
        input: Box<PlanNode>,
        /// Group-by expressions.
        group_by: Vec<Expr>,
        /// Aggregates (canonical order).
        aggs: Vec<(AggFunc, Option<Expr>)>,
    },
    /// Driver epilogue: HAVING, final projection, DISTINCT, ORDER BY,
    /// LIMIT — applied from the original query.
    Finish {
        /// Input.
        input: Box<PlanNode>,
        /// The original query.
        query: Query,
    },
}

impl PlanNode {
    /// Render the plan tree as indented text (the Figure 12/13 style).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.render(0, &mut out);
        out
    }

    fn est_label(&self) -> String {
        format!(
            "est {:.0} rows [{}]",
            self.est_rows,
            self.est_source.marker()
        )
    }

    fn line(indent: usize, out: &mut String, text: &str) {
        out.push_str(&"  ".repeat(indent));
        out.push_str(text);
        out.push('\n');
    }

    fn render(&self, indent: usize, out: &mut String) {
        match &self.op {
            PlanOp::ColumnScan {
                binding,
                table,
                preds,
            } => Self::line(
                indent,
                out,
                &format!(
                    "Column Scan {table} [{binding}] ({} preds, {})",
                    preds.len(),
                    self.est_label()
                ),
            ),
            PlanOp::IndexSeek {
                binding,
                table,
                index,
                prefix,
                range,
                residual,
            } => {
                let range_text = match range {
                    Some((col, _)) => format!(", range on {col}"),
                    None => String::new(),
                };
                Self::line(
                    indent,
                    out,
                    &format!(
                        "Index Seek {table}.{index} [{binding}] \
                         (prefix {} cols{range_text}, {} residual preds, {})",
                        prefix.len(),
                        residual.len(),
                        self.est_label()
                    ),
                );
            }
            PlanOp::RowScan {
                binding,
                table,
                preds,
            } => Self::line(
                indent,
                out,
                &format!(
                    "Row Scan {table} [{binding}] ({} preds, {})",
                    preds.len(),
                    self.est_label()
                ),
            ),
            PlanOp::DistScan {
                binding,
                table,
                preds,
            } => Self::line(
                indent,
                out,
                &format!(
                    "Dist Scan {table} [{binding}] ({} preds, partition pruning + gather, {})",
                    preds.len(),
                    self.est_label()
                ),
            ),
            PlanOp::HybridScan {
                binding, table, ..
            } => Self::line(
                indent,
                out,
                &format!(
                    "Union Plan: Hybrid Scan {table} [{binding}] (hot in-memory + cold extended, {})",
                    self.est_label()
                ),
            ),
            PlanOp::RemoteQuery {
                source,
                query,
                label,
            } => {
                Self::line(
                    indent,
                    out,
                    &format!(
                        "Remote Row Scan [{label}] @ {source} ({})",
                        self.est_label()
                    ),
                );
                Self::line(indent + 1, out, &format!("Shipped: {query}"));
            }
            PlanOp::FunctionScan {
                binding, function, ..
            } => Self::line(
                indent,
                out,
                &format!("Table Function {function}() [{binding}]"),
            ),
            PlanOp::HashJoin {
                left,
                right,
                left_key,
                right_key,
                kind,
                dist,
            } => {
                let k = match kind {
                    JoinKind::Inner => "Inner",
                    JoinKind::LeftOuter => "Left Outer",
                };
                // The exchange choice only matters over a distributed
                // probe side; purely local joins stay silent.
                let xch = if matches!(left.op, PlanOp::DistScan { .. }) {
                    format!(", exchange: {}", dist.name())
                } else {
                    String::new()
                };
                Self::line(
                    indent,
                    out,
                    &format!(
                        "Hash Join ({k}) ON {left_key} = {right_key}{xch} ({})",
                        self.est_label()
                    ),
                );
                left.render(indent + 1, out);
                right.render(indent + 1, out);
            }
            PlanOp::NestedLoopJoin { left, right, on } => {
                Self::line(
                    indent,
                    out,
                    &format!("Nested Loop Join ON {on} ({})", self.est_label()),
                );
                left.render(indent + 1, out);
                right.render(indent + 1, out);
            }
            PlanOp::SemiJoin {
                local,
                local_key,
                source,
                remote_table,
                remote_key,
                ..
            } => {
                Self::line(
                    indent,
                    out,
                    &format!(
                        "Semijoin: ship {local_key} keys -> {source}.{remote_table}.{remote_key} ({})",
                        self.est_label()
                    ),
                );
                local.render(indent + 1, out);
            }
            PlanOp::RelocateJoin {
                local,
                source,
                remote_table,
                ..
            } => {
                Self::line(
                    indent,
                    out,
                    &format!(
                        "Table Relocation: ship local rows -> join @ {source}.{remote_table} ({})",
                        self.est_label()
                    ),
                );
                local.render(indent + 1, out);
            }
            PlanOp::Filter { input, pred } => {
                Self::line(
                    indent,
                    out,
                    &format!("Filter {pred} ({})", self.est_label()),
                );
                input.render(indent + 1, out);
            }
            PlanOp::Aggregate {
                input, group_by, aggs,
            } => {
                Self::line(
                    indent,
                    out,
                    &format!(
                        "Hash Aggregate ({} groups, {} aggs, {})",
                        group_by.len(),
                        aggs.len(),
                        self.est_label()
                    ),
                );
                input.render(indent + 1, out);
            }
            PlanOp::Finish { input, .. } => {
                Self::line(indent, out, "Project / Order / Limit");
                input.render(indent + 1, out);
            }
        }
    }

    /// The federation strategies used anywhere in the tree (tests).
    pub fn strategies(&self) -> Vec<FederationStrategy> {
        let mut out = Vec::new();
        self.collect_strategies(&mut out);
        out
    }

    fn collect_strategies(&self, out: &mut Vec<FederationStrategy>) {
        match &self.op {
            PlanOp::RemoteQuery { .. } => out.push(FederationStrategy::RemoteScan),
            PlanOp::HybridScan { .. } => out.push(FederationStrategy::UnionPlan),
            PlanOp::SemiJoin { local, .. } => {
                out.push(FederationStrategy::SemiJoin);
                local.collect_strategies(out);
            }
            PlanOp::RelocateJoin { local, .. } => {
                out.push(FederationStrategy::TableRelocation);
                local.collect_strategies(out);
            }
            PlanOp::HashJoin { left, right, .. } => {
                left.collect_strategies(out);
                right.collect_strategies(out);
            }
            PlanOp::NestedLoopJoin { left, right, .. } => {
                left.collect_strategies(out);
                right.collect_strategies(out);
            }
            PlanOp::Filter { input, .. }
            | PlanOp::Aggregate { input, .. }
            | PlanOp::Finish { input, .. } => input.collect_strategies(out),
            _ => {}
        }
    }
}
