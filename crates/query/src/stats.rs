//! Plan-time statistics access.
//!
//! [`StatsProvider`] is the planner's read-side view of the persisted
//! column statistics of `hana-columnar`: the catalog layer (`hana-core`)
//! implements it over its versioned stats registry, tests use
//! [`MemoryStatsProvider`], and [`NoStats`] is the default when no
//! provider is wired in (every estimate then falls back to the plan-time
//! heuristics, exactly the pre-statistics behaviour).

use std::collections::HashMap;
use std::sync::Arc;

use hana_columnar::TableStatistics;
use parking_lot::RwLock;

/// Read-side access to persisted table statistics.
pub trait StatsProvider: Send + Sync {
    /// Table-level statistics, if a synopsis has been collected.
    fn table_stats(&self, table: &str) -> Option<Arc<TableStatistics>>;

    /// Per-partition statistics of a distributed table, in node order.
    fn partition_stats(&self, table: &str) -> Option<Arc<Vec<TableStatistics>>> {
        let _ = table;
        None
    }
}

/// The empty provider: every lookup misses, estimates fall back to
/// heuristics.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoStats;

impl StatsProvider for NoStats {
    fn table_stats(&self, _table: &str) -> Option<Arc<TableStatistics>> {
        None
    }
}

/// The shared default instance [`crate::PlannerContext::new`] points at.
pub static NO_STATS: NoStats = NoStats;

/// An in-memory provider for tests and benches.
#[derive(Default)]
pub struct MemoryStatsProvider {
    tables: RwLock<HashMap<String, Arc<TableStatistics>>>,
    partitions: RwLock<HashMap<String, Arc<Vec<TableStatistics>>>>,
}

impl MemoryStatsProvider {
    /// An empty provider.
    pub fn new() -> MemoryStatsProvider {
        MemoryStatsProvider::default()
    }

    /// Store (or replace) a table's synopsis.
    pub fn put(&self, stats: TableStatistics) {
        self.tables
            .write()
            .insert(stats.table.to_ascii_lowercase(), Arc::new(stats));
    }

    /// Store (or replace) a distributed table's per-partition synopses
    /// alongside their merged table-level view.
    pub fn put_partitions(&self, table: &str, parts: Vec<TableStatistics>) {
        let merged = TableStatistics::merge(table, &parts);
        self.partitions
            .write()
            .insert(table.to_ascii_lowercase(), Arc::new(parts));
        self.put(merged);
    }

    /// Drop a table's statistics.
    pub fn remove(&self, table: &str) {
        let key = table.to_ascii_lowercase();
        self.tables.write().remove(&key);
        self.partitions.write().remove(&key);
    }
}

impl StatsProvider for MemoryStatsProvider {
    fn table_stats(&self, table: &str) -> Option<Arc<TableStatistics>> {
        self.tables.read().get(&table.to_ascii_lowercase()).cloned()
    }

    fn partition_stats(&self, table: &str) -> Option<Arc<Vec<TableStatistics>>> {
        self.partitions
            .read()
            .get(&table.to_ascii_lowercase())
            .cloned()
    }
}
