//! Histograms with bounded q-error.
//!
//! §3.1: "The cost-based query optimizer of SAP HANA … uses q-optimal
//! histograms based on values for cardinality estimates" (paper
//! reference [16], Moerkotte et al., SIGMOD 2014). The key idea there is
//! to exploit the **ordered dictionary**: distinct values arrive sorted
//! with exact frequencies, and buckets are grown greedily as long as the
//! multiplicative error (q-error) of approximating each member frequency
//! by the bucket average stays within the bound.

use hana_columnar::ColumnPredicate;
use hana_types::Value;

/// One histogram bucket over a run of adjacent distinct values.
#[derive(Debug, Clone)]
pub struct Bucket {
    /// Smallest value in the bucket.
    pub lo: Value,
    /// Largest value in the bucket.
    pub hi: Value,
    /// Total rows covered.
    pub rows: u64,
    /// Distinct values covered.
    pub distinct: u64,
}

impl Bucket {
    fn avg_freq(&self) -> f64 {
        self.rows as f64 / self.distinct.max(1) as f64
    }
}

/// A q-error-bounded histogram.
#[derive(Debug, Clone)]
pub struct QHistogram {
    buckets: Vec<Bucket>,
    total_rows: u64,
    null_rows: u64,
    q_bound: f64,
}

impl QHistogram {
    /// Build from `(value, frequency)` pairs in ascending value order
    /// (exactly what an ordered dictionary provides), with the given
    /// q-error bound (must be `>= 1`).
    pub fn build(sorted: &[(Value, u64)], null_rows: u64, q_bound: f64) -> QHistogram {
        let q = q_bound.max(1.0);
        let mut buckets: Vec<Bucket> = Vec::new();
        // Greedy: extend the current bucket while every member frequency
        // stays within q of the (running) bucket average.
        let mut cur: Option<(Bucket, u64, u64)> = None; // (bucket, min_f, max_f)
        for (v, f) in sorted {
            let f = (*f).max(1);
            match &mut cur {
                None => {
                    cur = Some((
                        Bucket {
                            lo: v.clone(),
                            hi: v.clone(),
                            rows: f,
                            distinct: 1,
                        },
                        f,
                        f,
                    ));
                }
                Some((b, min_f, max_f)) => {
                    let new_min = (*min_f).min(f);
                    let new_max = (*max_f).max(f);
                    let new_rows = b.rows + f;
                    let new_distinct = b.distinct + 1;
                    let avg = new_rows as f64 / new_distinct as f64;
                    // q-error of the extended bucket.
                    let qe = (avg / new_min as f64).max(new_max as f64 / avg);
                    if qe <= q {
                        b.hi = v.clone();
                        b.rows = new_rows;
                        b.distinct = new_distinct;
                        *min_f = new_min;
                        *max_f = new_max;
                    } else {
                        buckets.push(b.clone());
                        cur = Some((
                            Bucket {
                                lo: v.clone(),
                                hi: v.clone(),
                                rows: f,
                                distinct: 1,
                            },
                            f,
                            f,
                        ));
                    }
                }
            }
        }
        if let Some((b, _, _)) = cur {
            buckets.push(b);
        }
        let total_rows = buckets.iter().map(|b| b.rows).sum::<u64>() + null_rows;
        QHistogram {
            buckets,
            total_rows,
            null_rows,
            q_bound: q,
        }
    }

    /// The buckets (tests, EXPLAIN).
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Total rows the histogram covers (nulls included).
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// The configured q-error bound.
    pub fn q_bound(&self) -> f64 {
        self.q_bound
    }

    /// Estimated rows matching `value = v`.
    pub fn estimate_eq(&self, v: &Value) -> f64 {
        for b in &self.buckets {
            if *v >= b.lo && *v <= b.hi {
                return b.avg_freq();
            }
        }
        0.0
    }

    /// Estimated rows in the inclusive range `[lo, hi]` (either side
    /// unbounded with `None`).
    pub fn estimate_range(&self, lo: Option<&Value>, hi: Option<&Value>) -> f64 {
        let mut rows = 0.0;
        for b in &self.buckets {
            if lo.is_some_and(|l| *l > b.hi) || hi.is_some_and(|h| *h < b.lo) {
                continue;
            }
            rows += b.rows as f64 * overlap_fraction(b, lo, hi);
        }
        rows
    }

    /// Estimated rows matching a column predicate.
    pub fn estimate(&self, pred: &ColumnPredicate) -> f64 {
        match pred {
            ColumnPredicate::Eq(v) => self.estimate_eq(v),
            ColumnPredicate::Ne(v) => {
                (self.total_rows - self.null_rows) as f64 - self.estimate_eq(v)
            }
            ColumnPredicate::Lt(v) | ColumnPredicate::Le(v) => self.estimate_range(None, Some(v)),
            ColumnPredicate::Gt(v) | ColumnPredicate::Ge(v) => self.estimate_range(Some(v), None),
            ColumnPredicate::Between(lo, hi) => self.estimate_range(Some(lo), Some(hi)),
            ColumnPredicate::InList(vs) => {
                // Dedup first — `IN (1, 1, 1)` matches the same rows as
                // `IN (1)` — and clamp to the non-null row count.
                let mut uniq: Vec<&Value> = vs.iter().collect();
                uniq.sort();
                uniq.dedup();
                let est: f64 = uniq.into_iter().map(|v| self.estimate_eq(v)).sum();
                est.min((self.total_rows - self.null_rows) as f64)
            }
            ColumnPredicate::IsNull => self.null_rows as f64,
            ColumnPredicate::IsNotNull => (self.total_rows - self.null_rows) as f64,
            ColumnPredicate::Like(_) => 0.1 * (self.total_rows - self.null_rows) as f64,
        }
    }

    /// Selectivity (`0..=1`) of a predicate.
    pub fn selectivity(&self, pred: &ColumnPredicate) -> f64 {
        if self.total_rows == 0 {
            return 0.0;
        }
        (self.estimate(pred) / self.total_rows as f64).clamp(0.0, 1.0)
    }
}

/// Fraction of a bucket's rows assumed inside `[lo, hi]`, interpolating
/// numerically where possible.
fn overlap_fraction(b: &Bucket, lo: Option<&Value>, hi: Option<&Value>) -> f64 {
    let (Some(blo), Some(bhi)) = (b.lo.as_f64(), b.hi.as_f64()) else {
        // Non-numeric: containment is all we know.
        return 1.0;
    };
    if bhi == blo {
        return 1.0;
    }
    let from = lo.and_then(Value::as_f64).unwrap_or(blo).max(blo);
    let to = hi.and_then(Value::as_f64).unwrap_or(bhi).min(bhi);
    ((to - from) / (bhi - blo)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freqs(pairs: &[(i64, u64)]) -> Vec<(Value, u64)> {
        pairs.iter().map(|&(v, f)| (Value::Int(v), f)).collect()
    }

    #[test]
    fn q_error_bound_holds_per_bucket() {
        // Frequencies varying over two orders of magnitude.
        let data: Vec<(i64, u64)> = (0..200).map(|i| (i, 1 + (i as u64 % 13) * 17)).collect();
        let h = QHistogram::build(&freqs(&data), 0, 2.0);
        // Verify: every true frequency within q=2 of its bucket average.
        for b in h.buckets() {
            let avg = b.rows as f64 / b.distinct as f64;
            for &(v, f) in &data {
                if Value::Int(v) >= b.lo && Value::Int(v) <= b.hi {
                    let qe = (avg / f as f64).max(f as f64 / avg);
                    assert!(qe <= 2.0 + 1e-9, "q-error {qe} for value {v}");
                }
            }
        }
        assert!(h.buckets().len() < 200, "buckets must coalesce");
    }

    #[test]
    fn uniform_data_collapses_to_one_bucket() {
        let data: Vec<(i64, u64)> = (0..100).map(|i| (i, 5)).collect();
        let h = QHistogram::build(&freqs(&data), 0, 1.1);
        assert_eq!(h.buckets().len(), 1);
        assert_eq!(h.total_rows(), 500);
        assert!((h.estimate_eq(&Value::Int(50)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn range_estimates_interpolate() {
        let data: Vec<(i64, u64)> = (0..100).map(|i| (i, 10)).collect();
        let h = QHistogram::build(&freqs(&data), 0, 1.5);
        // Half the domain -> about half the rows.
        let est = h.estimate_range(Some(&Value::Int(0)), Some(&Value::Int(49)));
        assert!((est - 500.0).abs() < 60.0, "est = {est}");
        // Out-of-domain range -> zero.
        assert_eq!(h.estimate_range(Some(&Value::Int(200)), None), 0.0);
        assert_eq!(h.estimate_eq(&Value::Int(500)), 0.0);
    }

    #[test]
    fn predicate_estimates() {
        let data: Vec<(i64, u64)> = (0..10).map(|i| (i, 10)).collect();
        let h = QHistogram::build(&freqs(&data), 20, 2.0);
        assert_eq!(h.total_rows(), 120);
        assert_eq!(h.estimate(&ColumnPredicate::IsNull), 20.0);
        assert_eq!(h.estimate(&ColumnPredicate::IsNotNull), 100.0);
        let sel = h.selectivity(&ColumnPredicate::Eq(Value::Int(3)));
        assert!((sel - 10.0 / 120.0).abs() < 1e-9);
        let in_est = h.estimate(&ColumnPredicate::InList(vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(99),
        ]));
        assert!((in_est - 20.0).abs() < 1e-9);
    }

    #[test]
    fn in_list_dedups_and_never_exceeds_rows() {
        let data: Vec<(i64, u64)> = (0..10).map(|i| (i, 10)).collect();
        let h = QHistogram::build(&freqs(&data), 20, 2.0);
        // Duplicates count once.
        let dup = h.estimate(&ColumnPredicate::InList(vec![
            Value::Int(3),
            Value::Int(3),
            Value::Int(3),
        ]));
        assert!((dup - 10.0).abs() < 1e-9, "dup est = {dup}");
        // A long duplicated list stays within the non-null rows.
        let long: Vec<Value> = (0..500).map(|i| Value::Int(i % 10)).collect();
        let est = h.estimate(&ColumnPredicate::InList(long));
        assert!(est <= 100.0 + 1e-9, "clamped est = {est}");
    }

    #[test]
    fn skew_splits_buckets() {
        // One heavy hitter among uniform values.
        let mut data: Vec<(i64, u64)> = (0..50).map(|i| (i, 2)).collect();
        data[25].1 = 10_000;
        let h = QHistogram::build(&freqs(&data), 0, 2.0);
        assert!(h.buckets().len() >= 3, "heavy hitter isolates");
        let est = h.estimate_eq(&Value::Int(25));
        assert!(est > 1_000.0, "heavy hitter visible in estimate: {est}");
        let est2 = h.estimate_eq(&Value::Int(10));
        assert!(est2 < 10.0, "uniform neighbours unaffected: {est2}");
    }
}
