//! A fast, non-cryptographic hasher for executor hash tables.
//!
//! The default `SipHash13` behind `std::collections::HashMap` is
//! keyed/DoS-resistant but costs tens of cycles per word — pure
//! overhead for the executor's internal join/aggregation tables, whose
//! keys come from the engine, not the network. This is the
//! multiply-rotate scheme popularized by rustc's `FxHasher`: one
//! rotate, one xor and one multiply per 8 input bytes.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher (rustc `FxHasher` scheme).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-backed maps.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        // Unaligned tails must contribute.
        assert_ne!(hash_of(&"123456789"), hash_of(&"123456780"));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut m: FxHashMap<Vec<i64>, usize> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(vec![i, i * 2], i as usize);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&vec![7, 14]], 7);
    }
}
