//! The federated, cost-based planner.
//!
//! Implements the placement logic of §3.1 and §4.2:
//!
//! 1. **Whole-query shipping** — if every source lives at one remote
//!    source whose capabilities cover the query shape, the entire query
//!    is pushed below the distributed exchange operator (the Figure 12
//!    plan), letting the remote cache of §4.4 apply.
//! 2. **Remote-prefix shipping** — otherwise, the maximal prefix of the
//!    left-deep join chain that lives at one source is shipped as a
//!    sub-query ("parts of a query may even be shipped to Hive"); its
//!    result joins with local tables in HANA (the Figure 13 situation
//!    for queries mixing federated and local tables).
//! 3. **Strategy selection** — each remaining remote table entering a
//!    join is accessed via the cheapest of *remote scan*, *semijoin* and
//!    *table relocation* (§3.1, Figure 7); hybrid tables always use the
//!    *union plan* at scan level.
//!
//! Estimation is **statistics-first**: when the [`StatsProvider`] of the
//! [`PlannerContext`] has a persisted synopsis for a table, scans are
//! priced from its histograms, equi-joins from key distinct-counts
//! (containment assumption), and distributed joins pick
//! broadcast-vs-repartition from per-partition row counts. Every
//! estimate carries an [`EstSource`] provenance marker; without
//! statistics the planner falls back to the plan-time heuristics and
//! marks the node `heuristic`.

use hana_columnar::{ColumnPredicate, ColumnTable};
use hana_sql::finish::{aggregate_output_schema, collect_aggregates, infer_type};
use hana_sql::{BinOp, Expr, JoinKind, Query, SelectItem, TableRef};
use hana_types::{ColumnDef, HanaError, Result, Schema, Value};

use crate::catalog::TableSource;
use crate::context::PlannerContext;
use crate::cost::JoinSituation;
use crate::estimator;
use crate::histogram::QHistogram;
use crate::plan::{DistJoinStrategy, EstSource, FederationStrategy, PlanNode, PlanOp};

#[allow(unused_imports)] // doc links
use crate::stats::StatsProvider;

/// The planner.
pub struct Planner<'a> {
    ctx: PlannerContext<'a>,
}

/// One resolved FROM/JOIN binding.
struct Binding {
    name: String,
    table: String,
    source: BindingKind,
    /// Schema qualified with the binding name.
    schema: Schema,
    /// Conjuncts assigned to this binding.
    preds: Vec<Expr>,
}

enum BindingKind {
    Table(TableSource),
    Function { function: String, args: Vec<Expr> },
}

impl<'a> Planner<'a> {
    /// Build the planner from a fully assembled context.
    pub fn with_context(ctx: PlannerContext<'a>) -> Planner<'a> {
        Planner { ctx }
    }

    /// Compile a query into a physical plan.
    pub fn plan(&self, q: &Query) -> Result<PlanNode> {
        let mut bindings = self.resolve_bindings(q)?;

        // Partition WHERE conjuncts: per-binding vs residual.
        let mut residual: Vec<Expr> = Vec::new();
        if let Some(f) = &q.filter {
            for c in f.conjuncts() {
                match self.owning_binding(&bindings, c) {
                    Some(i) => bindings[i].preds.push(c.clone()),
                    None => residual.push(c.clone()),
                }
            }
        }

        // 1. Whole-query shipping.
        if let Some(node) = self.try_whole_ship(q, &bindings)? {
            return Ok(node);
        }

        // 2. Left-deep chain with remote-prefix shipping; purely local
        //    multi-joins with full statistics coverage instead go
        //    through the greedy cost-based join ordering.
        let prefix_len = self.remote_prefix_len(q, &bindings);
        let greedy = if prefix_len < 2 {
            self.try_greedy_fold(q, &bindings, &mut residual)?
        } else {
            None
        };
        let mut acc = match greedy {
            Some(node) => node,
            None => {
                let mut acc = if prefix_len >= 2 {
                    self.ship_prefix(q, &bindings, prefix_len)?
                } else {
                    self.leaf(&bindings[0], &q.hints)?
                };
                let consumed = if prefix_len >= 2 { prefix_len } else { 1 };

                // 3. Fold remaining joins in syntactic order.
                for (idx, join) in q.joins.iter().enumerate().skip(consumed.saturating_sub(1)) {
                    let b = &bindings[idx + 1];
                    let keys = equi_keys(&join.on, &acc.schema, &b.schema);
                    match (&b.source, keys) {
                        // Remote single table with an equi join:
                        // strategy choice.
                        (BindingKind::Table(ts), Ok((lk, rk)))
                            if ts.remote_source().is_some()
                                && !matches!(ts, TableSource::Hybrid { .. })
                                && join.kind == JoinKind::Inner =>
                        {
                            acc =
                                self.plan_remote_join(acc, &bindings, b, ts, &lk, &rk, &q.hints)?;
                        }
                        (_, Ok((lk, rk))) => {
                            let lndv = self.key_ndv_of(&bindings, &lk);
                            let rndv = self.key_ndv_of(&bindings, &rk);
                            let right = self.leaf(b, &q.hints)?;
                            acc = self.join_node(acc, right, lk, rk, join.kind, lndv, rndv)?;
                        }
                        (_, Err(_)) => {
                            let right = self.leaf(b, &q.hints)?;
                            acc = nested_loop_node(acc, right, join.on.clone())?;
                        }
                    }
                }
                acc
            }
        };

        // 4. Residual filter.
        for pred in residual {
            let est = acc.est_rows * 0.5;
            let schema = acc.schema.clone();
            let est_source = acc.est_source;
            acc = PlanNode {
                op: PlanOp::Filter {
                    input: Box::new(acc),
                    pred,
                },
                schema,
                est_rows: est.max(1.0),
                est_source,
            };
        }

        // 5. Aggregation.
        let aggs = collect_aggregates(q);
        if !q.group_by.is_empty() || !aggs.is_empty() {
            let schema = aggregate_output_schema(q, &acc.schema)?;
            let est = if q.group_by.is_empty() {
                1.0
            } else {
                (acc.est_rows / 10.0).max(1.0)
            };
            let est_source = acc.est_source;
            acc = PlanNode {
                op: PlanOp::Aggregate {
                    input: Box::new(acc),
                    group_by: q.group_by.clone(),
                    aggs,
                },
                schema,
                est_rows: est,
                est_source,
            };
        }

        // 6. Epilogue.
        let est = q.limit.map(|n| n as f64).unwrap_or(acc.est_rows);
        let schema = acc.schema.clone();
        let est_source = acc.est_source;
        Ok(PlanNode {
            op: PlanOp::Finish {
                input: Box::new(acc),
                query: q.clone(),
            },
            schema,
            est_rows: est,
            est_source,
        })
    }

    // ---- greedy join ordering ----

    /// Statistics-driven greedy join ordering for purely local inner
    /// multi-joins (3+ tables). Starts from the smallest estimated
    /// binding and repeatedly joins the candidate with the cheapest
    /// estimated output, using key distinct-counts under the containment
    /// assumption. Join conditions left over after all bindings are
    /// placed (cycle edges) become residual filters.
    ///
    /// Returns `None` — leaving the syntactic left-deep order intact —
    /// unless every binding is a local table with a persisted synopsis;
    /// without full coverage a partial reorder would mix stats-backed
    /// and guessed cardinalities and could easily be worse than the
    /// user's written order.
    fn try_greedy_fold(
        &self,
        q: &Query,
        bindings: &[Binding],
        residual: &mut Vec<Expr>,
    ) -> Result<Option<PlanNode>> {
        // `SELECT *` (empty or wildcard select list) exposes the join
        // column order directly: do not reorder.
        if bindings.len() < 3
            || q.select.is_empty()
            || q.select.iter().any(|s| matches!(s.expr, Expr::Wildcard))
            || q.joins.iter().any(|j| j.kind != JoinKind::Inner)
        {
            return Ok(None);
        }
        for b in bindings {
            match &b.source {
                BindingKind::Table(ts) if ts.remote_source().is_none() => {}
                _ => return Ok(None),
            }
        }
        let ests: Vec<(f64, EstSource)> =
            bindings.iter().map(|b| self.binding_estimate(b)).collect();
        if ests.iter().any(|(_, s)| *s != EstSource::Stats) {
            return Ok(None);
        }

        let start = (0..bindings.len())
            .min_by(|&a, &b| ests[a].0.total_cmp(&ests[b].0))
            .expect("at least three bindings");
        let mut acc = self.leaf(&bindings[start], &q.hints)?;
        let mut used_bindings = vec![false; bindings.len()];
        used_bindings[start] = true;
        let mut used_joins = vec![false; q.joins.len()];
        for _ in 1..bindings.len() {
            // Cheapest (join condition, unplaced binding) pair whose
            // equi keys straddle the accumulated side and the candidate.
            let mut best: Option<(usize, usize, String, String, f64)> = None;
            for (ji, j) in q.joins.iter().enumerate() {
                if used_joins[ji] {
                    continue;
                }
                for (bi, b) in bindings.iter().enumerate() {
                    if used_bindings[bi] {
                        continue;
                    }
                    let Ok((lk, rk)) = equi_keys(&j.on, &acc.schema, &b.schema) else {
                        continue;
                    };
                    let lndv = self.key_ndv_of(bindings, &lk);
                    let rndv = self.key_ndv_of(bindings, &rk);
                    let est = estimator::join_out(acc.est_rows, ests[bi].0, lndv, rndv);
                    if best.as_ref().is_none_or(|(.., e)| est < *e) {
                        best = Some((ji, bi, lk, rk, est));
                    }
                }
            }
            // No joinable candidate (cross product or non-equi join in
            // the middle): fall back to the syntactic order.
            let Some((ji, bi, lk, rk, _)) = best else {
                return Ok(None);
            };
            used_joins[ji] = true;
            used_bindings[bi] = true;
            let lndv = self.key_ndv_of(bindings, &lk);
            let rndv = self.key_ndv_of(bindings, &rk);
            let right = self.leaf(&bindings[bi], &q.hints)?;
            acc = self.join_node(acc, right, lk, rk, JoinKind::Inner, lndv, rndv)?;
        }
        for (ji, j) in q.joins.iter().enumerate() {
            if !used_joins[ji] {
                residual.push(j.on.clone());
            }
        }
        Ok(Some(acc))
    }

    // ---- binding resolution ----

    fn resolve_bindings(&self, q: &Query) -> Result<Vec<Binding>> {
        let from = q
            .from
            .as_ref()
            .ok_or_else(|| HanaError::Plan("query without FROM clause".into()))?;
        let mut bindings = vec![self.resolve_ref(from)?];
        for j in &q.joins {
            bindings.push(self.resolve_ref(&j.table)?);
        }
        Ok(bindings)
    }

    fn resolve_ref(&self, t: &TableRef) -> Result<Binding> {
        match t {
            TableRef::Named { name, alias } => {
                let source = self.ctx.catalog.resolve_table(name)?;
                let binding = alias.clone().unwrap_or_else(|| name.clone());
                let schema = source.schema().qualified(&binding);
                Ok(Binding {
                    name: binding,
                    table: name.clone(),
                    source: BindingKind::Table(source),
                    schema,
                    preds: Vec::new(),
                })
            }
            TableRef::Function { name, args, alias } => {
                let f = self.ctx.catalog.resolve_function(name)?;
                let binding = alias.clone().unwrap_or_else(|| name.clone());
                let schema = f.schema().qualified(&binding);
                Ok(Binding {
                    name: binding,
                    table: name.clone(),
                    source: BindingKind::Function {
                        function: name.clone(),
                        args: args.clone(),
                    },
                    schema,
                    preds: Vec::new(),
                })
            }
            TableRef::Subquery { .. } => Err(HanaError::Unsupported(
                "derived tables are not supported by the federated planner yet".into(),
            )),
        }
    }

    /// The unique binding that owns every column of `e`, if any.
    fn owning_binding(&self, bindings: &[Binding], e: &Expr) -> Option<usize> {
        let cols = e.columns();
        if cols.is_empty() {
            return None;
        }
        let mut owner = None;
        for (q, name) in cols {
            let idx = binding_of_column(bindings, q.as_deref(), name)?;
            match owner {
                None => owner = Some(idx),
                Some(o) if o == idx => {}
                _ => return None,
            }
        }
        owner
    }

    // ---- whole-query shipping ----

    fn try_whole_ship(&self, q: &Query, bindings: &[Binding]) -> Result<Option<PlanNode>> {
        let mut source: Option<&str> = None;
        for b in bindings {
            let BindingKind::Table(ts) = &b.source else {
                return Ok(None);
            };
            if matches!(ts, TableSource::Hybrid { .. }) {
                return Ok(None);
            }
            match (source, ts.remote_source()) {
                (_, None) => return Ok(None),
                (None, Some(s)) => source = Some(s),
                (Some(a), Some(b)) if a == b => {}
                _ => return Ok(None),
            }
        }
        let Some(source) = source else {
            return Ok(None);
        };
        let caps = self
            .ctx
            .catalog
            .sda()
            .source(source)?
            .adapter
            .capabilities();
        if !caps.supports_query(q) {
            return Ok(None);
        }
        // Rewrite local virtual-table names to their remote names,
        // keeping the binding names as aliases.
        let mut shipped = q.clone();
        shipped.from = Some(TableRef::Named {
            name: bindings[0].remote_table_name(),
            alias: Some(bindings[0].name.clone()),
        });
        for (i, j) in shipped.joins.iter_mut().enumerate() {
            j.table = TableRef::Named {
                name: bindings[i + 1].remote_table_name(),
                alias: Some(bindings[i + 1].name.clone()),
            };
        }
        // Estimate: first table after filters (rough but monotone).
        let (est, _) = self.binding_estimate(&bindings[0]);
        let schema = output_schema_guess(q, bindings)?;
        Ok(Some(PlanNode {
            op: PlanOp::RemoteQuery {
                source: source.to_string(),
                query: shipped,
                label: "whole query".into(),
            },
            schema,
            est_rows: est,
            est_source: EstSource::Heuristic,
        }))
    }

    /// Length of the initial run of bindings on one shared remote
    /// source whose joins are source-internal equi joins.
    fn remote_prefix_len(&self, q: &Query, bindings: &[Binding]) -> usize {
        let first_source = match &bindings[0].source {
            BindingKind::Table(ts) => match ts.remote_source() {
                Some(s) if !matches!(ts, TableSource::Hybrid { .. }) => s.to_string(),
                _ => return 0,
            },
            _ => return 0,
        };
        let caps = match self.ctx.catalog.sda().source(&first_source) {
            Ok(s) => s.adapter.capabilities(),
            Err(_) => return 0,
        };
        if !caps.cap_joins {
            return 1;
        }
        let mut len = 1;
        for (i, j) in q.joins.iter().enumerate() {
            let b = &bindings[i + 1];
            let same_source = matches!(&b.source, BindingKind::Table(ts)
                if ts.remote_source() == Some(first_source.as_str())
                    && !matches!(ts, TableSource::Hybrid { .. }));
            if !same_source || j.kind != JoinKind::Inner {
                break;
            }
            // The ON must resolve entirely within the prefix.
            let prefix_schema = join_schemas(&bindings[..=i + 1]);
            if equi_keys_within(&j.on, &prefix_schema).is_none() {
                break;
            }
            len = i + 2;
        }
        len
    }

    /// Build the shipped prefix sub-query and its plan node.
    fn ship_prefix(&self, q: &Query, bindings: &[Binding], len: usize) -> Result<PlanNode> {
        let source = match &bindings[0].source {
            BindingKind::Table(ts) => ts.remote_source().expect("checked").to_string(),
            _ => unreachable!("prefix starts with a table"),
        };
        // Needed columns: every column of the query owned by a prefix
        // binding (dedup by output name).
        let mut needed: Vec<(Option<String>, String)> = Vec::new();
        let mut push_cols = |e: &Expr| {
            for (qual, name) in e.columns() {
                if let Some(i) = binding_of_column(bindings, qual.as_deref(), name) {
                    if i < len && !needed.iter().any(|(_, n)| n == name) {
                        needed.push((qual.clone(), name.to_string()));
                    }
                }
            }
        };
        for item in &q.select {
            push_cols(&item.expr);
        }
        for j in &q.joins {
            push_cols(&j.on);
        }
        if let Some(f) = &q.filter {
            push_cols(f);
        }
        for g in &q.group_by {
            push_cols(g);
        }
        if let Some(h) = &q.having {
            push_cols(h);
        }
        for (e, _) in &q.order_by {
            push_cols(e);
        }

        let remote_table_name = |b: &Binding| b.remote_table_name();
        let sub = Query {
            select: needed
                .iter()
                .map(|(qual, name)| SelectItem {
                    expr: Expr::Column {
                        qualifier: qual.clone(),
                        name: name.clone(),
                    },
                    alias: None,
                })
                .collect(),
            from: Some(TableRef::Named {
                name: remote_table_name(&bindings[0]),
                alias: Some(bindings[0].name.clone()),
            }),
            joins: q.joins[..len - 1]
                .iter()
                .enumerate()
                .map(|(i, j)| hana_sql::JoinClause {
                    kind: j.kind,
                    table: TableRef::Named {
                        name: remote_table_name(&bindings[i + 1]),
                        alias: Some(bindings[i + 1].name.clone()),
                    },
                    on: j.on.clone(),
                })
                .collect(),
            filter: bindings[..len]
                .iter()
                .flat_map(|b| b.preds.iter().cloned())
                .reduce(|a, b| a.and(b)),
            hints: q.hints.clone(),
            ..Query::default()
        };
        // Output schema: bare column names typed from the bindings.
        let joined = join_schemas(&bindings[..len]);
        let cols: Vec<ColumnDef> = needed
            .iter()
            .map(|(qual, name)| {
                let e = Expr::Column {
                    qualifier: qual.clone(),
                    name: name.clone(),
                };
                ColumnDef::new(name, infer_type(&e, &joined))
            })
            .collect();
        let est = bindings[..len]
            .iter()
            .map(|b| self.binding_estimate(b).0)
            .fold(f64::MAX, f64::min)
            .max(1.0);
        Ok(PlanNode {
            op: PlanOp::RemoteQuery {
                source,
                query: sub,
                label: "remote prefix".into(),
            },
            schema: Schema::new(cols)?,
            est_rows: est,
            est_source: EstSource::Heuristic,
        })
    }

    // ---- leaves ----

    fn leaf(&self, b: &Binding, hints: &[String]) -> Result<PlanNode> {
        let (est, est_source) = self.binding_estimate(b);
        let lowered = lower_preds(&b.preds);
        let node = match &b.source {
            BindingKind::Function { function, args } => PlanNode {
                op: PlanOp::FunctionScan {
                    binding: b.name.clone(),
                    function: function.clone(),
                    args: args.clone(),
                },
                schema: b.schema.clone(),
                est_rows: est,
                est_source,
            },
            BindingKind::Table(ts) => match ts {
                TableSource::Column(t) => match self.try_index_seek(b, &t.read(), &lowered) {
                    Some(node) => node,
                    None => PlanNode {
                        op: PlanOp::ColumnScan {
                            binding: b.name.clone(),
                            table: b.table.clone(),
                            preds: lowered,
                        },
                        schema: b.schema.clone(),
                        est_rows: est,
                        est_source,
                    },
                },
                TableSource::Row(_) => PlanNode {
                    op: PlanOp::RowScan {
                        binding: b.name.clone(),
                        table: b.table.clone(),
                        preds: lowered,
                    },
                    schema: b.schema.clone(),
                    est_rows: est,
                    est_source,
                },
                TableSource::Distributed(_) => PlanNode {
                    op: PlanOp::DistScan {
                        binding: b.name.clone(),
                        table: b.table.clone(),
                        preds: lowered,
                    },
                    schema: b.schema.clone(),
                    est_rows: est,
                    est_source,
                },
                TableSource::Hybrid { .. } => PlanNode {
                    op: PlanOp::HybridScan {
                        binding: b.name.clone(),
                        table: b.table.clone(),
                        preds: lowered,
                    },
                    schema: b.schema.clone(),
                    est_rows: est,
                    est_source,
                },
                TableSource::Extended { source, .. } | TableSource::Virtual { source, .. } => {
                    // A single remote table accessed without a join
                    // strategy: ship a remote scan sub-query. The
                    // remote side evaluates full SQL, so *every*
                    // binding predicate ships — no local re-check.
                    let sub = Query {
                        from: Some(TableRef::Named {
                            name: b.remote_table_name(),
                            alias: Some(b.name.clone()),
                        }),
                        filter: b.preds.iter().cloned().reduce(|a, c| a.and(c)),
                        hints: hints.to_vec(),
                        ..Query::default()
                    };
                    return Ok(PlanNode {
                        op: PlanOp::RemoteQuery {
                            source: source.clone(),
                            query: sub,
                            label: "remote scan".into(),
                        },
                        schema: b.schema.clone(),
                        est_rows: est,
                        est_source,
                    });
                }
            },
        };
        // Predicates assigned to this binding that the storage layer
        // cannot evaluate (arithmetic, functions, OR trees — anything
        // `pushdown_expr` refuses) re-apply as Filter operators above
        // the leaf; dropping them would change results.
        Ok(wrap_unlowerable(node, &b.preds))
    }

    /// Try to turn a column-table leaf into a secondary-index seek.
    ///
    /// Across the table's indexes, the candidate consuming the longest
    /// equality prefix (ties broken by carrying a range on the next key
    /// column) wins. Pure-range seeks on the leading column are only
    /// worth it when the estimated selected fraction stays at or below
    /// 1/4 — beyond that, the ordered walk touches enough of the key
    /// space that the vectorized full scan is the better skip-scan.
    /// With a persisted synopsis the estimate comes from the statistics
    /// (`stats` provenance); otherwise the index's own live distinct-key
    /// count feeds the heuristic.
    fn try_index_seek(
        &self,
        b: &Binding,
        table: &ColumnTable,
        lowered: &[(String, ColumnPredicate)],
    ) -> Option<PlanNode> {
        struct Candidate<'ix> {
            ix: &'ix hana_columnar::SecondaryIndex,
            prefix: Vec<(String, Value)>,
            range: Option<(String, ColumnPredicate)>,
            used: Vec<bool>,
            key_width: usize,
        }
        if lowered.is_empty() {
            return None;
        }
        let mut best: Option<Candidate> = None;
        for ix in table.indexes() {
            let cols = &ix.def().columns;
            let mut used = vec![false; lowered.len()];
            let mut prefix: Vec<(String, Value)> = Vec::new();
            for col in cols {
                let eq = lowered.iter().enumerate().find_map(|(i, (c, p))| match p {
                    ColumnPredicate::Eq(v) if !used[i] && c == col => Some((i, v.clone())),
                    _ => None,
                });
                let Some((i, v)) = eq else { break };
                used[i] = true;
                prefix.push((col.clone(), v));
            }
            let mut range = None;
            if prefix.len() < cols.len() {
                let next = &cols[prefix.len()];
                let hit = lowered.iter().enumerate().find(|(i, (c, p))| {
                    !used[*i]
                        && c == next
                        && matches!(
                            p,
                            ColumnPredicate::Lt(_)
                                | ColumnPredicate::Le(_)
                                | ColumnPredicate::Gt(_)
                                | ColumnPredicate::Ge(_)
                                | ColumnPredicate::Between(_, _)
                        )
                });
                if let Some((i, (c, p))) = hit {
                    used[i] = true;
                    range = Some((c.clone(), p.clone()));
                }
            }
            if prefix.is_empty() && range.is_none() {
                continue;
            }
            let better = best.as_ref().is_none_or(|cur| {
                (prefix.len(), range.is_some()) > (cur.prefix.len(), cur.range.is_some())
            });
            if better {
                best = Some(Candidate {
                    ix,
                    prefix,
                    range,
                    used,
                    key_width: cols.len(),
                });
            }
        }
        let cand = best?;
        let row_count = table.row_count() as f64;
        let stats = self.ctx.stats.table_stats(&b.table);
        let (est, est_source) = match &stats {
            Some(s) => (estimator::scan_estimate(s, lowered), EstSource::Stats),
            None => {
                // The live index NDV feeds the heuristic: an equality
                // prefix over `k` of `w` key columns selects about
                // `rows / ndv^(k/w)`; range and residual predicates
                // scale by their default selectivities on top. Counting
                // distinct keys walks the index, so it is only paid
                // here, on the statistics-less path.
                let ndv = cand.ix.distinct_keys().max(1) as f64;
                let mut est =
                    row_count / ndv.powf(cand.prefix.len() as f64 / cand.key_width as f64);
                if let Some((_, p)) = &cand.range {
                    est *= p.default_selectivity();
                }
                for (i, (_, p)) in lowered.iter().enumerate() {
                    if !cand.used[i] {
                        est *= p.default_selectivity();
                    }
                }
                (est.max(1.0), EstSource::Heuristic)
            }
        };
        if cand.prefix.is_empty() {
            let seek_preds: Vec<(String, ColumnPredicate)> = cand.range.iter().cloned().collect();
            let fraction = match &stats {
                Some(s) => estimator::scan_estimate(s, &seek_preds) / (s.row_count as f64).max(1.0),
                None => seek_preds
                    .first()
                    .map(|(_, p)| p.default_selectivity())
                    .unwrap_or(1.0),
            };
            if fraction > 0.25 {
                return None;
            }
        }
        let residual: Vec<(String, ColumnPredicate)> = lowered
            .iter()
            .enumerate()
            .filter(|(i, _)| !cand.used[*i])
            .map(|(_, x)| x.clone())
            .collect();
        Some(PlanNode {
            op: PlanOp::IndexSeek {
                binding: b.name.clone(),
                table: b.table.clone(),
                index: cand.ix.def().name.clone(),
                prefix: cand.prefix,
                range: cand.range,
                residual,
            },
            schema: b.schema.clone(),
            est_rows: est,
            est_source,
        })
    }

    // ---- remote join strategies ----

    #[allow(clippy::too_many_arguments)]
    fn plan_remote_join(
        &self,
        acc: PlanNode,
        bindings: &[Binding],
        b: &Binding,
        ts: &TableSource,
        left_key: &str,
        right_key: &str,
        hints: &[String],
    ) -> Result<PlanNode> {
        let source = ts.remote_source().expect("remote binding").to_string();
        let adapter = self.ctx.catalog.sda().source(&source)?.adapter;
        let caps = adapter.capabilities();
        let remote_table = b.remote_table_name();
        let (remote_total, remote_known) = match self.remote_rows_opt(&source, &remote_table) {
            Some(n) => (n, true),
            None => (10_000.0, false),
        };
        let sel: f64 = lower_preds(&b.preds)
            .iter()
            .map(|(col, p)| {
                adapter
                    .estimate_selectivity(&remote_table, col, p)
                    .unwrap_or_else(|| p.default_selectivity())
            })
            .product();
        let remote_filtered = (remote_total * sel).max(1.0);
        // Key synopses: local side from the persisted statistics, remote
        // side from the source's own metadata, when either exists.
        let bare_rk = right_key.rsplit('.').next().unwrap_or(right_key);
        let local_key_ndv = self.key_ndv_of(bindings, left_key);
        let remote_key_ndv = adapter
            .column_distinct(&remote_table, bare_rk)
            .map(|n| n as f64);
        let join_out =
            estimator::join_out(acc.est_rows, remote_filtered, local_key_ndv, remote_key_ndv);
        let situation = JoinSituation {
            local_rows: acc.est_rows,
            remote_total,
            remote_filtered,
            join_out,
            local_width: self.node_width(&acc),
            remote_width: b.schema.len() as f64,
            local_key_ndv: local_key_ndv.unwrap_or(0.0),
            remote_key_ndv: remote_key_ndv.unwrap_or(0.0),
        };
        let est_source = if acc.est_source == EstSource::Stats && remote_known {
            EstSource::Stats
        } else {
            EstSource::Heuristic
        };
        let mut options = vec![FederationStrategy::RemoteScan];
        if caps.cap_semi_join {
            options.push(FederationStrategy::SemiJoin);
        }
        if caps.cap_joins {
            options.push(FederationStrategy::TableRelocation);
        }
        let (strategy, _) = self.ctx.cost.pick(&options, &situation);
        let schema = acc.schema.join(&b.schema)?;
        let est = situation.join_out;
        match strategy {
            FederationStrategy::RemoteScan => {
                let right = self.leaf(b, hints)?;
                let mut node = self.join_node(
                    acc,
                    right,
                    left_key.to_string(),
                    right_key.to_string(),
                    JoinKind::Inner,
                    local_key_ndv,
                    remote_key_ndv,
                )?;
                // The strategy decision already priced this join with
                // the adapter-estimated remote cardinality; keep it.
                node.est_rows = est;
                node.est_source = est_source;
                Ok(node)
            }
            FederationStrategy::SemiJoin => Ok(PlanNode {
                op: PlanOp::SemiJoin {
                    local: Box::new(acc),
                    local_key: left_key.to_string(),
                    source,
                    remote_table: b.remote_table_name(),
                    remote_preds: b.preds.clone(),
                    remote_key: right_key.to_string(),
                    remote_binding: b.name.clone(),
                },
                schema,
                est_rows: est,
                est_source,
            }),
            FederationStrategy::TableRelocation => Ok(PlanNode {
                op: PlanOp::RelocateJoin {
                    local: Box::new(acc),
                    local_key: left_key.to_string(),
                    source,
                    remote_table: b.remote_table_name(),
                    remote_preds: b.preds.clone(),
                    remote_key: right_key.to_string(),
                    remote_binding: b.name.clone(),
                },
                schema,
                est_rows: est,
                est_source,
            }),
            FederationStrategy::UnionPlan => unreachable!("not offered here"),
        }
    }

    // ---- estimation ----

    /// Estimated rows of a binding after its pushed-down predicates,
    /// with the provenance of the estimate. Persisted synopses win;
    /// plan-time heuristics (rebuilt dictionary histograms, default
    /// selectivities) are the fallback.
    fn binding_estimate(&self, b: &Binding) -> (f64, EstSource) {
        let lowered = lower_preds(&b.preds);
        match &b.source {
            BindingKind::Function { .. } => (100.0, EstSource::Heuristic),
            BindingKind::Table(ts) => match ts {
                TableSource::Column(t) => {
                    if let Some(stats) = self.ctx.stats.table_stats(&b.table) {
                        return (estimator::scan_estimate(&stats, &lowered), EstSource::Stats);
                    }
                    let t = t.read();
                    let mut est = t.row_count() as f64;
                    for (col, pred) in &lowered {
                        // Histogram over the ordered dictionary ([16]).
                        if let Some(idx) = t.schema().index_of(col) {
                            let hist = QHistogram::build(&t.value_frequencies(idx), 0, 2.0);
                            est *= hist.selectivity(pred);
                        } else {
                            est *= pred.default_selectivity();
                        }
                    }
                    (
                        est.max(if lowered.is_empty() { 1.0 } else { 0.0 }),
                        EstSource::Heuristic,
                    )
                }
                TableSource::Row(t) => {
                    if let Some(stats) = self.ctx.stats.table_stats(&b.table) {
                        return (estimator::scan_estimate(&stats, &lowered), EstSource::Stats);
                    }
                    let rows = t.read().version_count() as f64;
                    (
                        lowered
                            .iter()
                            .fold(rows, |e, (_, p)| e * p.default_selectivity()),
                        EstSource::Heuristic,
                    )
                }
                TableSource::Distributed(t) => {
                    // Pruning scales the scanned fraction; per-row
                    // selectivity applies on top.
                    let mask = prune_mask(t, &lowered);
                    if let Some(parts) = self.ctx.stats.partition_stats(&b.table) {
                        return (
                            estimator::dist_scan_estimate(&parts, &mask, &lowered),
                            EstSource::Stats,
                        );
                    }
                    let fraction =
                        mask.iter().filter(|&&m| m).count() as f64 / mask.len().max(1) as f64;
                    if let Some(stats) = self.ctx.stats.table_stats(&b.table) {
                        return (
                            (estimator::scan_estimate(&stats, &lowered) * fraction).max(1.0),
                            EstSource::Stats,
                        );
                    }
                    let rows = t.row_count() as f64;
                    let sel: f64 = lowered
                        .iter()
                        .map(|(_, p)| p.default_selectivity())
                        .product();
                    ((rows * fraction * sel).max(1.0), EstSource::Heuristic)
                }
                TableSource::Hybrid {
                    hot,
                    source,
                    cold_table,
                    ..
                } => {
                    let hot_rows = hot.read().row_count() as f64;
                    let cold_rows = self.remote_rows(source, cold_table);
                    let sel: f64 = lowered
                        .iter()
                        .map(|(_, p)| p.default_selectivity())
                        .product();
                    ((hot_rows + cold_rows) * sel, EstSource::Heuristic)
                }
                TableSource::Extended {
                    source,
                    remote_table,
                    ..
                }
                | TableSource::Virtual {
                    source,
                    remote_table,
                    ..
                } => {
                    let total = self.remote_rows(source, remote_table);
                    let sel: f64 = lowered
                        .iter()
                        .map(|(_, p)| p.default_selectivity())
                        .product();
                    ((total * sel).max(1.0), EstSource::Heuristic)
                }
            },
        }
    }

    /// Distinct-count of a (possibly binding-qualified) join key from
    /// the persisted synopsis of its owning binding's table.
    fn key_ndv_of(&self, bindings: &[Binding], key: &str) -> Option<f64> {
        let (qual, name) = match key.split_once('.') {
            Some((q, n)) => (Some(q), n),
            None => (None, key),
        };
        let idx = binding_of_column(bindings, qual, name)?;
        let stats = self.ctx.stats.table_stats(&bindings[idx].table)?;
        estimator::key_ndv(&stats, name)
    }

    /// Width of a plan node in column-equivalents: average row bytes
    /// from the synopsis (8-byte units) when the node scans a
    /// stats-backed table, else its column count.
    fn node_width(&self, node: &PlanNode) -> f64 {
        if let PlanOp::ColumnScan { table, .. }
        | PlanOp::RowScan { table, .. }
        | PlanOp::DistScan { table, .. } = &node.op
        {
            if let Some(s) = self.ctx.stats.table_stats(table) {
                return (s.row_bytes() / 8.0).max(1.0);
            }
        }
        node.schema.len() as f64
    }

    /// Decide broadcast-vs-repartition for a hash join whose probe side
    /// is a distributed scan. Broadcasting ships the build side to every
    /// surviving partition; gathering (the repartition fallback) ships
    /// the probe rows to the coordinator instead. Without statistics on
    /// both sides the decision is deferred to the executor's runtime
    /// row-limit knob.
    fn dist_join_strategy(&self, left: &PlanNode, right: &PlanNode) -> DistJoinStrategy {
        let PlanOp::DistScan { table, preds, .. } = &left.op else {
            return DistJoinStrategy::Runtime;
        };
        if left.est_source != EstSource::Stats || right.est_source != EstSource::Stats {
            return DistJoinStrategy::Runtime;
        }
        let Ok(TableSource::Distributed(t)) = self.ctx.catalog.resolve_table(table) else {
            return DistJoinStrategy::Runtime;
        };
        let mask = prune_mask(&t, preds);
        let surviving = mask.iter().filter(|&&k| k).count().max(1) as f64;
        if right.est_rows * surviving <= left.est_rows {
            DistJoinStrategy::Broadcast
        } else {
            DistJoinStrategy::Repartition
        }
    }

    /// An ndv-aware hash-join node. With a key synopsis on either side
    /// the output is priced under the containment assumption and keeps
    /// the `stats` provenance; otherwise the legacy `min(|L|, |R|)`
    /// heuristic applies.
    #[allow(clippy::too_many_arguments)]
    fn join_node(
        &self,
        left: PlanNode,
        right: PlanNode,
        left_key: String,
        right_key: String,
        kind: JoinKind,
        left_ndv: Option<f64>,
        right_ndv: Option<f64>,
    ) -> Result<PlanNode> {
        let schema = left.schema.join(&right.schema)?;
        let (est, est_source) = if left_ndv.is_some() || right_ndv.is_some() {
            (
                estimator::join_out(left.est_rows, right.est_rows, left_ndv, right_ndv),
                left.est_source.and(right.est_source),
            )
        } else {
            (
                left.est_rows.min(right.est_rows).max(1.0),
                EstSource::Heuristic,
            )
        };
        let dist = self.dist_join_strategy(&left, &right);
        Ok(PlanNode {
            op: PlanOp::HashJoin {
                left: Box::new(left),
                right: Box::new(right),
                left_key,
                right_key,
                kind,
                dist,
            },
            schema,
            est_rows: est,
            est_source,
        })
    }

    fn remote_rows_opt(&self, source: &str, table: &str) -> Option<f64> {
        self.ctx
            .catalog
            .sda()
            .source(source)
            .ok()
            .and_then(|s| s.adapter.table_stats(table).ok())
            .map(|s| s.row_count as f64)
    }

    fn remote_rows(&self, source: &str, table: &str) -> f64 {
        self.remote_rows_opt(source, table).unwrap_or(10_000.0)
    }
}

/// Partition-prune mask of a distributed table under lowered predicates
/// (`true` = the partition may contain matching rows).
fn prune_mask(
    t: &hana_dist::DistTable,
    preds: &[(String, hana_columnar::ColumnPredicate)],
) -> Vec<bool> {
    let mut mask = vec![true; t.node_count()];
    for (col, pred) in preds {
        if col == t.spec().column() {
            if let Some(c) = t.spec().prune(pred) {
                for (m, keep) in mask.iter_mut().zip(&c) {
                    *m &= *keep;
                }
            }
        }
    }
    mask
}

impl Binding {
    /// The table name to use in a shipped sub-query (the *remote* name
    /// for virtual/extended tables).
    fn remote_table_name(&self) -> String {
        match &self.source {
            BindingKind::Table(TableSource::Virtual { remote_table, .. })
            | BindingKind::Table(TableSource::Extended { remote_table, .. }) => {
                remote_table.clone()
            }
            _ => self.table.clone(),
        }
    }
}

/// Lower assigned conjuncts to column predicates, dropping the ones that
/// cannot be lowered (they are still shipped/evaluated as expressions).
fn lower_preds(preds: &[Expr]) -> Vec<(String, hana_columnar::ColumnPredicate)> {
    preds.iter().filter_map(crate::pushdown_expr).collect()
}

/// Wrap a local leaf in Filter operators for every binding predicate
/// that did not lower to a [`ColumnPredicate`] — the expression engine
/// (bytecode VM with tree-walk fallback) evaluates those per block.
fn wrap_unlowerable(mut node: PlanNode, preds: &[Expr]) -> PlanNode {
    for pred in preds {
        if crate::pushdown_expr(pred).is_some() {
            continue;
        }
        let schema = node.schema.clone();
        let est = (node.est_rows * 0.5).max(1.0);
        let est_source = node.est_source;
        node = PlanNode {
            op: PlanOp::Filter {
                input: Box::new(node),
                pred: pred.clone(),
            },
            schema,
            est_rows: est,
            est_source,
        };
    }
    node
}

/// Which binding owns column `(qualifier, name)`? `None` if ambiguous or
/// unknown.
fn binding_of_column(bindings: &[Binding], qualifier: Option<&str>, name: &str) -> Option<usize> {
    let mut found = None;
    for (i, b) in bindings.iter().enumerate() {
        let hit = match qualifier {
            Some(q) => q == b.name && b.schema.index_of(&format!("{q}.{name}")).is_some(),
            None => b.schema.index_of(&format!("{}.{name}", b.name)).is_some(),
        };
        if hit {
            if found.is_some() {
                return None; // ambiguous
            }
            found = Some(i);
        }
    }
    found
}

fn join_schemas(bindings: &[Binding]) -> Schema {
    let mut schema = Schema::default();
    for b in bindings {
        schema = schema.join(&b.schema).unwrap_or_else(|_| schema.clone());
    }
    schema
}

/// Extract equi-join keys: one side in `left`, the other in `right`.
fn equi_keys(on: &Expr, left: &Schema, right: &Schema) -> Result<(String, String)> {
    if let Expr::Binary {
        left: l,
        op: BinOp::Eq,
        right: r,
    } = on
    {
        if let (
            Expr::Column {
                qualifier: lq,
                name: ln,
            },
            Expr::Column {
                qualifier: rq,
                name: rn,
            },
        ) = (l.as_ref(), r.as_ref())
        {
            let lref = |q: &Option<String>, n: &str| {
                q.as_ref()
                    .map(|q| format!("{q}.{n}"))
                    .unwrap_or_else(|| n.to_string())
            };
            let (a, b) = (lref(lq, ln), lref(rq, rn));
            if resolves(left, &a) && resolves(right, &b) {
                return Ok((a, b));
            }
            if resolves(left, &b) && resolves(right, &a) {
                return Ok((b, a));
            }
        }
    }
    Err(HanaError::Plan(format!("not an equi join: {on}")))
}

/// Both keys within one (prefix) schema?
fn equi_keys_within(on: &Expr, schema: &Schema) -> Option<()> {
    if let Expr::Binary {
        left,
        op: BinOp::Eq,
        right,
    } = on
    {
        if let (
            Expr::Column {
                qualifier: lq,
                name: ln,
            },
            Expr::Column {
                qualifier: rq,
                name: rn,
            },
        ) = (left.as_ref(), right.as_ref())
        {
            let ok = |q: &Option<String>, n: &str| {
                hana_sql::resolve_column(schema, q.as_deref(), n).is_ok()
            };
            if ok(lq, ln) && ok(rq, rn) {
                return Some(());
            }
        }
    }
    None
}

fn resolves(schema: &Schema, key: &str) -> bool {
    let (q, n) = match key.split_once('.') {
        Some((q, n)) => (Some(q), n),
        None => (None, key),
    };
    hana_sql::resolve_column(schema, q, n).is_ok()
}

fn nested_loop_node(left: PlanNode, right: PlanNode, on: Expr) -> Result<PlanNode> {
    let schema = left.schema.join(&right.schema)?;
    let est = (left.est_rows * right.est_rows * 0.1).max(1.0);
    Ok(PlanNode {
        op: PlanOp::NestedLoopJoin {
            left: Box::new(left),
            right: Box::new(right),
            on,
        },
        schema,
        est_rows: est,
        est_source: EstSource::Heuristic,
    })
}

/// Rough output schema for a whole-shipped query: reuse the finishing
/// logic's naming over the joined binding schemas.
fn output_schema_guess(q: &Query, bindings: &[Binding]) -> Result<Schema> {
    let joined = join_schemas(bindings);
    if q.select.is_empty() {
        return Ok(joined);
    }
    let mut cols = Vec::with_capacity(q.select.len());
    let mut seen = std::collections::HashSet::new();
    for item in &q.select {
        let mut name = item
            .alias
            .clone()
            .unwrap_or_else(|| item.expr.default_name());
        if !seen.insert(name.clone()) {
            name = format!("{name}_{}", cols.len());
            seen.insert(name.clone());
        }
        cols.push(ColumnDef::new(&name, infer_type(&item.expr, &joined)));
    }
    Schema::new(cols)
}
