//! The federated, cost-based planner.
//!
//! Implements the placement logic of §3.1 and §4.2:
//!
//! 1. **Whole-query shipping** — if every source lives at one remote
//!    source whose capabilities cover the query shape, the entire query
//!    is pushed below the distributed exchange operator (the Figure 12
//!    plan), letting the remote cache of §4.4 apply.
//! 2. **Remote-prefix shipping** — otherwise, the maximal prefix of the
//!    left-deep join chain that lives at one source is shipped as a
//!    sub-query ("parts of a query may even be shipped to Hive"); its
//!    result joins with local tables in HANA (the Figure 13 situation
//!    for queries mixing federated and local tables).
//! 3. **Strategy selection** — each remaining remote table entering a
//!    join is accessed via the cheapest of *remote scan*, *semijoin* and
//!    *table relocation* (§3.1, Figure 7); hybrid tables always use the
//!    *union plan* at scan level.

use hana_sql::finish::{aggregate_output_schema, collect_aggregates, infer_type};
use hana_sql::{BinOp, Expr, JoinKind, Query, SelectItem, TableRef};
use hana_types::{ColumnDef, HanaError, Result, Schema};

use crate::catalog::{Catalog, TableSource};
use crate::cost::{CostModel, JoinSituation};
use crate::histogram::QHistogram;
use crate::plan::{FederationStrategy, PlanNode, PlanOp};

/// The planner.
pub struct Planner<'a> {
    catalog: &'a dyn Catalog,
    cost: CostModel,
}

/// One resolved FROM/JOIN binding.
struct Binding {
    name: String,
    table: String,
    source: BindingKind,
    /// Schema qualified with the binding name.
    schema: Schema,
    /// Conjuncts assigned to this binding.
    preds: Vec<Expr>,
}

enum BindingKind {
    Table(TableSource),
    Function { function: String, args: Vec<Expr> },
}

impl<'a> Planner<'a> {
    /// A planner over `catalog` with the default cost model.
    pub fn new(catalog: &'a dyn Catalog) -> Planner<'a> {
        Planner {
            catalog,
            cost: CostModel::default(),
        }
    }

    /// Override the cost model (ablation benches).
    pub fn with_cost_model(catalog: &'a dyn Catalog, cost: CostModel) -> Planner<'a> {
        Planner { catalog, cost }
    }

    /// Compile a query into a physical plan.
    pub fn plan(&self, q: &Query) -> Result<PlanNode> {
        let mut bindings = self.resolve_bindings(q)?;

        // Partition WHERE conjuncts: per-binding vs residual.
        let mut residual: Vec<Expr> = Vec::new();
        if let Some(f) = &q.filter {
            for c in f.conjuncts() {
                match self.owning_binding(&bindings, c) {
                    Some(i) => bindings[i].preds.push(c.clone()),
                    None => residual.push(c.clone()),
                }
            }
        }

        // 1. Whole-query shipping.
        if let Some(node) = self.try_whole_ship(q, &bindings)? {
            return Ok(node);
        }

        // 2. Left-deep chain with remote-prefix shipping.
        let prefix_len = self.remote_prefix_len(q, &bindings);
        let mut acc = if prefix_len >= 2 {
            self.ship_prefix(q, &bindings, prefix_len)?
        } else {
            self.leaf(&bindings[0], &q.hints)?
        };
        let consumed = if prefix_len >= 2 { prefix_len } else { 1 };

        // 3. Fold remaining joins.
        for (idx, join) in q.joins.iter().enumerate().skip(consumed.saturating_sub(1)) {
            let b = &bindings[idx + 1];
            let keys = equi_keys(&join.on, &acc.schema, &b.schema);
            match (&b.source, keys) {
                // Remote single table with an equi join: strategy choice.
                (BindingKind::Table(ts), Ok((lk, rk)))
                    if ts.remote_source().is_some()
                        && !matches!(ts, TableSource::Hybrid { .. })
                        && join.kind == JoinKind::Inner =>
                {
                    acc = self.plan_remote_join(acc, b, ts, &lk, &rk, &q.hints)?;
                }
                (_, Ok((lk, rk))) => {
                    let right = self.leaf(b, &q.hints)?;
                    acc = join_node(acc, right, lk, rk, join.kind)?;
                }
                (_, Err(_)) => {
                    let right = self.leaf(b, &q.hints)?;
                    acc = nested_loop_node(acc, right, join.on.clone())?;
                }
            }
        }

        // 4. Residual filter.
        for pred in residual {
            let est = acc.est_rows * 0.5;
            let schema = acc.schema.clone();
            acc = PlanNode {
                op: PlanOp::Filter {
                    input: Box::new(acc),
                    pred,
                },
                schema,
                est_rows: est.max(1.0),
            };
        }

        // 5. Aggregation.
        let aggs = collect_aggregates(q);
        if !q.group_by.is_empty() || !aggs.is_empty() {
            let schema = aggregate_output_schema(q, &acc.schema)?;
            let est = if q.group_by.is_empty() {
                1.0
            } else {
                (acc.est_rows / 10.0).max(1.0)
            };
            acc = PlanNode {
                op: PlanOp::Aggregate {
                    input: Box::new(acc),
                    group_by: q.group_by.clone(),
                    aggs,
                },
                schema,
                est_rows: est,
            };
        }

        // 6. Epilogue.
        let est = q.limit.map(|n| n as f64).unwrap_or(acc.est_rows);
        let schema = acc.schema.clone();
        Ok(PlanNode {
            op: PlanOp::Finish {
                input: Box::new(acc),
                query: q.clone(),
            },
            schema,
            est_rows: est,
        })
    }

    // ---- binding resolution ----

    fn resolve_bindings(&self, q: &Query) -> Result<Vec<Binding>> {
        let from = q
            .from
            .as_ref()
            .ok_or_else(|| HanaError::Plan("query without FROM clause".into()))?;
        let mut bindings = vec![self.resolve_ref(from)?];
        for j in &q.joins {
            bindings.push(self.resolve_ref(&j.table)?);
        }
        Ok(bindings)
    }

    fn resolve_ref(&self, t: &TableRef) -> Result<Binding> {
        match t {
            TableRef::Named { name, alias } => {
                let source = self.catalog.resolve_table(name)?;
                let binding = alias.clone().unwrap_or_else(|| name.clone());
                let schema = source.schema().qualified(&binding);
                Ok(Binding {
                    name: binding,
                    table: name.clone(),
                    source: BindingKind::Table(source),
                    schema,
                    preds: Vec::new(),
                })
            }
            TableRef::Function { name, args, alias } => {
                let f = self.catalog.resolve_function(name)?;
                let binding = alias.clone().unwrap_or_else(|| name.clone());
                let schema = f.schema().qualified(&binding);
                Ok(Binding {
                    name: binding,
                    table: name.clone(),
                    source: BindingKind::Function {
                        function: name.clone(),
                        args: args.clone(),
                    },
                    schema,
                    preds: Vec::new(),
                })
            }
            TableRef::Subquery { .. } => Err(HanaError::Unsupported(
                "derived tables are not supported by the federated planner yet".into(),
            )),
        }
    }

    /// The unique binding that owns every column of `e`, if any.
    fn owning_binding(&self, bindings: &[Binding], e: &Expr) -> Option<usize> {
        let cols = e.columns();
        if cols.is_empty() {
            return None;
        }
        let mut owner = None;
        for (q, name) in cols {
            let idx = binding_of_column(bindings, q.as_deref(), name)?;
            match owner {
                None => owner = Some(idx),
                Some(o) if o == idx => {}
                _ => return None,
            }
        }
        owner
    }

    // ---- whole-query shipping ----

    fn try_whole_ship(&self, q: &Query, bindings: &[Binding]) -> Result<Option<PlanNode>> {
        let mut source: Option<&str> = None;
        for b in bindings {
            let BindingKind::Table(ts) = &b.source else {
                return Ok(None);
            };
            if matches!(ts, TableSource::Hybrid { .. }) {
                return Ok(None);
            }
            match (source, ts.remote_source()) {
                (_, None) => return Ok(None),
                (None, Some(s)) => source = Some(s),
                (Some(a), Some(b)) if a == b => {}
                _ => return Ok(None),
            }
        }
        let Some(source) = source else {
            return Ok(None);
        };
        let caps = self.catalog.sda().source(source)?.adapter.capabilities();
        if !caps.supports_query(q) {
            return Ok(None);
        }
        // Rewrite local virtual-table names to their remote names,
        // keeping the binding names as aliases.
        let mut shipped = q.clone();
        shipped.from = Some(TableRef::Named {
            name: bindings[0].remote_table_name(),
            alias: Some(bindings[0].name.clone()),
        });
        for (i, j) in shipped.joins.iter_mut().enumerate() {
            j.table = TableRef::Named {
                name: bindings[i + 1].remote_table_name(),
                alias: Some(bindings[i + 1].name.clone()),
            };
        }
        // Estimate: first table after filters (rough but monotone).
        let est = self.binding_estimate(&bindings[0]);
        let schema = output_schema_guess(q, bindings)?;
        Ok(Some(PlanNode {
            op: PlanOp::RemoteQuery {
                source: source.to_string(),
                query: shipped,
                label: "whole query".into(),
            },
            schema,
            est_rows: est,
        }))
    }

    /// Length of the initial run of bindings on one shared remote
    /// source whose joins are source-internal equi joins.
    fn remote_prefix_len(&self, q: &Query, bindings: &[Binding]) -> usize {
        let first_source = match &bindings[0].source {
            BindingKind::Table(ts) => match ts.remote_source() {
                Some(s) if !matches!(ts, TableSource::Hybrid { .. }) => s.to_string(),
                _ => return 0,
            },
            _ => return 0,
        };
        let caps = match self.catalog.sda().source(&first_source) {
            Ok(s) => s.adapter.capabilities(),
            Err(_) => return 0,
        };
        if !caps.cap_joins {
            return 1;
        }
        let mut len = 1;
        for (i, j) in q.joins.iter().enumerate() {
            let b = &bindings[i + 1];
            let same_source = matches!(&b.source, BindingKind::Table(ts)
                if ts.remote_source() == Some(first_source.as_str())
                    && !matches!(ts, TableSource::Hybrid { .. }));
            if !same_source || j.kind != JoinKind::Inner {
                break;
            }
            // The ON must resolve entirely within the prefix.
            let prefix_schema = join_schemas(&bindings[..=i + 1]);
            if equi_keys_within(&j.on, &prefix_schema).is_none() {
                break;
            }
            len = i + 2;
        }
        len
    }

    /// Build the shipped prefix sub-query and its plan node.
    fn ship_prefix(&self, q: &Query, bindings: &[Binding], len: usize) -> Result<PlanNode> {
        let source = match &bindings[0].source {
            BindingKind::Table(ts) => ts.remote_source().expect("checked").to_string(),
            _ => unreachable!("prefix starts with a table"),
        };
        // Needed columns: every column of the query owned by a prefix
        // binding (dedup by output name).
        let mut needed: Vec<(Option<String>, String)> = Vec::new();
        let mut push_cols = |e: &Expr| {
            for (qual, name) in e.columns() {
                if let Some(i) = binding_of_column(bindings, qual.as_deref(), name) {
                    if i < len && !needed.iter().any(|(_, n)| n == name) {
                        needed.push((qual.clone(), name.to_string()));
                    }
                }
            }
        };
        for item in &q.select {
            push_cols(&item.expr);
        }
        for j in &q.joins {
            push_cols(&j.on);
        }
        if let Some(f) = &q.filter {
            push_cols(f);
        }
        for g in &q.group_by {
            push_cols(g);
        }
        if let Some(h) = &q.having {
            push_cols(h);
        }
        for (e, _) in &q.order_by {
            push_cols(e);
        }

        let remote_table_name = |b: &Binding| b.remote_table_name();
        let sub = Query {
            select: needed
                .iter()
                .map(|(qual, name)| SelectItem {
                    expr: Expr::Column {
                        qualifier: qual.clone(),
                        name: name.clone(),
                    },
                    alias: None,
                })
                .collect(),
            from: Some(TableRef::Named {
                name: remote_table_name(&bindings[0]),
                alias: Some(bindings[0].name.clone()),
            }),
            joins: q.joins[..len - 1]
                .iter()
                .enumerate()
                .map(|(i, j)| hana_sql::JoinClause {
                    kind: j.kind,
                    table: TableRef::Named {
                        name: remote_table_name(&bindings[i + 1]),
                        alias: Some(bindings[i + 1].name.clone()),
                    },
                    on: j.on.clone(),
                })
                .collect(),
            filter: bindings[..len]
                .iter()
                .flat_map(|b| b.preds.iter().cloned())
                .reduce(|a, b| a.and(b)),
            hints: q.hints.clone(),
            ..Query::default()
        };
        // Output schema: bare column names typed from the bindings.
        let joined = join_schemas(&bindings[..len]);
        let cols: Vec<ColumnDef> = needed
            .iter()
            .map(|(qual, name)| {
                let e = Expr::Column {
                    qualifier: qual.clone(),
                    name: name.clone(),
                };
                ColumnDef::new(name, infer_type(&e, &joined))
            })
            .collect();
        let est = bindings[..len]
            .iter()
            .map(|b| self.binding_estimate(b))
            .fold(f64::MAX, f64::min)
            .max(1.0);
        Ok(PlanNode {
            op: PlanOp::RemoteQuery {
                source,
                query: sub,
                label: "remote prefix".into(),
            },
            schema: Schema::new(cols)?,
            est_rows: est,
        })
    }

    // ---- leaves ----

    fn leaf(&self, b: &Binding, hints: &[String]) -> Result<PlanNode> {
        let est = self.binding_estimate(b);
        let lowered = lower_preds(&b.preds);
        match &b.source {
            BindingKind::Function { function, args } => Ok(PlanNode {
                op: PlanOp::FunctionScan {
                    binding: b.name.clone(),
                    function: function.clone(),
                    args: args.clone(),
                },
                schema: b.schema.clone(),
                est_rows: est,
            }),
            BindingKind::Table(ts) => match ts {
                TableSource::Column(_) => Ok(PlanNode {
                    op: PlanOp::ColumnScan {
                        binding: b.name.clone(),
                        table: b.table.clone(),
                        preds: lowered,
                    },
                    schema: b.schema.clone(),
                    est_rows: est,
                }),
                TableSource::Row(_) => Ok(PlanNode {
                    op: PlanOp::RowScan {
                        binding: b.name.clone(),
                        table: b.table.clone(),
                        preds: lowered,
                    },
                    schema: b.schema.clone(),
                    est_rows: est,
                }),
                TableSource::Distributed(_) => Ok(PlanNode {
                    op: PlanOp::DistScan {
                        binding: b.name.clone(),
                        table: b.table.clone(),
                        preds: lowered,
                    },
                    schema: b.schema.clone(),
                    est_rows: est,
                }),
                TableSource::Hybrid { .. } => Ok(PlanNode {
                    op: PlanOp::HybridScan {
                        binding: b.name.clone(),
                        table: b.table.clone(),
                        preds: lowered,
                    },
                    schema: b.schema.clone(),
                    est_rows: est,
                }),
                TableSource::Extended { source, .. } | TableSource::Virtual { source, .. } => {
                    // A single remote table accessed without a join
                    // strategy: ship a remote scan sub-query.
                    let sub = Query {
                        from: Some(TableRef::Named {
                            name: b.remote_table_name(),
                            alias: Some(b.name.clone()),
                        }),
                        filter: b.preds.iter().cloned().reduce(|a, c| a.and(c)),
                        hints: hints.to_vec(),
                        ..Query::default()
                    };
                    Ok(PlanNode {
                        op: PlanOp::RemoteQuery {
                            source: source.clone(),
                            query: sub,
                            label: "remote scan".into(),
                        },
                        schema: b.schema.clone(),
                        est_rows: est,
                    })
                }
            },
        }
    }

    // ---- remote join strategies ----

    fn plan_remote_join(
        &self,
        acc: PlanNode,
        b: &Binding,
        ts: &TableSource,
        left_key: &str,
        right_key: &str,
        hints: &[String],
    ) -> Result<PlanNode> {
        let source = ts.remote_source().expect("remote binding").to_string();
        let adapter = self.catalog.sda().source(&source)?.adapter;
        let caps = adapter.capabilities();
        let remote_table = b.remote_table_name();
        let remote_total = self.remote_rows(&source, &remote_table);
        let sel: f64 = lower_preds(&b.preds)
            .iter()
            .map(|(col, p)| {
                adapter
                    .estimate_selectivity(&remote_table, col, p)
                    .unwrap_or_else(|| p.default_selectivity())
            })
            .product();
        let remote_filtered = (remote_total * sel).max(1.0);
        let situation = JoinSituation {
            local_rows: acc.est_rows,
            remote_total,
            remote_filtered,
            join_out: acc.est_rows.min(remote_filtered).max(1.0),
            local_width: acc.schema.len() as f64,
            remote_width: b.schema.len() as f64,
        };
        let mut options = vec![FederationStrategy::RemoteScan];
        if caps.cap_semi_join {
            options.push(FederationStrategy::SemiJoin);
        }
        if caps.cap_joins {
            options.push(FederationStrategy::TableRelocation);
        }
        let (strategy, _) = self.cost.pick(&options, &situation);
        let schema = acc.schema.join(&b.schema)?;
        let est = situation.join_out;
        match strategy {
            FederationStrategy::RemoteScan => {
                let right = self.leaf(b, hints)?;
                join_node(
                    acc,
                    right,
                    left_key.to_string(),
                    right_key.to_string(),
                    JoinKind::Inner,
                )
            }
            FederationStrategy::SemiJoin => Ok(PlanNode {
                op: PlanOp::SemiJoin {
                    local: Box::new(acc),
                    local_key: left_key.to_string(),
                    source,
                    remote_table: b.remote_table_name(),
                    remote_preds: b.preds.clone(),
                    remote_key: right_key.to_string(),
                    remote_binding: b.name.clone(),
                },
                schema,
                est_rows: est,
            }),
            FederationStrategy::TableRelocation => Ok(PlanNode {
                op: PlanOp::RelocateJoin {
                    local: Box::new(acc),
                    local_key: left_key.to_string(),
                    source,
                    remote_table: b.remote_table_name(),
                    remote_preds: b.preds.clone(),
                    remote_key: right_key.to_string(),
                    remote_binding: b.name.clone(),
                },
                schema,
                est_rows: est,
            }),
            FederationStrategy::UnionPlan => unreachable!("not offered here"),
        }
    }

    // ---- estimation ----

    fn binding_estimate(&self, b: &Binding) -> f64 {
        let lowered = lower_preds(&b.preds);
        match &b.source {
            BindingKind::Function { .. } => 100.0,
            BindingKind::Table(ts) => match ts {
                TableSource::Column(t) => {
                    let t = t.read();
                    let mut est = t.row_count() as f64;
                    for (col, pred) in &lowered {
                        // Histogram over the ordered dictionary ([16]).
                        if let Some(idx) = t.schema().index_of(col) {
                            let hist = QHistogram::build(&t.value_frequencies(idx), 0, 2.0);
                            est *= hist.selectivity(pred);
                        } else {
                            est *= pred.default_selectivity();
                        }
                    }
                    est.max(if lowered.is_empty() { 1.0 } else { 0.0 })
                }
                TableSource::Row(t) => {
                    let rows = t.read().version_count() as f64;
                    lowered
                        .iter()
                        .fold(rows, |e, (_, p)| e * p.default_selectivity())
                }
                TableSource::Distributed(t) => {
                    // Pruning scales the scanned fraction; per-row
                    // selectivity applies on top.
                    let rows = t.row_count() as f64;
                    let outcome_fraction = {
                        let mut mask = vec![true; t.node_count()];
                        for (col, pred) in &lowered {
                            if col == t.spec().column() {
                                if let Some(c) = t.spec().prune(pred) {
                                    for (m, keep) in mask.iter_mut().zip(&c) {
                                        *m &= *keep;
                                    }
                                }
                            }
                        }
                        mask.iter().filter(|&&b| b).count() as f64 / mask.len().max(1) as f64
                    };
                    let sel: f64 = lowered
                        .iter()
                        .map(|(_, p)| p.default_selectivity())
                        .product();
                    (rows * outcome_fraction * sel).max(1.0)
                }
                TableSource::Hybrid {
                    hot,
                    source,
                    cold_table,
                    ..
                } => {
                    let hot_rows = hot.read().row_count() as f64;
                    let cold_rows = self.remote_rows(source, cold_table);
                    let sel: f64 = lowered
                        .iter()
                        .map(|(_, p)| p.default_selectivity())
                        .product();
                    (hot_rows + cold_rows) * sel
                }
                TableSource::Extended {
                    source,
                    remote_table,
                    ..
                }
                | TableSource::Virtual {
                    source,
                    remote_table,
                    ..
                } => {
                    let total = self.remote_rows(source, remote_table);
                    let sel: f64 = lowered
                        .iter()
                        .map(|(_, p)| p.default_selectivity())
                        .product();
                    (total * sel).max(1.0)
                }
            },
        }
    }

    fn remote_rows(&self, source: &str, table: &str) -> f64 {
        self.catalog
            .sda()
            .source(source)
            .and_then(|s| s.adapter.table_stats(table))
            .map(|s| s.row_count as f64)
            .unwrap_or(10_000.0)
    }
}

impl Binding {
    /// The table name to use in a shipped sub-query (the *remote* name
    /// for virtual/extended tables).
    fn remote_table_name(&self) -> String {
        match &self.source {
            BindingKind::Table(TableSource::Virtual { remote_table, .. })
            | BindingKind::Table(TableSource::Extended { remote_table, .. }) => {
                remote_table.clone()
            }
            _ => self.table.clone(),
        }
    }
}

/// Lower assigned conjuncts to column predicates, dropping the ones that
/// cannot be lowered (they are still shipped/evaluated as expressions).
fn lower_preds(preds: &[Expr]) -> Vec<(String, hana_columnar::ColumnPredicate)> {
    preds.iter().filter_map(crate::pushdown_expr).collect()
}

/// Which binding owns column `(qualifier, name)`? `None` if ambiguous or
/// unknown.
fn binding_of_column(bindings: &[Binding], qualifier: Option<&str>, name: &str) -> Option<usize> {
    let mut found = None;
    for (i, b) in bindings.iter().enumerate() {
        let hit = match qualifier {
            Some(q) => q == b.name && b.schema.index_of(&format!("{q}.{name}")).is_some(),
            None => b.schema.index_of(&format!("{}.{name}", b.name)).is_some(),
        };
        if hit {
            if found.is_some() {
                return None; // ambiguous
            }
            found = Some(i);
        }
    }
    found
}

fn join_schemas(bindings: &[Binding]) -> Schema {
    let mut schema = Schema::default();
    for b in bindings {
        schema = schema.join(&b.schema).unwrap_or_else(|_| schema.clone());
    }
    schema
}

/// Extract equi-join keys: one side in `left`, the other in `right`.
fn equi_keys(on: &Expr, left: &Schema, right: &Schema) -> Result<(String, String)> {
    if let Expr::Binary {
        left: l,
        op: BinOp::Eq,
        right: r,
    } = on
    {
        if let (
            Expr::Column {
                qualifier: lq,
                name: ln,
            },
            Expr::Column {
                qualifier: rq,
                name: rn,
            },
        ) = (l.as_ref(), r.as_ref())
        {
            let lref = |q: &Option<String>, n: &str| {
                q.as_ref()
                    .map(|q| format!("{q}.{n}"))
                    .unwrap_or_else(|| n.to_string())
            };
            let (a, b) = (lref(lq, ln), lref(rq, rn));
            if resolves(left, &a) && resolves(right, &b) {
                return Ok((a, b));
            }
            if resolves(left, &b) && resolves(right, &a) {
                return Ok((b, a));
            }
        }
    }
    Err(HanaError::Plan(format!("not an equi join: {on}")))
}

/// Both keys within one (prefix) schema?
fn equi_keys_within(on: &Expr, schema: &Schema) -> Option<()> {
    if let Expr::Binary {
        left,
        op: BinOp::Eq,
        right,
    } = on
    {
        if let (
            Expr::Column {
                qualifier: lq,
                name: ln,
            },
            Expr::Column {
                qualifier: rq,
                name: rn,
            },
        ) = (left.as_ref(), right.as_ref())
        {
            let ok = |q: &Option<String>, n: &str| {
                hana_sql::resolve_column(schema, q.as_deref(), n).is_ok()
            };
            if ok(lq, ln) && ok(rq, rn) {
                return Some(());
            }
        }
    }
    None
}

fn resolves(schema: &Schema, key: &str) -> bool {
    let (q, n) = match key.split_once('.') {
        Some((q, n)) => (Some(q), n),
        None => (None, key),
    };
    hana_sql::resolve_column(schema, q, n).is_ok()
}

fn join_node(
    left: PlanNode,
    right: PlanNode,
    left_key: String,
    right_key: String,
    kind: JoinKind,
) -> Result<PlanNode> {
    let schema = left.schema.join(&right.schema)?;
    let est = left.est_rows.min(right.est_rows).max(1.0);
    Ok(PlanNode {
        op: PlanOp::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            left_key,
            right_key,
            kind,
        },
        schema,
        est_rows: est,
    })
}

fn nested_loop_node(left: PlanNode, right: PlanNode, on: Expr) -> Result<PlanNode> {
    let schema = left.schema.join(&right.schema)?;
    let est = (left.est_rows * right.est_rows * 0.1).max(1.0);
    Ok(PlanNode {
        op: PlanOp::NestedLoopJoin {
            left: Box::new(left),
            right: Box::new(right),
            on,
        },
        schema,
        est_rows: est,
    })
}

/// Rough output schema for a whole-shipped query: reuse the finishing
/// logic's naming over the joined binding schemas.
fn output_schema_guess(q: &Query, bindings: &[Binding]) -> Result<Schema> {
    let joined = join_schemas(bindings);
    if q.select.is_empty() {
        return Ok(joined);
    }
    let mut cols = Vec::with_capacity(q.select.len());
    let mut seen = std::collections::HashSet::new();
    for item in &q.select {
        let mut name = item
            .alias
            .clone()
            .unwrap_or_else(|| item.expr.default_name());
        if !seen.insert(name.clone()) {
            name = format!("{name}_{}", cols.len());
            seen.insert(name.clone());
        }
        cols.push(ColumnDef::new(&name, infer_type(&item.expr, &joined)));
    }
    Schema::new(cols)
}
