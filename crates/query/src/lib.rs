//! # hana-query
//!
//! The federated query processor of the platform (§3.1 "Query
//! Processing" + §4.2): a cost-based planner with q-error-bounded
//! histograms, placement analysis over local / extended / remote
//! sources, the four federation strategies of the paper (remote scan,
//! semijoin, table relocation, union plan), whole-query and
//! remote-prefix shipping below the distributed exchange operator, and a
//! row-at-a-time executor with hash joins and hash aggregation.
//!
//! The entry points are [`execute_query`] and [`explain_query`]; the
//! platform facade (`hana-core`) implements [`Catalog`] and routes SQL
//! here.

mod catalog;
mod compile;
mod context;
mod cost;
mod estimator;
mod executor;
mod hash;
mod histogram;
mod knobs;
mod plan;
mod planner;
mod stats;
mod vm;

pub use catalog::{Catalog, TableFunction, TableSource};
pub use compile::compile_expr;
pub use context::{PlannerContext, PlannerKnobs};
pub use cost::{CostModel, JoinSituation};
pub use executor::{
    execute_plan, execute_plan_with, execute_query, execute_query_with, explain_query,
    BROADCAST_BUILD_ROW_LIMIT, PARALLEL_ROW_THRESHOLD,
};
pub use hash::{FxBuildHasher, FxHashMap, FxHasher};
pub use histogram::{Bucket, QHistogram};
pub use knobs::{
    broadcast_build_row_limit, compiled_expressions, override_broadcast_build_row_limit,
    override_compiled_expressions, BroadcastLimitGuard, CompiledExpressionsGuard,
    ENV_BROADCAST_BUILD_ROW_LIMIT, ENV_COMPILED_EXPRESSIONS,
};
pub use plan::{DistJoinStrategy, EstSource, FederationStrategy, PlanNode, PlanOp};
pub use planner::Planner;
pub use stats::{MemoryStatsProvider, NoStats, StatsProvider, NO_STATS};
pub use vm::{ArithOp, CmpOp, Op, Program, Reg};

/// Lower a conjunct into a pushable column predicate (re-exported from
/// SDA so the planner and external callers share one definition).
pub fn pushdown_expr(e: &hana_sql::Expr) -> Option<(String, hana_columnar::ColumnPredicate)> {
    hana_sda::expr_to_column_predicate(e)
}
