//! Runtime-tunable query-engine knobs.
//!
//! Every knob resolves, most-specific first:
//!
//! 1. a thread-scoped override installed with its `override_*` function
//!    (the session layer wraps each statement of a session that
//!    customized the knob); guards nest and restore on drop;
//! 2. an environment variable (malformed values warn through
//!    `hana-obs` and are ignored);
//! 3. the compiled-in default.
//!
//! Knobs: the broadcast-join build-side row limit
//! ([`BROADCAST_BUILD_ROW_LIMIT`](crate::executor::BROADCAST_BUILD_ROW_LIMIT))
//! and the compiled-expressions switch ([`compiled_expressions`],
//! default on — disables the bytecode VM so filters and projections run
//! through the tree-walking evaluator; used for A/B benches and as an
//! escape hatch).

use std::cell::Cell;

use crate::executor::BROADCAST_BUILD_ROW_LIMIT;

/// Environment variable overriding the broadcast build-side row limit.
pub const ENV_BROADCAST_BUILD_ROW_LIMIT: &str = "HANA_BROADCAST_BUILD_ROW_LIMIT";

/// Environment variable toggling expression compilation
/// (`0`/`false`/`off` disable; anything else warns and is ignored).
pub const ENV_COMPILED_EXPRESSIONS: &str = "HANA_COMPILED_EXPRESSIONS";

thread_local! {
    static BROADCAST_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static COMPILED_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// The broadcast build-side row limit in effect on this thread.
pub fn broadcast_build_row_limit() -> usize {
    if let Some(n) = BROADCAST_OVERRIDE.with(Cell::get) {
        return n;
    }
    match std::env::var(ENV_BROADCAST_BUILD_ROW_LIMIT) {
        Ok(raw) => parse_limit(&raw).unwrap_or(BROADCAST_BUILD_ROW_LIMIT),
        Err(_) => BROADCAST_BUILD_ROW_LIMIT,
    }
}

/// Install a thread-scoped broadcast limit until the guard drops.
/// Guards nest; the innermost wins and dropping restores the previous
/// value.
pub fn override_broadcast_build_row_limit(limit: usize) -> BroadcastLimitGuard {
    let prev = BROADCAST_OVERRIDE.with(|c| c.replace(Some(limit)));
    BroadcastLimitGuard { prev }
}

/// Restores the previous thread-scoped broadcast limit on drop.
pub struct BroadcastLimitGuard {
    prev: Option<usize>,
}

impl Drop for BroadcastLimitGuard {
    fn drop(&mut self) {
        BROADCAST_OVERRIDE.with(|c| c.set(self.prev));
    }
}

/// Whether the executor compiles filter/projection expressions to
/// bytecode on this thread (default: yes).
pub fn compiled_expressions() -> bool {
    if let Some(b) = COMPILED_OVERRIDE.with(Cell::get) {
        return b;
    }
    match std::env::var(ENV_COMPILED_EXPRESSIONS) {
        Ok(raw) => parse_switch(&raw).unwrap_or(true),
        Err(_) => true,
    }
}

/// Install a thread-scoped compiled-expressions switch until the guard
/// drops. Guards nest; the innermost wins and dropping restores the
/// previous value.
pub fn override_compiled_expressions(on: bool) -> CompiledExpressionsGuard {
    let prev = COMPILED_OVERRIDE.with(|c| c.replace(Some(on)));
    CompiledExpressionsGuard { prev }
}

/// Restores the previous compiled-expressions switch on drop.
pub struct CompiledExpressionsGuard {
    prev: Option<bool>,
}

impl Drop for CompiledExpressionsGuard {
    fn drop(&mut self) {
        COMPILED_OVERRIDE.with(|c| c.set(self.prev));
    }
}

/// Parse a boolean switch; unrecognized values warn through `hana-obs`
/// and resolve to `None` (the default stays in effect).
fn parse_switch(raw: &str) -> Option<bool> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Some(true),
        "0" | "false" | "off" | "no" => Some(false),
        _ => {
            hana_obs::warn(format!(
                "{ENV_COMPILED_EXPRESSIONS}={raw:?} is not a boolean switch; \
                 falling back to the default"
            ));
            None
        }
    }
}

/// Parse an environment override; malformed or zero values warn through
/// `hana-obs` (counted and surfaced in snapshots) and resolve to `None`.
fn parse_limit(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        Ok(_) => {
            hana_obs::warn(format!(
                "{ENV_BROADCAST_BUILD_ROW_LIMIT}={raw:?} must be a positive integer; \
                 falling back to the default"
            ));
            None
        }
        Err(e) => {
            hana_obs::warn(format!(
                "{ENV_BROADCAST_BUILD_ROW_LIMIT}={raw:?} is not a valid positive \
                 integer ({e}); falling back to the default"
            ));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_order_override_env_default() {
        // Env vars are process-global: this is the only test that sets
        // this variable, and it restores the previous state on exit.
        let saved = std::env::var(ENV_BROADCAST_BUILD_ROW_LIMIT).ok();

        std::env::remove_var(ENV_BROADCAST_BUILD_ROW_LIMIT);
        assert_eq!(broadcast_build_row_limit(), BROADCAST_BUILD_ROW_LIMIT);

        std::env::set_var(ENV_BROADCAST_BUILD_ROW_LIMIT, "4096");
        assert_eq!(broadcast_build_row_limit(), 4096, "env beats default");

        {
            let _g = override_broadcast_build_row_limit(128);
            assert_eq!(broadcast_build_row_limit(), 128, "override beats env");
            {
                let _inner = override_broadcast_build_row_limit(7);
                assert_eq!(broadcast_build_row_limit(), 7, "innermost wins");
            }
            assert_eq!(broadcast_build_row_limit(), 128, "nested guard restores");
        }
        assert_eq!(broadcast_build_row_limit(), 4096, "guard drop restores env");

        let warnings_before = hana_obs::registry()
            .counter("hana_obs_warnings_total")
            .get();
        std::env::set_var(ENV_BROADCAST_BUILD_ROW_LIMIT, "not-a-number");
        assert_eq!(
            broadcast_build_row_limit(),
            BROADCAST_BUILD_ROW_LIMIT,
            "malformed env falls back"
        );
        std::env::set_var(ENV_BROADCAST_BUILD_ROW_LIMIT, "0");
        assert_eq!(
            broadcast_build_row_limit(),
            BROADCAST_BUILD_ROW_LIMIT,
            "zero is rejected"
        );
        assert_eq!(
            hana_obs::registry()
                .counter("hana_obs_warnings_total")
                .get(),
            warnings_before + 2,
            "each malformed resolution warns"
        );

        match saved {
            Some(v) => std::env::set_var(ENV_BROADCAST_BUILD_ROW_LIMIT, v),
            None => std::env::remove_var(ENV_BROADCAST_BUILD_ROW_LIMIT),
        }
    }

    #[test]
    fn compiled_expressions_resolution() {
        // Env vars are process-global: this is the only test that sets
        // this variable, and it restores the previous state on exit.
        let saved = std::env::var(ENV_COMPILED_EXPRESSIONS).ok();

        std::env::remove_var(ENV_COMPILED_EXPRESSIONS);
        assert!(compiled_expressions(), "default is on");

        std::env::set_var(ENV_COMPILED_EXPRESSIONS, "off");
        assert!(!compiled_expressions(), "env beats default");

        {
            let _g = override_compiled_expressions(true);
            assert!(compiled_expressions(), "override beats env");
            {
                let _inner = override_compiled_expressions(false);
                assert!(!compiled_expressions(), "innermost wins");
            }
            assert!(compiled_expressions(), "nested guard restores");
        }
        assert!(!compiled_expressions(), "guard drop restores env");

        std::env::set_var(ENV_COMPILED_EXPRESSIONS, "maybe");
        assert!(compiled_expressions(), "malformed env falls back");

        match saved {
            Some(v) => std::env::set_var(ENV_COMPILED_EXPRESSIONS, v),
            None => std::env::remove_var(ENV_COMPILED_EXPRESSIONS),
        }
    }
}
