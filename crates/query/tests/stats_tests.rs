//! Statistics-driven planning tests: estimator bounds and monotonicity
//! (proptest), greedy join ordering, the broadcast↔repartition flip on
//! distributed joins, the remote-scan↔semijoin flip on federated joins,
//! and the stats-are-advisory guarantee (a stale or absent synopsis can
//! never change results, only plans).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::RwLock;

use hana_columnar::{ColumnPredicate, ColumnStats, ColumnTable, TableStatistics};
use hana_dist::{DistTable, PartitionSpec};
use hana_iq::IqEngine;
use hana_query::{
    execute_query, Catalog, DistJoinStrategy, EstSource, FederationStrategy, MemoryStatsProvider,
    PlanNode, PlanOp, PlannerContext, StatsProvider, TableSource,
};
use hana_sda::{IqAdapter, SdaAdapter, SdaRegistry};
use hana_sql::{parse_statement, Statement};
use hana_types::{DataType, HanaError, Result, Row, Schema, Value};

use proptest::prelude::*;

/// A catalog whose planner statistics come from an owned
/// [`MemoryStatsProvider`] — the same wiring the platform catalog uses,
/// without the platform.
struct StatsCatalog {
    tables: HashMap<String, TableSource>,
    sda: SdaRegistry,
    iq: Option<Arc<IqEngine>>,
    stats: MemoryStatsProvider,
}

impl StatsCatalog {
    fn new() -> StatsCatalog {
        StatsCatalog {
            tables: HashMap::new(),
            sda: SdaRegistry::new(),
            iq: None,
            stats: MemoryStatsProvider::new(),
        }
    }
}

impl Catalog for StatsCatalog {
    fn resolve_table(&self, name: &str) -> Result<TableSource> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| HanaError::Catalog(format!("unknown table '{name}'")))
    }

    fn sda(&self) -> &SdaRegistry {
        &self.sda
    }

    fn iq_engine(&self, source: &str) -> Result<Arc<IqEngine>> {
        self.iq
            .clone()
            .ok_or_else(|| HanaError::Catalog(format!("no IQ engine behind source '{source}'")))
    }

    fn stats(&self) -> &dyn StatsProvider {
        &self.stats
    }
}

fn query(sql: &str) -> hana_sql::Query {
    let Statement::Query(q) = parse_statement(sql).unwrap() else {
        panic!("not a query: {sql}")
    };
    q
}

/// A merged column table `name(k INT, v INT)` with `n` rows,
/// `k = i % modulo`.
fn column_table(name: &str, n: i64, modulo: i64) -> ColumnTable {
    let mut t = ColumnTable::new(
        name,
        Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]),
    );
    for i in 0..n {
        t.insert(&[Value::Int(i % modulo), Value::Int(i)], 1)
            .unwrap();
    }
    t.merge_delta();
    t
}

fn plan(cat: &StatsCatalog, sql: &str) -> PlanNode {
    PlannerContext::new(cat)
        .planner()
        .plan(&query(sql))
        .unwrap()
}

/// The chosen exchange strategy of the first hash join in the tree.
fn hash_join_dist(node: &PlanNode) -> Option<DistJoinStrategy> {
    match &node.op {
        PlanOp::HashJoin { dist, .. } => Some(*dist),
        PlanOp::Filter { input, .. }
        | PlanOp::Aggregate { input, .. }
        | PlanOp::Finish { input, .. } => hash_join_dist(input),
        _ => None,
    }
}

/// Table name of the deepest left-hand scan (the join order's start).
fn leftmost_leaf_table(node: &PlanNode) -> Option<&str> {
    match &node.op {
        PlanOp::HashJoin { left, .. } => leftmost_leaf_table(left),
        PlanOp::Filter { input, .. }
        | PlanOp::Aggregate { input, .. }
        | PlanOp::Finish { input, .. } => leftmost_leaf_table(input),
        PlanOp::ColumnScan { table, .. } | PlanOp::RowScan { table, .. } => Some(table),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Estimator bounds and monotonicity (proptest).
// ---------------------------------------------------------------------

proptest! {
    /// Every estimate over a random synopsis stays in `[0, row_count]`.
    #[test]
    fn estimates_stay_within_table_bounds(
        freqs in prop::collection::vec((0i64..1000, 1u64..50), 1..80),
        nulls in 0u64..50,
        buckets in 1usize..16,
        probe in -10i64..1010,
        probe2 in -10i64..1010,
    ) {
        let dedup: BTreeMap<i64, u64> = freqs.into_iter().collect();
        let sorted: Vec<(Value, u64)> =
            dedup.iter().map(|(&v, &f)| (Value::Int(v), f)).collect();
        let s = ColumnStats::from_frequencies("c", &sorted, nulls, buckets);
        let total = s.row_count as f64;
        let (lo, hi) = (probe.min(probe2), probe.max(probe2));
        let preds = [
            ColumnPredicate::Eq(Value::Int(probe)),
            ColumnPredicate::Ne(Value::Int(probe)),
            ColumnPredicate::Lt(Value::Int(probe)),
            ColumnPredicate::Le(Value::Int(probe)),
            ColumnPredicate::Gt(Value::Int(probe)),
            ColumnPredicate::Ge(Value::Int(probe)),
            ColumnPredicate::Between(Value::Int(lo), Value::Int(hi)),
            ColumnPredicate::InList((lo..=lo + 20).map(Value::Int).collect()),
            ColumnPredicate::IsNull,
            ColumnPredicate::IsNotNull,
        ];
        for pred in preds {
            let est = s.estimate(&pred);
            prop_assert!(
                (0.0..=total).contains(&est),
                "estimate {est} for {pred:?} outside [0, {total}]"
            );
        }
    }

    /// Widening a predicate never shrinks its estimate.
    #[test]
    fn estimates_monotone_under_widening(
        freqs in prop::collection::vec((0i64..1000, 1u64..50), 1..80),
        buckets in 1usize..16,
        a in -10i64..1010,
        b in -10i64..1010,
    ) {
        let dedup: BTreeMap<i64, u64> = freqs.into_iter().collect();
        let sorted: Vec<(Value, u64)> =
            dedup.iter().map(|(&v, &f)| (Value::Int(v), f)).collect();
        let s = ColumnStats::from_frequencies("c", &sorted, 0, buckets);
        let (narrow, wide) = (a.min(b), a.max(b));
        prop_assert!(
            s.estimate(&ColumnPredicate::Le(Value::Int(narrow)))
                <= s.estimate(&ColumnPredicate::Le(Value::Int(wide))) + 1e-9
        );
        prop_assert!(
            s.estimate(&ColumnPredicate::Ge(Value::Int(wide)))
                <= s.estimate(&ColumnPredicate::Ge(Value::Int(narrow))) + 1e-9
        );
        prop_assert!(
            s.estimate(&ColumnPredicate::Between(Value::Int(narrow + 1), Value::Int(wide)))
                <= s.estimate(&ColumnPredicate::Between(Value::Int(narrow), Value::Int(wide)))
                    + 1e-9
        );
        let some: Vec<Value> = (narrow..narrow + 5).map(Value::Int).collect();
        let more: Vec<Value> = (narrow..narrow + 15).map(Value::Int).collect();
        prop_assert!(
            s.estimate(&ColumnPredicate::InList(some))
                <= s.estimate(&ColumnPredicate::InList(more)) + 1e-9
        );
    }

    /// The same properties hold end-to-end through the planner: the root
    /// estimate of a stats-backed scan is bounded by the table and
    /// monotone in the range bound.
    #[test]
    fn planner_scan_estimates_bounded_and_monotone(a in -5i64..210, b in -5i64..210) {
        let mut cat = StatsCatalog::new();
        let t = column_table("t", 200, 200);
        cat.stats.put(t.collect_statistics());
        cat.tables
            .insert("t".into(), TableSource::Column(Arc::new(RwLock::new(t))));
        let (narrow, wide) = (a.min(b), a.max(b));
        let p_narrow = plan(&cat, &format!("SELECT v FROM t WHERE k <= {narrow}"));
        let p_wide = plan(&cat, &format!("SELECT v FROM t WHERE k <= {wide}"));
        for p in [&p_narrow, &p_wide] {
            prop_assert_eq!(p.est_source, EstSource::Stats);
            prop_assert!((0.0..=200.0).contains(&p.est_rows), "est {}", p.est_rows);
        }
        prop_assert!(p_narrow.est_rows <= p_wide.est_rows + 1e-9);
    }
}

// ---------------------------------------------------------------------
// Greedy join ordering.
// ---------------------------------------------------------------------

/// With full statistics coverage the greedy ordering starts from the
/// smallest table regardless of the written join order; without
/// statistics the syntactic order is preserved.
#[test]
fn greedy_join_order_starts_from_smallest_table() {
    let mut cat = StatsCatalog::new();
    for (name, rows) in [("big", 5_000i64), ("mid", 500), ("small", 50)] {
        let t = column_table(name, rows, 50);
        cat.stats.put(t.collect_statistics());
        cat.tables
            .insert(name.into(), TableSource::Column(Arc::new(RwLock::new(t))));
    }
    let sql = "SELECT b.v, m.v, s.v FROM big b \
               JOIN mid m ON b.k = m.k JOIN small s ON m.k = s.k";
    let p = plan(&cat, sql);
    assert_eq!(
        leftmost_leaf_table(&p),
        Some("small"),
        "greedy order must start at the smallest synopsis:\n{}",
        p.explain()
    );
    assert_eq!(p.est_source, EstSource::Stats);
    assert!(p.explain().contains("[stats]"), "{}", p.explain());

    // Same query, no statistics: the written order stands.
    let nostats = PlannerContext::new(&cat)
        .with_stats(&hana_query::NO_STATS)
        .planner()
        .plan(&query(sql))
        .unwrap();
    assert_eq!(leftmost_leaf_table(&nostats), Some("big"));
    assert!(nostats.explain().contains("[heuristic]"));

    // Reordering is advisory: both plans produce identical rows.
    let with_stats = execute_query(&query(sql), &cat, 1).unwrap();
    assert_eq!(with_stats.len(), 5_000 * 10, "50 keys x 100 x 10 x 1");
}

// ---------------------------------------------------------------------
// Broadcast vs repartition on distributed joins.
// ---------------------------------------------------------------------

/// A distributed world: `facts` hash-partitioned over 4 nodes with
/// 20 000 rows, plus two build tables of very different sizes.
fn dist_world() -> StatsCatalog {
    let mut cat = StatsCatalog::new();
    let facts = DistTable::new(
        "facts",
        Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]),
        PartitionSpec::Hash {
            column: "k".into(),
            partitions: 4,
        },
    )
    .unwrap();
    for i in 0..20_000i64 {
        facts
            .insert(&[Value::Int(i % 100), Value::Int(i)], 1)
            .unwrap();
    }
    let parts: Vec<TableStatistics> = facts
        .nodes()
        .iter()
        .map(|n| n.table().read().collect_statistics())
        .collect();
    cat.stats.put_partitions("facts", parts);
    cat.tables
        .insert("facts".into(), TableSource::Distributed(Arc::new(facts)));

    // Tiny build side: 20 rows, keys 0..20.
    let tiny = column_table("tiny", 20, 20);
    cat.stats.put(tiny.collect_statistics());
    cat.tables.insert(
        "tiny".into(),
        TableSource::Column(Arc::new(RwLock::new(tiny))),
    );

    // Huge build side: 30 000 distinct keys (only 0..100 match).
    let huge = column_table("huge", 30_000, 30_000);
    cat.stats.put(huge.collect_statistics());
    cat.tables.insert(
        "huge".into(),
        TableSource::Column(Arc::new(RwLock::new(huge))),
    );
    cat
}

/// The planner flips broadcast→repartition as the build side grows —
/// driven purely by persisted statistics, no environment knob set.
#[test]
fn dist_join_flips_broadcast_to_repartition_on_build_size() {
    assert!(
        std::env::var(hana_query::ENV_BROADCAST_BUILD_ROW_LIMIT).is_err(),
        "the flip must come from statistics, not the env knob"
    );
    let cat = dist_world();

    let small = plan(
        &cat,
        "SELECT f.v, t.v FROM facts f JOIN tiny t ON f.k = t.k",
    );
    assert_eq!(
        hash_join_dist(&small),
        Some(DistJoinStrategy::Broadcast),
        "20-row build side must broadcast:\n{}",
        small.explain()
    );
    assert!(
        small.explain().contains("exchange: broadcast"),
        "{}",
        small.explain()
    );

    let big = plan(
        &cat,
        "SELECT f.v, h.v FROM facts f JOIN huge h ON f.k = h.k",
    );
    assert_eq!(
        hash_join_dist(&big),
        Some(DistJoinStrategy::Repartition),
        "30k-row build side must repartition:\n{}",
        big.explain()
    );
    assert!(
        big.explain().contains("exchange: repartition"),
        "{}",
        big.explain()
    );

    // Without statistics the decision defers to the runtime knob.
    let runtime = PlannerContext::new(&cat)
        .with_stats(&hana_query::NO_STATS)
        .planner()
        .plan(&query(
            "SELECT f.v, t.v FROM facts f JOIN tiny t ON f.k = t.k",
        ))
        .unwrap();
    assert_eq!(hash_join_dist(&runtime), Some(DistJoinStrategy::Runtime));
    assert!(runtime.explain().contains("exchange: runtime-knob"));

    // Both strategies execute correctly: each tiny key matches 200 fact
    // rows; each huge key below 100 matches 200.
    let rs = execute_query(
        &query("SELECT f.v, t.v FROM facts f JOIN tiny t ON f.k = t.k"),
        &cat,
        1,
    )
    .unwrap();
    assert_eq!(rs.len(), 20 * 200);
    let rs = execute_query(
        &query("SELECT f.v, h.v FROM facts f JOIN huge h ON f.k = h.k"),
        &cat,
        1,
    )
    .unwrap();
    assert_eq!(rs.len(), 100 * 200);
}

// ---------------------------------------------------------------------
// Remote-scan vs semijoin on federated joins.
// ---------------------------------------------------------------------

/// `dim` (100 rows, local, with synopsis) joining IQ table `fact`
/// (20 000 rows) — the Figure 7 shape, with the strategy inputs coming
/// from persisted local statistics and the source's own metadata.
fn sda_world() -> StatsCatalog {
    let mut cat = StatsCatalog::new();
    let dim = column_table("dim", 100, 100);
    cat.stats.put(dim.collect_statistics());
    cat.tables.insert(
        "dim".into(),
        TableSource::Column(Arc::new(RwLock::new(dim))),
    );

    let iq = Arc::new(IqEngine::new("iq-stats", 512).unwrap());
    iq.create_table(
        "fact",
        Schema::of(&[("f_dim", DataType::Int), ("f_val", DataType::Int)]),
    )
    .unwrap();
    let rows: Vec<Row> = (0..20_000i64)
        .map(|i| Row::from_values([Value::Int(i % 100), Value::Int(i)]))
        .collect();
    iq.direct_load("fact", &rows, 1).unwrap();
    let adapter: Arc<dyn SdaAdapter> = Arc::new(IqAdapter::new(Arc::clone(&iq)));
    cat.sda
        .create_remote_source("iqstore", adapter, "internal", None)
        .unwrap();
    cat.tables.insert(
        "fact".into(),
        TableSource::Extended {
            source: "iqstore".into(),
            remote_table: "fact".into(),
            schema: iq.table_schema("fact").unwrap(),
        },
    );
    cat.iq = Some(iq);
    cat
}

/// One query shape, one knob turned — the remote-side selectivity — and
/// the federation strategy flips between remote scan and semijoin.
#[test]
fn federated_join_flips_remote_scan_to_semijoin_on_remote_selectivity() {
    let cat = sda_world();
    let shape = |bound: i64| {
        format!(
            "SELECT d.v, f.f_val FROM dim d JOIN fact f ON d.k = f.f_dim \
             WHERE d.k < 5 AND f.f_val < {bound}"
        )
    };

    // Selective remote filter: pull the 3 matching rows.
    let selective = plan(&cat, &shape(3));
    assert!(
        selective
            .strategies()
            .contains(&FederationStrategy::RemoteScan),
        "selective remote side should be pulled:\n{}",
        selective.explain()
    );

    // Unselective remote filter: ship the 5 local keys instead.
    let unselective = plan(&cat, &shape(19_000));
    assert!(
        unselective
            .strategies()
            .contains(&FederationStrategy::SemiJoin),
        "unselective remote side should be reduced by semijoin:\n{}",
        unselective.explain()
    );
    // Both sides of the decision were statistics-backed.
    assert!(
        unselective.explain().contains("[stats]"),
        "{}",
        unselective.explain()
    );

    // Both strategies compute the same join, correctly.
    let rs = execute_query(&query(&shape(3)), &cat, 1).unwrap();
    assert_eq!(rs.len(), 3, "f_val 0..3 all have f_dim < 5");
    let rs = execute_query(&query(&shape(19_000)), &cat, 1).unwrap();
    assert_eq!(rs.len(), 190 * 5, "190 matches per dim key below 5");
}

// ---------------------------------------------------------------------
// Statistics are advisory.
// ---------------------------------------------------------------------

/// Wildly wrong statistics change the plan, never the answer.
#[test]
fn stale_statistics_never_change_results() {
    let sql = "SELECT f.v, t.v FROM facts f JOIN tiny t ON f.k = t.k";
    let cat = dist_world();
    let fresh = execute_query(&query(sql), &cat, 1).unwrap();

    // Fabricate a synopsis claiming `tiny` is enormous and `facts`
    // minuscule — the exchange decision inverts...
    let lying: Vec<(Value, u64)> = (0..20i64).map(|i| (Value::Int(i), 50_000)).collect();
    cat.stats.put(TableStatistics {
        table: "tiny".into(),
        row_count: 1_000_000,
        columns: vec![
            ColumnStats::from_frequencies("k", &lying, 0, 8),
            ColumnStats::from_frequencies("v", &lying, 0, 8),
        ],
    });
    let stale_plan = plan(&cat, sql);
    assert_eq!(
        hash_join_dist(&stale_plan),
        Some(DistJoinStrategy::Repartition),
        "the lie must flip the exchange:\n{}",
        stale_plan.explain()
    );

    // ...but the rows do not.
    let stale = execute_query(&query(sql), &cat, 1).unwrap();
    let sort = |rs: &hana_types::ResultSet| {
        let mut rows = rs.rows.clone();
        rows.sort();
        rows
    };
    assert_eq!(
        sort(&fresh),
        sort(&stale),
        "stats steered the plan, not the result"
    );

    // Dropping the synopsis entirely is just as harmless.
    cat.stats.remove("tiny");
    cat.stats.remove("facts");
    let none = execute_query(&query(sql), &cat, 1).unwrap();
    assert_eq!(sort(&fresh), sort(&none));
}
