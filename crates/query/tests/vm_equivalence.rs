//! Property tests: the bytecode VM agrees with the tree-walking
//! evaluator on every expression it compiles.
//!
//! The soundness contract the executor relies on (see
//! `executor::filter_rows`): when [`Program::run_block`] returns `Ok`,
//! every row's value must equal what `hana_sql::evaluate` produces for
//! that row. When the VM errors, the executor re-runs the block through
//! the tree-walk, so an erroring block only needs the *tree-walk* to be
//! authoritative — no equivalence is asserted there. The generator
//! below builds random type-disciplined expression trees (all compiled
//! operators, null literals, int/double/varchar/bool columns, nested
//! logic with short-circuit shapes) over random row blocks.

use hana_query::compile_expr;
use hana_sql::{evaluate, BinOp, Expr, UnaryOp};
use hana_types::{DataType, Row, Schema, Value};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::of(&[
        ("a", DataType::Int),
        ("b", DataType::Int),
        ("c", DataType::Varchar),
        ("d", DataType::Bool),
        ("e", DataType::Double),
    ])
}

/// One random row: every column independently nullable.
fn arb_row() -> impl Strategy<Value = Row> {
    (
        prop_oneof![Just(None), (-4i64..5).prop_map(Some)],
        prop_oneof![Just(None), (-4i64..5).prop_map(Some)],
        prop_oneof![Just(None), (0u8..4).prop_map(Some)],
        prop_oneof![Just(None), any::<bool>().prop_map(Some)],
        prop_oneof![Just(None), (-8i64..9).prop_map(Some)],
    )
        .prop_map(|(a, b, c, d, e)| {
            Row::from_values([
                a.map(Value::Int).unwrap_or(Value::Null),
                b.map(Value::Int).unwrap_or(Value::Null),
                c.map(|i| Value::from(format!("s{i}")))
                    .unwrap_or(Value::Null),
                d.map(Value::Bool).unwrap_or(Value::Null),
                e.map(|i| Value::Double(i as f64 / 2.0))
                    .unwrap_or(Value::Null),
            ])
        })
}

/// Numeric-valued expressions (int/double columns, literals, arithmetic
/// including division, unary negation).
fn arb_num(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-4i64..5).prop_map(|i| Expr::Literal(Value::Int(i))),
        (-6i64..7).prop_map(|i| Expr::Literal(Value::Double(i as f64 / 2.0))),
        Just(Expr::Literal(Value::Null)),
        Just(Expr::col("a")),
        Just(Expr::col("b")),
        Just(Expr::col("e")),
    ]
    .boxed();
    if depth == 0 {
        return leaf;
    }
    let inner = arb_num(depth - 1);
    prop_oneof![
        leaf,
        (inner.clone(), 0usize..4, inner.clone()).prop_map(|(l, op, r)| Expr::Binary {
            left: Box::new(l),
            op: [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div][op],
            right: Box::new(r),
        }),
        inner.prop_map(|x| Expr::Unary {
            op: UnaryOp::Neg,
            expr: Box::new(x),
        }),
    ]
    .boxed()
}

/// String-valued expressions (column or literal).
fn arb_str() -> BoxedStrategy<Expr> {
    prop_oneof![
        (0u8..4).prop_map(|i| Expr::Literal(Value::from(format!("s{i}")))),
        Just(Expr::Literal(Value::Null)),
        Just(Expr::col("c")),
    ]
    .boxed()
}

/// Boolean-valued expressions: comparisons over numbers and strings,
/// BETWEEN, IN lists, LIKE, IS NULL, three-valued AND/OR/NOT.
fn arb_bool(depth: u32) -> BoxedStrategy<Expr> {
    let cmp_ops = [
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ];
    let num = arb_num(1);
    let leaf = prop_oneof![
        Just(Expr::col("d")),
        any::<bool>().prop_map(|b| Expr::Literal(Value::Bool(b))),
        Just(Expr::Literal(Value::Null)),
        (num.clone(), 0usize..6, num.clone()).prop_map(move |(l, op, r)| Expr::Binary {
            left: Box::new(l),
            op: cmp_ops[op],
            right: Box::new(r),
        }),
        (arb_str(), 0usize..6, arb_str()).prop_map(move |(l, op, r)| Expr::Binary {
            left: Box::new(l),
            op: cmp_ops[op],
            right: Box::new(r),
        }),
        (num.clone(), -4i64..5, 0i64..4, any::<bool>()).prop_map(|(x, lo, span, neg)| {
            Expr::Between {
                expr: Box::new(x),
                lo: Box::new(Expr::Literal(Value::Int(lo))),
                hi: Box::new(Expr::Literal(Value::Int(lo + span))),
                negated: neg,
            }
        }),
        (
            num.clone(),
            prop::collection::vec(
                prop_oneof![
                    (-4i64..5).prop_map(Value::Int),
                    Just(Value::Null),
                    (0u8..4).prop_map(|i| Value::from(format!("s{i}"))),
                ],
                0..5,
            ),
            any::<bool>(),
        )
            .prop_map(|(x, list, neg)| Expr::InList {
                expr: Box::new(x),
                list: list.into_iter().map(Expr::Literal).collect(),
                negated: neg,
            }),
        (arb_str(), 0usize..4, any::<bool>()).prop_map(|(x, p, neg)| Expr::Like {
            expr: Box::new(x),
            pattern: ["s%", "%1", "s_", "x%"][p].to_string(),
            negated: neg,
        }),
        (num, any::<bool>()).prop_map(|(x, neg)| Expr::IsNull {
            expr: Box::new(x),
            negated: neg,
        }),
    ]
    .boxed();
    if depth == 0 {
        return leaf;
    }
    let inner = arb_bool(depth - 1);
    prop_oneof![
        leaf,
        (inner.clone(), any::<bool>(), inner.clone()).prop_map(|(l, and, r)| Expr::Binary {
            left: Box::new(l),
            op: if and { BinOp::And } else { BinOp::Or },
            right: Box::new(r),
        }),
        inner.prop_map(|x| Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(x),
        }),
    ]
    .boxed()
}

/// Check the soundness contract for one expression over one row block.
fn check_equivalence(e: &Expr, rows: &[Row]) {
    let schema = schema();
    let prog = compile_expr(e, &schema).expect("generator only emits compilable shapes");
    let mut regs: Vec<Vec<Value>> = Vec::new();
    // A VM error means the executor would re-run the block through the
    // tree-walk; nothing to compare then.
    if prog.run_block(rows, &mut regs).is_ok() {
        for (i, row) in rows.iter().enumerate() {
            let tree = evaluate(e, &schema, row)
                .unwrap_or_else(|err| panic!("VM succeeded but tree-walk errors ({err}) on {e}"));
            assert_eq!(
                regs[prog.result][i], tree,
                "row {i} diverges for expression {e}"
            );
        }
    }
}

proptest! {
    /// Boolean predicate trees: VM block results equal per-row
    /// tree-walk results whenever the VM succeeds.
    #[test]
    fn vm_matches_tree_walk_on_predicates(
        e in arb_bool(3),
        rows in prop::collection::vec(arb_row(), 1..200),
    ) {
        check_equivalence(&e, &rows);
    }

    /// Scalar (numeric) projection trees, the Finish-arm shape.
    #[test]
    fn vm_matches_tree_walk_on_projections(
        e in arb_num(3),
        rows in prop::collection::vec(arb_row(), 1..200),
    ) {
        check_equivalence(&e, &rows);
    }
}

/// Shapes the VM must refuse so the executor keeps the tree-walk.
#[test]
fn uncompilable_shapes_fall_back() {
    let s = schema();
    for sql_shape in [
        Expr::Func {
            name: "UPPER".into(),
            args: vec![Expr::col("c")],
        },
        Expr::Case {
            whens: vec![(Expr::col("d"), Expr::col("a"))],
            else_expr: None,
        },
        Expr::Parameter(0),
        Expr::Wildcard,
        // IN with a non-constant item must not compile (the tree-walk
        // evaluates items lazily).
        Expr::InList {
            expr: Box::new(Expr::col("a")),
            list: vec![Expr::col("b")],
            negated: false,
        },
    ] {
        assert!(compile_expr(&sql_shape, &s).is_none(), "{sql_shape}");
    }
    // Unknown columns also refuse at compile time.
    assert!(compile_expr(&Expr::col("nope"), &s).is_none());
}
