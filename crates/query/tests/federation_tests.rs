//! End-to-end federation tests: local execution, strategy selection
//! (Figure 7), whole-query and prefix shipping, hybrid scans.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use hana_columnar::ColumnTable;
use hana_hadoop::{Hdfs, Hive, MrCluster, MrConfig};
use hana_iq::IqEngine;
use hana_query::{
    execute_query, explain_query, Catalog, FederationStrategy, PlannerContext, TableSource,
};
use hana_rowstore::RowTable;
use hana_sda::{HiveOdbcAdapter, IqAdapter, SdaAdapter, SdaRegistry};
use hana_sql::{parse_statement, Statement};
use hana_types::{DataType, HanaError, Result, Row, Schema, Value};

/// A catalog assembling every storage kind for the tests.
struct TestCatalog {
    tables: HashMap<String, TableSource>,
    sda: SdaRegistry,
    iq: Arc<IqEngine>,
}

impl Catalog for TestCatalog {
    fn resolve_table(&self, name: &str) -> Result<TableSource> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| HanaError::Catalog(format!("unknown table '{name}'")))
    }

    fn sda(&self) -> &SdaRegistry {
        &self.sda
    }

    fn iq_engine(&self, _source: &str) -> Result<Arc<IqEngine>> {
        Ok(Arc::clone(&self.iq))
    }
}

fn query(sql: &str) -> hana_sql::Query {
    let Statement::Query(q) = parse_statement(sql).unwrap() else {
        panic!("not a query: {sql}")
    };
    q
}

/// Build a world:
/// * local column table `dim` (100 rows) and row table `codes`,
/// * extended (IQ) table `fact` (20k rows),
/// * Hive virtual tables `ev_orders` (2k rows) and `ev_customer` (100),
/// * hybrid table `sales` (50 hot + 5000 cold rows).
fn world() -> TestCatalog {
    let sda = SdaRegistry::new();

    // Local column table.
    let mut dim = ColumnTable::new(
        "dim",
        Schema::of(&[("d_id", DataType::Int), ("d_name", DataType::Varchar)]),
    );
    for i in 0..100i64 {
        dim.insert(&[Value::Int(i), Value::from(format!("dim-{i}"))], 1)
            .unwrap();
    }
    dim.merge_delta();

    // Local row table.
    let mut codes = RowTable::new(
        "codes",
        Schema::of(&[("code", DataType::Int), ("label", DataType::Varchar)]),
        Some("code"),
    )
    .unwrap();
    for i in 0..10i64 {
        codes
            .insert(&[Value::Int(i), Value::from(format!("label-{i}"))], 1)
            .unwrap();
    }

    // Extended storage with a big fact table.
    let iq = Arc::new(IqEngine::new("iq-fed", 512).unwrap());
    iq.create_table(
        "fact",
        Schema::of(&[
            ("f_dim", DataType::Int),
            ("f_val", DataType::Double),
            ("f_flag", DataType::Varchar),
        ]),
    )
    .unwrap();
    let fact_rows: Vec<Row> = (0..20_000)
        .map(|i| {
            Row::from_values([
                Value::Int((i % 100) as i64),
                Value::Double(i as f64),
                Value::from(if i % 5 == 0 { "A" } else { "B" }),
            ])
        })
        .collect();
    iq.direct_load("fact", &fact_rows, 1).unwrap();
    let iq_adapter: Arc<dyn SdaAdapter> = Arc::new(IqAdapter::new(Arc::clone(&iq)));
    sda.create_remote_source("iqstore", iq_adapter, "internal", None)
        .unwrap();

    // Hive with two tables.
    let mr = Arc::new(MrCluster::new(
        Arc::new(Hdfs::new(4)),
        MrConfig {
            worker_slots: 4,
            job_startup: Duration::from_micros(300),
            task_startup: Duration::from_micros(30),
        },
    ));
    let hive = Arc::new(Hive::new(mr));
    hive.create_table(
        "ev_orders",
        Schema::of(&[
            ("o_id", DataType::Int),
            ("o_cust", DataType::Int),
            ("o_total", DataType::Double),
        ]),
    )
    .unwrap();
    hive.load(
        "ev_orders",
        &(0..2000)
            .map(|i| {
                Row::from_values([Value::Int(i), Value::Int(i % 100), Value::Double(i as f64)])
            })
            .collect::<Vec<_>>(),
    )
    .unwrap();
    hive.create_table(
        "ev_customer",
        Schema::of(&[("c_id", DataType::Int), ("c_seg", DataType::Varchar)]),
    )
    .unwrap();
    hive.load(
        "ev_customer",
        &(0..100)
            .map(|i| {
                Row::from_values([
                    Value::Int(i),
                    Value::from(if i % 4 == 0 { "HOUSEHOLD" } else { "OTHER" }),
                ])
            })
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let hive_adapter: Arc<dyn SdaAdapter> = Arc::new(HiveOdbcAdapter::new(hive, "DSN=hive1"));
    sda.create_remote_source("hive1", hive_adapter, "DSN=hive1", None)
        .unwrap();

    // Hybrid table: hot in-memory + cold in IQ.
    let mut hot = ColumnTable::new(
        "sales",
        Schema::of(&[
            ("s_id", DataType::Int),
            ("s_amt", DataType::Double),
            ("s_cold", DataType::Bool),
        ]),
    );
    for i in 0..50i64 {
        hot.insert(
            &[Value::Int(i), Value::Double(i as f64), Value::Bool(false)],
            1,
        )
        .unwrap();
    }
    iq.create_table(
        "sales_cold",
        Schema::of(&[
            ("s_id", DataType::Int),
            ("s_amt", DataType::Double),
            ("s_cold", DataType::Bool),
        ]),
    )
    .unwrap();
    let cold_rows: Vec<Row> = (1000..6000)
        .map(|i| Row::from_values([Value::Int(i), Value::Double(i as f64), Value::Bool(true)]))
        .collect();
    iq.direct_load("sales_cold", &cold_rows, 1).unwrap();

    let mut tables = HashMap::new();
    tables.insert(
        "dim".to_string(),
        TableSource::Column(Arc::new(RwLock::new(dim))),
    );
    tables.insert(
        "codes".to_string(),
        TableSource::Row(Arc::new(RwLock::new(codes))),
    );
    tables.insert(
        "fact".to_string(),
        TableSource::Extended {
            source: "iqstore".into(),
            remote_table: "fact".into(),
            schema: iq.table_schema("fact").unwrap(),
        },
    );
    tables.insert(
        "orders_v".to_string(),
        TableSource::Virtual {
            source: "hive1".into(),
            remote_table: "ev_orders".into(),
            schema: Schema::of(&[
                ("o_id", DataType::Int),
                ("o_cust", DataType::Int),
                ("o_total", DataType::Double),
            ]),
        },
    );
    tables.insert(
        "customer_v".to_string(),
        TableSource::Virtual {
            source: "hive1".into(),
            remote_table: "ev_customer".into(),
            schema: Schema::of(&[("c_id", DataType::Int), ("c_seg", DataType::Varchar)]),
        },
    );
    tables.insert(
        "sales".to_string(),
        TableSource::Hybrid {
            hot: Arc::new(RwLock::new(hot)),
            source: "iqstore".into(),
            cold_table: "sales_cold".into(),
            aging_column: "s_cold".into(),
        },
    );

    TestCatalog { tables, sda, iq }
}

#[test]
fn local_scan_filter_project() {
    let cat = world();
    let rs = execute_query(
        &query("SELECT d_name FROM dim WHERE d_id BETWEEN 10 AND 12"),
        &cat,
        1,
    )
    .unwrap();
    assert_eq!(rs.len(), 3);
    assert_eq!(rs.schema.index_of("d_name"), Some(0));
}

#[test]
fn local_aggregation_with_having_and_order() {
    let cat = world();
    let rs = execute_query(
        &query(
            "SELECT label, COUNT(*) AS n FROM codes WHERE code < 8 \
             GROUP BY label HAVING COUNT(*) > 0 ORDER BY label DESC LIMIT 3",
        ),
        &cat,
        1,
    )
    .unwrap();
    assert_eq!(rs.len(), 3);
    assert_eq!(rs.rows[0][0], Value::from("label-7"));
}

#[test]
fn local_join_column_and_row_tables() {
    let cat = world();
    let rs = execute_query(
        &query(
            "SELECT d.d_name, c.label FROM dim d JOIN codes c ON d.d_id = c.code \
             WHERE c.code >= 5",
        ),
        &cat,
        1,
    )
    .unwrap();
    assert_eq!(rs.len(), 5);
}

/// Figure 7: selective local predicate -> the optimizer must pick the
/// semijoin against the big extended table, and results must be correct.
#[test]
fn figure7_semijoin_selected_and_correct() {
    let cat = world();
    let q = query(
        "SELECT d.d_name, f.f_val FROM dim d JOIN fact f ON d.d_id = f.f_dim \
         WHERE d.d_id = 42",
    );
    let plan = PlannerContext::new(&cat).planner().plan(&q).unwrap();
    assert!(
        plan.strategies().contains(&FederationStrategy::SemiJoin),
        "expected semijoin, plan:\n{}",
        plan.explain()
    );
    let rs = execute_query(&q, &cat, 1).unwrap();
    assert_eq!(rs.len(), 200, "20000 rows / 100 dims = 200 matches");
    assert!(rs.rows.iter().all(|r| r[0] == Value::from("dim-42")));
}

/// With no selective local predicate but a highly selective remote one,
/// the remote scan strategy wins.
#[test]
fn remote_scan_when_remote_filter_is_selective() {
    let cat = world();
    let q = query(
        "SELECT d.d_name, f.f_val FROM dim d JOIN fact f ON d.d_id = f.f_dim \
         WHERE f.f_val < 3",
    );
    let plan = PlannerContext::new(&cat).planner().plan(&q).unwrap();
    assert!(
        plan.strategies().contains(&FederationStrategy::RemoteScan),
        "plan:\n{}",
        plan.explain()
    );
    let rs = execute_query(&q, &cat, 1).unwrap();
    assert_eq!(rs.len(), 3);
}

/// All tables at one Hive source with supported shapes: the whole query
/// ships (Figure 12) — including the aggregation.
#[test]
fn whole_query_ships_to_hive() {
    let cat = world();
    let q = query(
        "SELECT c.c_seg, COUNT(*) AS n FROM customer_v c JOIN orders_v o \
         ON c.c_id = o.o_cust GROUP BY c.c_seg ORDER BY c.c_seg",
    );
    let plan = PlannerContext::new(&cat).planner().plan(&q).unwrap();
    let text = plan.explain();
    assert!(
        text.contains("whole query"),
        "expected whole-query shipping:\n{text}"
    );
    let rs = execute_query(&q, &cat, 1).unwrap();
    assert_eq!(rs.len(), 2);
    // 25 HOUSEHOLD customers x 20 orders each = 500.
    let household = rs
        .rows
        .iter()
        .find(|r| r[0] == Value::from("HOUSEHOLD"))
        .unwrap();
    assert_eq!(household[1], Value::Int(500));
}

/// Hive prefix + local table: the prefix ships as one sub-query, the
/// local join runs in HANA (Figure 13's mixed situation).
#[test]
fn remote_prefix_then_local_join() {
    let cat = world();
    let q = query(
        "SELECT d.d_name, o.o_total FROM orders_v o JOIN customer_v c ON o.o_cust = c.c_id \
         JOIN dim d ON o.o_cust = d.d_id \
         WHERE c.c_seg = 'HOUSEHOLD' AND o.o_total < 100",
    );
    let plan = PlannerContext::new(&cat).planner().plan(&q).unwrap();
    let text = plan.explain();
    assert!(
        text.contains("remote prefix"),
        "expected prefix shipping:\n{text}"
    );
    let rs = execute_query(&q, &cat, 1).unwrap();
    // Orders 0..100 with o_cust % 4 == 0: o_cust in {0,4,...} -> o_id
    // multiples matching; count: o_id 0..100 where (o_id%100)%4==0 -> 25.
    assert_eq!(rs.len(), 25);
}

#[test]
fn hybrid_scan_unions_hot_and_cold() {
    let cat = world();
    let q = query("SELECT COUNT(*) FROM sales WHERE s_amt >= 0");
    let plan = PlannerContext::new(&cat).planner().plan(&q).unwrap();
    assert!(
        plan.strategies().contains(&FederationStrategy::UnionPlan),
        "plan:\n{}",
        plan.explain()
    );
    let rs = execute_query(&q, &cat, 1).unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(5050));
    // Predicates prune on both sides.
    let rs = execute_query(
        &query("SELECT COUNT(*) FROM sales WHERE s_id < 1005"),
        &cat,
        1,
    )
    .unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(55));
}

#[test]
fn explain_shows_shipped_sql_and_exchange_boundary() {
    let cat = world();
    let text = explain_query(
        &query("SELECT o_id FROM orders_v WHERE o_total > 1990"),
        &cat,
        1,
    )
    .unwrap();
    assert!(text.contains("Remote Row Scan"), "{text}");
    assert!(text.contains("Shipped: SELECT"), "{text}");
}

#[test]
fn snapshot_isolation_respected_locally() {
    let cat = world();
    // dim rows were inserted with cid 1; a snapshot at 0 sees nothing.
    let rs = execute_query(&query("SELECT COUNT(*) FROM dim"), &cat, 0).unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(0));
    let rs = execute_query(&query("SELECT COUNT(*) FROM dim"), &cat, 1).unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(100));
}

#[test]
fn errors_surface() {
    let cat = world();
    assert!(execute_query(&query("SELECT * FROM missing"), &cat, 1).is_err());
    assert!(execute_query(&query("SELECT nope FROM dim"), &cat, 1).is_err());
    // Failure of the extended store aborts the query (§3.1).
    cat.iq.set_failing(true);
    let err = execute_query(&query("SELECT COUNT(*) FROM fact"), &cat, 1).unwrap_err();
    assert_eq!(err.kind(), "remote_unavailable");
    assert!(err.is_retryable());
}
