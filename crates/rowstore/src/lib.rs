//! # hana-rowstore
//!
//! The in-memory **row store** of the platform. Per §3.1 of the paper,
//! "row-oriented storage in main memory is used for extremely high update
//! frequencies on smaller data sets and the execution of point queries" —
//! catalog-style tables, session state, small dimension tables.
//!
//! Rows are stored contiguously with MVCC version stamps and an optional
//! primary-key index (a `BTreeMap` keeping all versions per key), so point
//! lookups are `O(log n)` and updates append new versions instead of
//! rewriting dictionary-encoded columns.

use std::collections::BTreeMap;

use hana_txn::Snapshot;
use hana_types::{HanaError, Result, Row, Schema, Value};

/// Sentinel commit ID meaning "not deleted".
const NEVER: u64 = u64::MAX;

/// One stored row version.
#[derive(Debug, Clone)]
struct VersionedRow {
    values: Row,
    created: u64,
    deleted: u64,
}

/// An MVCC row table with optional primary-key index.
#[derive(Debug, Clone)]
pub struct RowTable {
    name: String,
    schema: Schema,
    pk_col: Option<usize>,
    rows: Vec<VersionedRow>,
    /// All version slots per key value (old versions are kept for
    /// snapshot reads; visibility filters at query time).
    pk_index: BTreeMap<Value, Vec<usize>>,
}

impl RowTable {
    /// Create a table; `primary_key` names the indexed column, if any.
    pub fn new(name: &str, schema: Schema, primary_key: Option<&str>) -> Result<RowTable> {
        let pk_col = match primary_key {
            Some(col) => Some(schema.require(col)?),
            None => None,
        };
        Ok(RowTable {
            name: name.to_string(),
            schema,
            pk_col,
            rows: Vec::new(),
            pk_index: BTreeMap::new(),
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total stored versions (including dead ones).
    pub fn version_count(&self) -> usize {
        self.rows.len()
    }

    /// Insert a row committed at `cid`; enforces primary-key uniqueness
    /// among versions visible at `cid`.
    pub fn insert(&mut self, row: &[Value], cid: u64) -> Result<usize> {
        self.schema.check_row(row)?;
        if let Some(pk) = self.pk_col {
            let key = &row[pk];
            if key.is_null() {
                return Err(HanaError::Storage(format!(
                    "primary key of '{}' must not be NULL",
                    self.name
                )));
            }
            let snap = Snapshot::at(cid);
            if let Some(slots) = self.pk_index.get(key) {
                if slots
                    .iter()
                    .any(|&s| snap.visible(self.rows[s].created, self.rows[s].deleted))
                {
                    return Err(HanaError::Storage(format!(
                        "duplicate primary key {key} in '{}'",
                        self.name
                    )));
                }
            }
        }
        let slot = self.rows.len();
        self.rows.push(VersionedRow {
            values: Row::from_values(row.iter().cloned()),
            created: cid,
            deleted: NEVER,
        });
        if let Some(pk) = self.pk_col {
            self.pk_index.entry(row[pk].clone()).or_default().push(slot);
        }
        Ok(slot)
    }

    /// Mark the version in `slot` deleted as of `cid`.
    pub fn delete_slot(&mut self, slot: usize, cid: u64) -> Result<()> {
        let row = self
            .rows
            .get_mut(slot)
            .ok_or_else(|| HanaError::Storage(format!("slot {slot} out of range")))?;
        if row.deleted != NEVER {
            return Err(HanaError::Storage(format!("slot {slot} already deleted")));
        }
        row.deleted = cid;
        Ok(())
    }

    /// Delete the row with primary key `key` visible at `cid`.
    /// Returns whether a row was deleted.
    pub fn delete_by_key(&mut self, key: &Value, cid: u64) -> Result<bool> {
        let slot = self.visible_slot(key, Snapshot::at(cid));
        match slot {
            Some(s) => {
                self.delete_slot(s, cid)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Update the row with primary key `key`: the old version dies at
    /// `cid`, a new one is born at `cid` (version-chain update).
    pub fn update_by_key(&mut self, key: &Value, new_row: &[Value], cid: u64) -> Result<bool> {
        self.schema.check_row(new_row)?;
        let Some(slot) = self.visible_slot(key, Snapshot::at(cid)) else {
            return Ok(false);
        };
        self.delete_slot(slot, cid)?;
        self.insert(new_row, cid)?;
        Ok(true)
    }

    fn visible_slot(&self, key: &Value, snap: Snapshot) -> Option<usize> {
        let pk = self.pk_col?;
        debug_assert!(pk < self.schema.len());
        self.pk_index.get(key).and_then(|slots| {
            slots
                .iter()
                .copied()
                .find(|&s| snap.visible(self.rows[s].created, self.rows[s].deleted))
        })
    }

    /// Point lookup by primary key under `snapshot`.
    pub fn get(&self, key: &Value, snapshot: Snapshot) -> Option<Row> {
        self.visible_slot(key, snapshot)
            .map(|s| self.rows[s].values.clone())
    }

    /// All rows visible under `snapshot`, in insertion order.
    pub fn scan(&self, snapshot: Snapshot) -> Vec<Row> {
        self.rows
            .iter()
            .filter(|r| snapshot.visible(r.created, r.deleted))
            .map(|r| r.values.clone())
            .collect()
    }

    /// Visible rows matching `pred`.
    pub fn scan_filtered(&self, snapshot: Snapshot, pred: impl Fn(&Row) -> bool) -> Vec<Row> {
        self.rows
            .iter()
            .filter(|r| snapshot.visible(r.created, r.deleted))
            .filter(|r| pred(&r.values))
            .map(|r| r.values.clone())
            .collect()
    }

    /// Number of rows visible under `snapshot`.
    pub fn len(&self, snapshot: Snapshot) -> usize {
        self.rows
            .iter()
            .filter(|r| snapshot.visible(r.created, r.deleted))
            .count()
    }

    /// Whether no rows are visible under `snapshot`.
    pub fn is_empty(&self, snapshot: Snapshot) -> bool {
        self.len(snapshot) == 0
    }

    /// Index of the primary-key column, if any.
    pub fn pk_column(&self) -> Option<usize> {
        self.pk_col
    }

    /// Slots of visible rows matching `pred` (for buffered DML: resolve
    /// at statement time, delete at commit time).
    pub fn slots_matching(&self, snapshot: Snapshot, pred: impl Fn(&Row) -> bool) -> Vec<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| snapshot.visible(r.created, r.deleted))
            .filter(|(_, r)| pred(&r.values))
            .map(|(i, _)| i)
            .collect()
    }

    /// The values stored in `slot` (regardless of visibility).
    pub fn slot_values(&self, slot: usize) -> Option<&Row> {
        self.rows.get(slot).map(|r| &r.values)
    }

    /// Drop versions deleted before `horizon` (no snapshot older than
    /// `horizon` exists anymore). Rebuilds the index.
    pub fn vacuum(&mut self, horizon: u64) {
        self.rows.retain(|r| r.deleted > horizon);
        self.pk_index.clear();
        if let Some(pk) = self.pk_col {
            for (slot, r) in self.rows.iter().enumerate() {
                self.pk_index
                    .entry(r.values[pk].clone())
                    .or_default()
                    .push(slot);
            }
        }
    }

    /// Approximate heap footprint in bytes (for the hot/cold placement
    /// decisions in `hana-core`).
    pub fn payload_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| {
                16 + r
                    .values
                    .values()
                    .iter()
                    .map(Value::storage_bytes)
                    .sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_types::DataType;

    fn table() -> RowTable {
        RowTable::new(
            "accounts",
            Schema::of(&[("id", DataType::Int), ("balance", DataType::Double)]),
            Some("id"),
        )
        .unwrap()
    }

    #[test]
    fn point_lookup_under_snapshots() {
        let mut t = table();
        t.insert(&[Value::Int(1), Value::Double(100.0)], 10)
            .unwrap();
        assert!(t.get(&Value::Int(1), Snapshot::at(9)).is_none());
        let row = t.get(&Value::Int(1), Snapshot::at(10)).unwrap();
        assert_eq!(row[1], Value::Double(100.0));
    }

    #[test]
    fn duplicate_pk_rejected_null_pk_rejected() {
        let mut t = table();
        t.insert(&[Value::Int(1), Value::Double(1.0)], 1).unwrap();
        assert!(t.insert(&[Value::Int(1), Value::Double(2.0)], 2).is_err());
        assert!(t.insert(&[Value::Null, Value::Double(2.0)], 2).is_err());
        // After deleting, the key can be reused.
        assert!(t.delete_by_key(&Value::Int(1), 3).unwrap());
        t.insert(&[Value::Int(1), Value::Double(3.0)], 4).unwrap();
    }

    #[test]
    fn update_creates_version_chain() {
        let mut t = table();
        t.insert(&[Value::Int(7), Value::Double(50.0)], 10).unwrap();
        assert!(t
            .update_by_key(&Value::Int(7), &[Value::Int(7), Value::Double(75.0)], 20)
            .unwrap());
        // Old snapshot still sees the old balance; new one sees the update.
        assert_eq!(
            t.get(&Value::Int(7), Snapshot::at(15)).unwrap()[1],
            Value::Double(50.0)
        );
        assert_eq!(
            t.get(&Value::Int(7), Snapshot::at(20)).unwrap()[1],
            Value::Double(75.0)
        );
        assert_eq!(t.version_count(), 2);
        assert!(!t
            .update_by_key(&Value::Int(99), &[Value::Int(99), Value::Null], 21)
            .unwrap());
    }

    #[test]
    fn scan_and_filter() {
        let mut t = table();
        for i in 0..10i64 {
            t.insert(&[Value::Int(i), Value::Double(i as f64 * 10.0)], 1)
                .unwrap();
        }
        t.delete_by_key(&Value::Int(5), 2).unwrap();
        let snap = Snapshot::at(2);
        assert_eq!(t.len(snap), 9);
        let rich = t.scan_filtered(snap, |r| r[1] >= Value::Double(70.0));
        assert_eq!(rich.len(), 3);
        assert_eq!(t.scan(Snapshot::at(1)).len(), 10);
    }

    #[test]
    fn vacuum_drops_dead_versions_and_keeps_lookups_working() {
        let mut t = table();
        t.insert(&[Value::Int(1), Value::Double(1.0)], 1).unwrap();
        t.update_by_key(&Value::Int(1), &[Value::Int(1), Value::Double(2.0)], 2)
            .unwrap();
        t.update_by_key(&Value::Int(1), &[Value::Int(1), Value::Double(3.0)], 3)
            .unwrap();
        assert_eq!(t.version_count(), 3);
        t.vacuum(3);
        assert_eq!(t.version_count(), 1);
        assert_eq!(
            t.get(&Value::Int(1), Snapshot::at(3)).unwrap()[1],
            Value::Double(3.0)
        );
    }

    #[test]
    fn table_without_pk_scans_only() {
        let mut t = RowTable::new("log", Schema::of(&[("msg", DataType::Varchar)]), None).unwrap();
        t.insert(&[Value::from("a")], 1).unwrap();
        t.insert(&[Value::from("a")], 1).unwrap(); // duplicates fine
        assert_eq!(t.scan(Snapshot::at(1)).len(), 2);
        assert!(t.get(&Value::from("a"), Snapshot::at(1)).is_none());
    }
}
