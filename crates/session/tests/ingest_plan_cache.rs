//! Streaming ingest and the shared plan cache: micro-batch epoch
//! commits deliberately do *not* bump the catalog version (a bump per
//! batch would purge every cached session plan at streaming cadence),
//! while MERGE DELTA — the natural consolidation point — still does.

use std::sync::Arc;

use hana_core::{HanaPlatform, IngestCommit};
use hana_session::SessionManager;
use hana_types::{Row, Value};

#[test]
fn ingest_batches_keep_cached_plans_valid_until_merge() {
    let platform = Arc::new(HanaPlatform::new_in_memory());
    let sys = platform.connect("SYSTEM", "manager").unwrap();
    platform
        .execute_sql(&sys, "CREATE COLUMN TABLE readings (k INT, v INT)")
        .unwrap();

    let manager = SessionManager::new(Arc::clone(&platform));
    let session = manager.connect("SYSTEM", "manager").unwrap();
    let lookup = session
        .prepare("SELECT COUNT(*) FROM readings WHERE k = ?")
        .unwrap();
    session.execute_prepared(&lookup, &[Value::Int(1)]).unwrap();
    assert_eq!(manager.plan_cache().len(), 1);

    // A streaming cadence of epoch commits: the cached plan must keep
    // hitting (no catalog version bump per micro-batch).
    let v_before = platform.catalog_version();
    let hits_before = hana_obs::registry()
        .counter("hana_session_plan_cache_hits_total")
        .get();
    for epoch in 1..=10u64 {
        let rows: Vec<Row> = (0..8i64)
            .map(|i| Row::from_values([Value::Int(i % 3), Value::Int(epoch as i64 * 8 + i)]))
            .collect();
        let c = platform
            .commit_ingest_batch(&sys, "feed", epoch, "readings", &rows)
            .unwrap();
        assert!(matches!(c, IngestCommit::Committed { .. }));
        let rs = session.execute_prepared(&lookup, &[Value::Int(1)]).unwrap();
        assert!(rs.scalar().is_ok());
    }
    assert_eq!(
        platform.catalog_version(),
        v_before,
        "epoch commits must not bump the catalog version"
    );
    let hits_after = hana_obs::registry()
        .counter("hana_session_plan_cache_hits_total")
        .get();
    assert!(
        hits_after >= hits_before + 10,
        "every per-epoch lookup reused the cached plan"
    );

    // MERGE DELTA is where freshly ingested rows consolidate — and
    // where cached plans are allowed to go stale.
    let inv_before = hana_obs::registry()
        .counter("hana_session_plan_cache_invalidations_total")
        .get();
    session.execute("MERGE DELTA OF readings").unwrap();
    session.execute_prepared(&lookup, &[Value::Int(1)]).unwrap();
    assert!(
        hana_obs::registry()
            .counter("hana_session_plan_cache_invalidations_total")
            .get()
            > inv_before,
        "MERGE DELTA still invalidates cached plans"
    );
    // And the data is all there regardless.
    let rs = session.execute("SELECT COUNT(*) FROM readings").unwrap();
    assert_eq!(rs.scalar().unwrap(), &Value::Int(80));
}
