//! Statement classification and workload-class admission.
//!
//! Every statement is classified from its *plan shape* before it
//! touches the execution pool: aggregations, federated operators and
//! large estimated scans are OLAP; short point lookups and DML are
//! OLTP. The [`WorkloadManager`] then admission-controls the statement
//! through the hana-exec [`AdmissionController`] — OLTP outranks OLAP
//! by default, so analytical bursts queue (and eventually shed with a
//! retryable `overloaded` error) while point lookups keep flowing.

use std::time::Duration;

use hana_exec::{AdmissionController, AdmissionPermit, ClassConfig, Rejection};
use hana_query::{PlanNode, PlanOp};
use hana_types::{HanaError, Result};

/// Workload classes the session layer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Short transactional statements: point lookups, single-row DML.
    Oltp,
    /// Scan/aggregate-heavy analytical statements.
    Olap,
}

impl WorkloadClass {
    /// The class label used for admission and metric names.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadClass::Oltp => "oltp",
            WorkloadClass::Olap => "olap",
        }
    }
}

/// Workload-management configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// OLTP class limits (default: 64 concurrent, queue 256, 2 s
    /// timeout, priority 10).
    pub oltp: ClassConfig,
    /// OLAP class limits (default: 8 concurrent, queue 32, 5 s
    /// timeout, priority 1).
    pub olap: ClassConfig,
    /// Optional shared cap across both classes.
    pub total_limit: Option<usize>,
    /// Plans whose largest scan estimates at least this many rows are
    /// OLAP even without an aggregate.
    pub olap_row_threshold: f64,
}

impl Default for WorkloadConfig {
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            oltp: ClassConfig::new("oltp", 64)
                .with_queue(256)
                .with_timeout(Duration::from_secs(2))
                .with_priority(10),
            olap: ClassConfig::new("olap", 8)
                .with_queue(32)
                .with_timeout(Duration::from_secs(5))
                .with_priority(1),
            total_limit: None,
            olap_row_threshold: 100_000.0,
        }
    }
}

/// Classifies statements and admission-controls them per class.
pub struct WorkloadManager {
    controller: AdmissionController,
    olap_row_threshold: f64,
}

impl WorkloadManager {
    /// A manager over the given configuration.
    pub fn new(cfg: WorkloadConfig) -> WorkloadManager {
        WorkloadManager {
            controller: AdmissionController::new(vec![cfg.oltp, cfg.olap], cfg.total_limit),
            olap_row_threshold: cfg.olap_row_threshold,
        }
    }

    /// Classify a compiled plan by shape and cardinality estimates.
    pub fn classify(&self, plan: &PlanNode) -> WorkloadClass {
        if is_olap_shape(plan, self.olap_row_threshold) {
            WorkloadClass::Olap
        } else {
            WorkloadClass::Oltp
        }
    }

    /// Wait for (or be refused) an execution slot for `class`,
    /// translating admission rejections onto the platform error
    /// taxonomy (`overloaded`, retryable).
    pub fn admit(&self, class: WorkloadClass) -> Result<AdmissionPermit<'_>> {
        let span = hana_obs::span("admission");
        match self.controller.admit(class.name()) {
            Ok(permit) => {
                span.attr("wait_ns", permit.admitted_after().as_nanos() as u64);
                Ok(permit)
            }
            Err(r) => Err(reject_to_error(r)),
        }
    }

    /// `(running, queued, peak_running)` for a class.
    pub fn class_stats(&self, class: WorkloadClass) -> (usize, usize, usize) {
        self.controller
            .class_stats(class.name())
            .unwrap_or((0, 0, 0))
    }
}

fn reject_to_error(r: Rejection) -> HanaError {
    HanaError::overloaded(r.to_string())
}

/// Whether the plan is analytical: any aggregation or federated
/// operator, or a scan whose cardinality estimate reaches `threshold`.
fn is_olap_shape(n: &PlanNode, threshold: f64) -> bool {
    match &n.op {
        PlanOp::Aggregate { .. } => true,
        // Federated and semi/relocation joins ship data across the
        // landscape — never point lookups.
        PlanOp::RemoteQuery { .. } | PlanOp::SemiJoin { .. } | PlanOp::RelocateJoin { .. } => true,
        // Index seeks are the OLTP hot path, but a wide range seek can
        // still return a large fraction of the table — classify by the
        // estimate like any other access path.
        PlanOp::ColumnScan { .. }
        | PlanOp::IndexSeek { .. }
        | PlanOp::RowScan { .. }
        | PlanOp::DistScan { .. }
        | PlanOp::HybridScan { .. } => n.est_rows >= threshold,
        PlanOp::FunctionScan { .. } => false,
        PlanOp::HashJoin { left, right, .. } => {
            is_olap_shape(left, threshold) || is_olap_shape(right, threshold)
        }
        PlanOp::NestedLoopJoin { left, right, .. } => {
            is_olap_shape(left, threshold) || is_olap_shape(right, threshold)
        }
        PlanOp::Filter { input, .. } | PlanOp::Finish { input, .. } => {
            is_olap_shape(input, threshold)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_types::Schema;

    fn scan(est: f64) -> PlanNode {
        PlanNode {
            op: PlanOp::ColumnScan {
                binding: "t".into(),
                table: "t".into(),
                preds: Vec::new(),
            },
            schema: Schema::of(&[]),
            est_rows: est,
            est_source: hana_query::EstSource::Heuristic,
        }
    }

    fn manager() -> WorkloadManager {
        WorkloadManager::new(WorkloadConfig::default())
    }

    #[test]
    fn point_lookup_is_oltp_large_scan_is_olap() {
        let m = manager();
        assert_eq!(m.classify(&scan(1.0)), WorkloadClass::Oltp);
        assert_eq!(m.classify(&scan(1_000_000.0)), WorkloadClass::Olap);
    }

    #[test]
    fn aggregate_is_olap_regardless_of_cardinality() {
        let m = manager();
        let agg = PlanNode {
            op: PlanOp::Aggregate {
                input: Box::new(scan(10.0)),
                group_by: Vec::new(),
                aggs: Vec::new(),
            },
            schema: Schema::of(&[]),
            est_rows: 1.0,
            est_source: hana_query::EstSource::Heuristic,
        };
        assert_eq!(m.classify(&agg), WorkloadClass::Olap);
    }

    #[test]
    fn finish_over_small_scan_stays_oltp() {
        let m = manager();
        let q = hana_sql::parse_statement("SELECT v FROM t WHERE k = 1").unwrap();
        let query = match q {
            hana_sql::Statement::Query(q) => q,
            _ => unreachable!(),
        };
        let finish = PlanNode {
            op: PlanOp::Finish {
                input: Box::new(scan(1.0)),
                query,
            },
            schema: Schema::of(&[]),
            est_rows: 1.0,
            est_source: hana_query::EstSource::Heuristic,
        };
        assert_eq!(m.classify(&finish), WorkloadClass::Oltp);
    }

    #[test]
    fn rejections_map_to_retryable_overloaded() {
        let m = WorkloadManager::new(WorkloadConfig {
            olap: ClassConfig::new("olap", 1)
                .with_queue(0)
                .with_timeout(Duration::from_millis(10)),
            ..WorkloadConfig::default()
        });
        let held = m.admit(WorkloadClass::Olap).unwrap();
        let err = m.admit(WorkloadClass::Olap).unwrap_err();
        assert_eq!(err.kind(), "overloaded");
        assert!(err.is_retryable(), "clients are told to back off + retry");
        drop(held);
        assert_eq!(m.class_stats(WorkloadClass::Olap).0, 0);
    }
}
