//! # hana-session
//!
//! Multi-session front end over [`HanaPlatform`]: many concurrent
//! [`Session`] handles share one platform, one parse/plan cache and one
//! [`WorkloadManager`]. This is the layer that turns the single-caller
//! engine into the paper's "one platform, many applications" shape —
//! prepared statements amortize parsing and planning across
//! executions, the shared cache amortizes them across *sessions*, and
//! per-class admission control keeps analytical bursts from starving
//! point lookups.
//!
//! ```
//! use std::sync::Arc;
//! use hana_core::HanaPlatform;
//! use hana_session::SessionManager;
//! use hana_types::Value;
//!
//! let platform = Arc::new(HanaPlatform::new_in_memory());
//! let manager = SessionManager::new(platform);
//! let session = manager.connect("SYSTEM", "manager").unwrap();
//! session.execute("CREATE COLUMN TABLE t (k INT, v INT)").unwrap();
//! session.execute("INSERT INTO t (k, v) VALUES (1, 10)").unwrap();
//!
//! let lookup = session.prepare("SELECT v FROM t WHERE k = ?").unwrap();
//! let rs = session.execute_prepared(&lookup, &[Value::Int(1)]).unwrap();
//! assert_eq!(rs.rows[0][0], Value::Int(10));
//! ```

mod plan_cache;
mod workload;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use hana_core::HanaPlatform;
use hana_sql::{parse_statement, Statement};
use hana_types::{Result, ResultSet, Value};

pub use plan_cache::{PlanCache, DEFAULT_PLAN_CACHE_CAPACITY};
pub use workload::{WorkloadClass, WorkloadConfig, WorkloadManager};

/// Shared front end: hands out [`Session`]s over one platform, one
/// plan cache and one workload manager.
pub struct SessionManager {
    platform: Arc<HanaPlatform>,
    cache: Arc<PlanCache>,
    workload: Arc<WorkloadManager>,
}

impl SessionManager {
    /// A manager with the default plan-cache capacity and workload
    /// configuration.
    pub fn new(platform: Arc<HanaPlatform>) -> SessionManager {
        Self::with_config(
            platform,
            DEFAULT_PLAN_CACHE_CAPACITY,
            WorkloadConfig::default(),
        )
    }

    /// A manager with explicit cache capacity and workload limits.
    pub fn with_config(
        platform: Arc<HanaPlatform>,
        cache_capacity: usize,
        workload: WorkloadConfig,
    ) -> SessionManager {
        SessionManager {
            platform,
            cache: Arc::new(PlanCache::new(cache_capacity)),
            workload: Arc::new(WorkloadManager::new(workload)),
        }
    }

    /// Authenticate and open a session.
    pub fn connect(&self, user: &str, password: &str) -> Result<Session> {
        let auth = self.platform.connect(user, password)?;
        hana_obs::registry()
            .counter("hana_session_connects_total")
            .inc();
        Ok(Session {
            platform: Arc::clone(&self.platform),
            cache: Arc::clone(&self.cache),
            workload: Arc::clone(&self.workload),
            auth,
            broadcast_limit: AtomicUsize::new(0),
        })
    }

    /// The shared plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The shared workload manager.
    pub fn workload(&self) -> &WorkloadManager {
        &self.workload
    }

    /// The underlying platform.
    pub fn platform(&self) -> &Arc<HanaPlatform> {
        &self.platform
    }
}

/// A statement parsed once, executable many times with different
/// positional parameters. Create with [`Session::prepare`].
pub struct PreparedStatement {
    stmt: Arc<Statement>,
    param_count: usize,
    sql: String,
}

impl PreparedStatement {
    /// Number of `?` placeholders the statement declares.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The original SQL text.
    pub fn sql(&self) -> &str {
        &self.sql
    }
}

/// One application connection. Cheap to create; safe to use from the
/// owning thread while other sessions run concurrently on others.
pub struct Session {
    platform: Arc<HanaPlatform>,
    cache: Arc<PlanCache>,
    workload: Arc<WorkloadManager>,
    auth: hana_core::Session,
    /// Per-session broadcast build-side limit; 0 = unset (inherit the
    /// environment/default resolution in hana-query).
    broadcast_limit: AtomicUsize,
}

impl Session {
    /// The session id assigned at connect.
    pub fn id(&self) -> u64 {
        self.auth.id
    }

    /// The authenticated user.
    pub fn user(&self) -> &str {
        &self.auth.user
    }

    /// Set (or clear with `None`) this session's broadcast build-side
    /// row limit. While set, it overrides the
    /// `HANA_BROADCAST_BUILD_ROW_LIMIT` environment variable and the
    /// compiled-in default for statements this session executes.
    pub fn set_broadcast_build_row_limit(&self, limit: Option<usize>) {
        self.broadcast_limit
            .store(limit.unwrap_or(0), Ordering::Relaxed);
    }

    /// The session's broadcast limit setting, if any.
    pub fn broadcast_build_row_limit(&self) -> Option<usize> {
        match self.broadcast_limit.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        }
    }

    /// Parse once; execute later with [`Session::execute_prepared`].
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement> {
        let stmt = parse_statement(sql)?;
        hana_obs::registry()
            .counter("hana_session_prepares_total")
            .inc();
        Ok(PreparedStatement {
            param_count: stmt.param_count(),
            stmt: Arc::new(stmt),
            sql: sql.to_string(),
        })
    }

    /// Execute a prepared statement with positional parameter values
    /// (one per `?`, in text order).
    pub fn execute_prepared(
        &self,
        prepared: &PreparedStatement,
        params: &[Value],
    ) -> Result<ResultSet> {
        let bound = prepared.stmt.bind_params(params)?;
        // The WAL/DDL log must see the *bound* text (literals, not
        // `?`); statements the renderer doesn't cover can't carry
        // parameters, so their original text is already exact.
        let text = bound.to_sql_text().unwrap_or_else(|| prepared.sql.clone());
        self.execute_statement(bound, &text)
    }

    /// Parse and execute one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<ResultSet> {
        self.execute_statement(parse_statement(sql)?, sql)
    }

    fn execute_statement(&self, stmt: Statement, sql_text: &str) -> Result<ResultSet> {
        let _session_span = hana_obs::span("session_statement");
        match stmt {
            Statement::Query(q) => self.execute_query(q),
            // DML is transactional work: admitted as OLTP so analytical
            // floods cannot starve writes, but never plan-cached (DML
            // goes through the platform's WAL/txn path wholesale).
            dml @ (Statement::Insert { .. }
            | Statement::Update { .. }
            | Statement::Delete { .. }) => {
                let _permit = self.workload.admit(WorkloadClass::Oltp)?;
                let start = Instant::now();
                let result = self.platform.execute_parsed(&self.auth, dml, sql_text);
                record_latency(WorkloadClass::Oltp, start, result.is_ok());
                result
            }
            // DDL and transaction control bypass admission: they hold
            // no pool slots worth rationing, and blocking a COMMIT
            // behind a full OLAP queue would invert priorities.
            other => self.platform.execute_parsed(&self.auth, other, sql_text),
        }
    }

    fn execute_query(&self, q: hana_sql::Query) -> Result<ResultSet> {
        // Canonical text (AST rendered back to SQL) is the cache key:
        // formatting and case differences collapse onto one entry, and
        // bound parameters appear as literals so each distinct binding
        // gets the plan its cardinality estimates deserve.
        let key = q.to_string();
        let version = self.platform.catalog_version();
        let plan = match self.cache.get(&key, version) {
            Some(plan) => plan,
            None => {
                let compiled = Arc::new(self.platform.plan_query(&self.auth, &q)?);
                self.cache.insert(key, version, Arc::clone(&compiled));
                compiled
            }
        };
        let class = self.workload.classify(&plan);
        let _permit = self.workload.admit(class)?;
        let start = Instant::now();
        let result = {
            let _g = self
                .broadcast_build_row_limit()
                .map(hana_query::override_broadcast_build_row_limit);
            self.platform.execute_plan(&self.auth, &plan)
        };
        record_latency(class, start, result.is_ok());
        result
    }

    /// Shortcut: this session's view of the platform's observability
    /// snapshot.
    pub fn observability_snapshot(&self) -> hana_obs::RegistrySnapshot {
        self.platform.observability_snapshot()
    }
}

/// Record per-class statement latency and outcome counters.
fn record_latency(class: WorkloadClass, start: Instant, ok: bool) {
    let obs = hana_obs::registry();
    let name = class.name();
    obs.histogram(&format!("hana_session_latency_ns_{name}"))
        .record(start.elapsed().as_nanos() as u64);
    obs.counter(&format!("hana_session_statements_total_{name}"))
        .inc();
    if !ok {
        obs.counter(&format!("hana_session_errors_total_{name}"))
            .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> SessionManager {
        SessionManager::new(Arc::new(HanaPlatform::new_in_memory()))
    }

    fn setup(mgr: &SessionManager) -> Session {
        let s = mgr.connect("SYSTEM", "manager").unwrap();
        s.execute("CREATE COLUMN TABLE t (k INT, v INT)").unwrap();
        for i in 0..10 {
            s.execute(&format!("INSERT INTO t (k, v) VALUES ({i}, {})", i * 10))
                .unwrap();
        }
        s
    }

    #[test]
    fn prepared_point_lookup_round_trips() {
        let mgr = manager();
        let s = setup(&mgr);
        let ps = s.prepare("SELECT v FROM t WHERE k = ?").unwrap();
        assert_eq!(ps.param_count(), 1);
        for k in 0..10 {
            let rs = s.execute_prepared(&ps, &[Value::Int(k)]).unwrap();
            assert_eq!(rs.rows.len(), 1);
            assert_eq!(rs.rows[0][0], Value::Int(k * 10));
        }
    }

    #[test]
    fn plan_cache_hits_on_repeat_and_across_sessions() {
        let mgr = manager();
        let s1 = setup(&mgr);
        let ps = s1.prepare("SELECT v FROM t WHERE k = ?").unwrap();
        s1.execute_prepared(&ps, &[Value::Int(1)]).unwrap();
        assert_eq!(mgr.plan_cache().len(), 1);
        let hits = hana_obs::registry()
            .counter("hana_session_plan_cache_hits_total")
            .get();
        // Same binding again: a hit, from a different session too.
        s1.execute_prepared(&ps, &[Value::Int(1)]).unwrap();
        let s2 = mgr.connect("SYSTEM", "manager").unwrap();
        let ps2 = s2.prepare("SELECT v FROM t WHERE k = ?").unwrap();
        s2.execute_prepared(&ps2, &[Value::Int(1)]).unwrap();
        assert_eq!(
            hana_obs::registry()
                .counter("hana_session_plan_cache_hits_total")
                .get(),
            hits + 2,
            "repeat executions hit the shared cache"
        );
    }

    #[test]
    fn ddl_invalidates_and_prepared_statements_reprepare() {
        let mgr = manager();
        let s = setup(&mgr);
        let ps = s.prepare("SELECT v FROM t WHERE k = ?").unwrap();
        assert_eq!(
            s.execute_prepared(&ps, &[Value::Int(1)]).unwrap().rows[0][0],
            Value::Int(10)
        );
        // DROP + CREATE with different contents: the cached plan is
        // stale; the prepared handle must transparently re-plan.
        s.execute("DROP TABLE t").unwrap();
        s.execute("CREATE COLUMN TABLE t (k INT, v INT)").unwrap();
        s.execute("INSERT INTO t (k, v) VALUES (1, 777)").unwrap();
        assert_eq!(
            s.execute_prepared(&ps, &[Value::Int(1)]).unwrap().rows[0][0],
            Value::Int(777),
            "prepared statement re-prepared against the new table"
        );
    }

    #[test]
    fn create_index_invalidates_cached_plans() {
        let mgr = manager();
        let s = setup(&mgr);
        let ps = s.prepare("SELECT v FROM t WHERE k = ?").unwrap();
        s.execute_prepared(&ps, &[Value::Int(1)]).unwrap();
        let invalidations = || {
            hana_obs::registry()
                .counter("hana_session_plan_cache_invalidations_total")
                .get()
        };
        let before = invalidations();
        // CREATE INDEX bumps the catalog version: the cached plan (a
        // full scan) is stale, and the prepared handle must re-prepare
        // transparently into an index seek.
        s.execute("CREATE INDEX ix_k ON t (k)").unwrap();
        let rs = s.execute_prepared(&ps, &[Value::Int(1)]).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(10));
        assert_eq!(
            invalidations(),
            before + 1,
            "stale plan dropped, not reused"
        );
        let explain = s.execute("EXPLAIN SELECT v FROM t WHERE k = 1").unwrap();
        let text: Vec<String> = explain.rows.iter().map(|r| r[0].to_string()).collect();
        assert!(
            text.iter().any(|l| l.contains("Index Seek")),
            "re-planned query seeks the new index: {text:?}"
        );
        // DROP INDEX invalidates again; the seek plan must not outlive
        // the index it depends on.
        let before = invalidations();
        s.execute("DROP INDEX ix_k").unwrap();
        let rs = s.execute_prepared(&ps, &[Value::Int(1)]).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(10));
        assert_eq!(invalidations(), before + 1);
    }

    #[test]
    fn bind_mismatch_is_a_plan_error() {
        let mgr = manager();
        let s = setup(&mgr);
        let ps = s.prepare("SELECT v FROM t WHERE k = ?").unwrap();
        let err = s.execute_prepared(&ps, &[]).unwrap_err();
        assert_eq!(err.kind(), "plan");
    }

    #[test]
    fn per_session_broadcast_setting() {
        let mgr = manager();
        let s = mgr.connect("SYSTEM", "manager").unwrap();
        assert_eq!(s.broadcast_build_row_limit(), None);
        s.set_broadcast_build_row_limit(Some(42));
        assert_eq!(s.broadcast_build_row_limit(), Some(42));
        s.set_broadcast_build_row_limit(None);
        assert_eq!(s.broadcast_build_row_limit(), None);
    }
}
