//! Shared parse/plan cache.
//!
//! Plans are cached under their canonical SQL text (the parser's AST
//! rendered back to text, so formatting differences collapse onto one
//! entry) together with the catalog version they were compiled under.
//! Any DDL — CREATE/DROP, function registration, delta merge — bumps
//! the version, and the next lookup purges every stale entry, so a
//! prepared statement re-prepares transparently instead of executing a
//! plan that references dropped tables or stale cardinalities.
//!
//! Counters in the global `hana-obs` registry:
//! `hana_session_plan_cache_{hits,misses,evictions,invalidations}_total`
//! and the `hana_session_plan_cache_entries` gauge.

use std::collections::HashMap;
use std::sync::Arc;

use hana_query::PlanNode;
use parking_lot::Mutex;

/// Default maximum number of cached plans.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 4096;

struct CacheEntry {
    plan: Arc<PlanNode>,
    version: u64,
    last_used: u64,
}

struct CacheState {
    entries: HashMap<String, CacheEntry>,
    /// Newest catalog version any caller has presented; entries older
    /// than this are purged on the next lookup.
    seen_version: u64,
    /// Logical clock for LRU ordering.
    tick: u64,
}

/// Shared, version-aware LRU plan cache.
pub struct PlanCache {
    capacity: usize,
    state: Mutex<CacheState>,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (at least one).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            state: Mutex::new(CacheState {
                entries: HashMap::new(),
                seen_version: 0,
                tick: 0,
            }),
        }
    }

    /// Look up the plan cached for `key` under catalog version
    /// `version`. Seeing a newer version than any before purges all
    /// stale entries first (counted as invalidations, not evictions).
    pub fn get(&self, key: &str, version: u64) -> Option<Arc<PlanNode>> {
        let obs = hana_obs::registry();
        let mut st = self.state.lock();
        if version > st.seen_version {
            st.seen_version = version;
            let before = st.entries.len();
            st.entries.retain(|_, e| e.version == version);
            let purged = before - st.entries.len();
            if purged > 0 {
                obs.counter("hana_session_plan_cache_invalidations_total")
                    .add(purged as u64);
            }
        }
        st.tick += 1;
        let tick = st.tick;
        let hit = match st.entries.get_mut(key) {
            Some(e) if e.version == version => {
                e.last_used = tick;
                Some(Arc::clone(&e.plan))
            }
            _ => None,
        };
        obs.gauge("hana_session_plan_cache_entries")
            .set(st.entries.len() as i64);
        drop(st);
        match &hit {
            Some(_) => obs.counter("hana_session_plan_cache_hits_total").inc(),
            None => obs.counter("hana_session_plan_cache_misses_total").inc(),
        }
        hit
    }

    /// Insert a plan compiled under `version`. At capacity the
    /// least-recently-used entry is evicted.
    pub fn insert(&self, key: String, version: u64, plan: Arc<PlanNode>) {
        let obs = hana_obs::registry();
        let mut st = self.state.lock();
        if version < st.seen_version {
            // Compiled against an already-superseded catalog: caching
            // it would resurrect a stale plan.
            return;
        }
        st.tick += 1;
        let tick = st.tick;
        if st.entries.len() >= self.capacity && !st.entries.contains_key(&key) {
            if let Some(lru) = st
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                st.entries.remove(&lru);
                obs.counter("hana_session_plan_cache_evictions_total").inc();
            }
        }
        st.entries.insert(
            key,
            CacheEntry {
                plan,
                version,
                last_used: tick,
            },
        );
        obs.gauge("hana_session_plan_cache_entries")
            .set(st.entries.len() as i64);
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (counted as invalidations).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        let n = st.entries.len();
        st.entries.clear();
        let obs = hana_obs::registry();
        if n > 0 {
            obs.counter("hana_session_plan_cache_invalidations_total")
                .add(n as u64);
        }
        obs.gauge("hana_session_plan_cache_entries").set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_query::PlanOp;
    use hana_types::Schema;

    fn plan(est: f64) -> Arc<PlanNode> {
        Arc::new(PlanNode {
            op: PlanOp::ColumnScan {
                binding: "t".into(),
                table: "t".into(),
                preds: Vec::new(),
            },
            schema: Schema::of(&[]),
            est_rows: est,
            est_source: hana_query::EstSource::Heuristic,
        })
    }

    fn counter(name: &str) -> u64 {
        hana_obs::registry().counter(name).get()
    }

    #[test]
    fn hit_after_insert_same_version() {
        let cache = PlanCache::new(8);
        assert!(cache.get("q1", 1).is_none());
        cache.insert("q1".into(), 1, plan(10.0));
        let hit = cache.get("q1", 1).expect("hit");
        assert_eq!(hit.est_rows, 10.0);
    }

    #[test]
    fn newer_version_purges_stale_entries() {
        let cache = PlanCache::new(8);
        cache.insert("q1".into(), 1, plan(10.0));
        cache.insert("q2".into(), 1, plan(20.0));
        let inv_before = counter("hana_session_plan_cache_invalidations_total");
        assert!(cache.get("q1", 2).is_none(), "stale entry must not hit");
        assert_eq!(
            counter("hana_session_plan_cache_invalidations_total"),
            inv_before + 2,
            "both version-1 entries purged"
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn stale_insert_is_refused() {
        let cache = PlanCache::new(8);
        // A lookup at version 5 moves the watermark...
        assert!(cache.get("q1", 5).is_none());
        // ...so a plan compiled under version 3 must not be cached.
        cache.insert("q1".into(), 3, plan(10.0));
        assert!(cache.get("q1", 5).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), 1, plan(1.0));
        cache.insert("b".into(), 1, plan(2.0));
        // Touch "a" so "b" is the LRU.
        assert!(cache.get("a", 1).is_some());
        let ev_before = counter("hana_session_plan_cache_evictions_total");
        cache.insert("c".into(), 1, plan(3.0));
        assert_eq!(
            counter("hana_session_plan_cache_evictions_total"),
            ev_before + 1
        );
        assert!(cache.get("a", 1).is_some(), "recently used survives");
        assert!(cache.get("b", 1).is_none(), "LRU evicted");
        assert!(cache.get("c", 1).is_some());
    }
}
