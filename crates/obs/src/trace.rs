//! Span-based tracing with explicit start/finish and parent ids.
//!
//! A [`Tracer`] is installed on the current thread with
//! [`Tracer::install`]; while the guard lives, [`span`] opens a span
//! parented to the innermost open span on this thread and finishes it
//! when the returned [`Span`] guard drops. Code that runs without an
//! installed tracer pays one thread-local read — the returned guard is
//! inert. There is no background machinery: spans are plain records
//! with relative start/end nanoseconds, collected inside the tracer
//! and assembled into a [`crate::QueryProfile`] afterwards.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

thread_local! {
    /// Stack of installed tracers (innermost last).
    static TRACERS: RefCell<Vec<Arc<Tracer>>> = const { RefCell::new(Vec::new()) };
    /// Stack of open spans on this thread: (tracer token, span id).
    ///
    /// Keyed by the tracer's process-unique token, NOT its address: a
    /// `Span` guard handed to another thread leaves its entry here
    /// until that thread drops it, and if entries were keyed by
    /// address, a later tracer allocated at the same address would
    /// adopt the stale entry as a parent — spans from one session
    /// bleeding into another's profile. Tokens are never reused, so a
    /// stale entry can only ever be ignored.
    static OPEN_SPANS: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Source of process-unique tracer tokens.
static NEXT_TRACER_TOKEN: AtomicU64 = AtomicU64::new(1);

/// One recorded span. Times are nanoseconds since the tracer's epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id (index into the tracer's span list).
    pub id: u64,
    /// Parent span id, if any.
    pub parent: Option<u64>,
    /// Operator / phase name.
    pub name: String,
    /// Start offset (ns since tracer creation).
    pub start_ns: u64,
    /// End offset; `None` while the span is still open.
    pub end_ns: Option<u64>,
    /// Output rows, when the operator reported them.
    pub rows: Option<u64>,
    /// Output bytes (estimated), when reported.
    pub bytes: Option<u64>,
    /// Worker threads used, when reported.
    pub workers: Option<u64>,
    /// Free-form numeric attributes.
    pub attrs: Vec<(String, u64)>,
}

impl SpanRecord {
    /// Wall time of a finished span (0 while open).
    pub fn wall_ns(&self) -> u64 {
        self.end_ns.unwrap_or(self.start_ns) - self.start_ns
    }
}

#[derive(Default)]
struct TracerState {
    spans: Vec<SpanRecord>,
    started: u64,
    finished: u64,
}

/// Collects the spans of one traced execution (typically one query).
pub struct Tracer {
    /// Process-unique identity (see `OPEN_SPANS`).
    token: u64,
    epoch: Instant,
    state: Mutex<TracerState>,
}

impl Tracer {
    /// A fresh tracer.
    pub fn new() -> Arc<Tracer> {
        Arc::new(Tracer {
            token: NEXT_TRACER_TOKEN.fetch_add(1, Ordering::Relaxed),
            epoch: Instant::now(),
            state: Mutex::new(TracerState::default()),
        })
    }

    /// This tracer's process-unique token (never reused).
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Install this tracer as the current one on the calling thread
    /// until the guard drops. Installs nest (innermost wins).
    pub fn install(self: &Arc<Tracer>) -> TracerGuard {
        TRACERS.with(|t| t.borrow_mut().push(Arc::clone(self)));
        TracerGuard {
            tracer: Arc::clone(self),
        }
    }

    /// Start a span with an explicit parent (the [`span`] free function
    /// derives the parent from the thread's innermost open span).
    pub fn start_span(self: &Arc<Tracer>, name: &str, parent: Option<u64>) -> Span {
        let id = {
            let mut st = self.state.lock().unwrap();
            let id = st.spans.len() as u64;
            st.started += 1;
            st.spans.push(SpanRecord {
                id,
                parent,
                name: name.to_string(),
                start_ns: self.epoch.elapsed().as_nanos() as u64,
                end_ns: None,
                rows: None,
                bytes: None,
                workers: None,
                attrs: Vec::new(),
            });
            id
        };
        OPEN_SPANS.with(|s| s.borrow_mut().push((self.token, id)));
        Span {
            inner: Some((Arc::clone(self), id)),
        }
    }

    /// `(started, finished)` span counts so far.
    pub fn span_counts(&self) -> (u64, u64) {
        let st = self.state.lock().unwrap();
        (st.started, st.finished)
    }

    /// Copies of all recorded spans (finished or open).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.state.lock().unwrap().spans.clone()
    }

    /// Assemble the finished spans into a profile tree.
    pub fn profile(&self) -> crate::QueryProfile {
        let st = self.state.lock().unwrap();
        crate::QueryProfile::from_spans(&st.spans, st.started, st.finished)
    }

    fn finish_span(&self, id: u64) {
        let end = self.epoch.elapsed().as_nanos() as u64;
        let mut st = self.state.lock().unwrap();
        st.finished += 1;
        st.spans[id as usize].end_ns = Some(end);
    }

    fn update_span(&self, id: u64, f: impl FnOnce(&mut SpanRecord)) {
        f(&mut self.state.lock().unwrap().spans[id as usize]);
    }
}

/// Keeps a tracer installed on the current thread.
pub struct TracerGuard {
    tracer: Arc<Tracer>,
}

impl Drop for TracerGuard {
    fn drop(&mut self) {
        TRACERS.with(|t| {
            let mut stack = t.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|x| Arc::ptr_eq(x, &self.tracer)) {
                stack.remove(pos);
            }
        });
    }
}

/// The tracer currently installed on this thread, if any.
pub fn current_tracer() -> Option<Arc<Tracer>> {
    TRACERS.with(|t| t.borrow().last().cloned())
}

/// Open a span under the thread's current tracer, parented to the
/// innermost open span. Without an installed tracer this is a no-op
/// and returns an inert guard.
pub fn span(name: &str) -> Span {
    let Some(tracer) = current_tracer() else {
        return Span { inner: None };
    };
    let token = tracer.token;
    let parent = OPEN_SPANS.with(|s| {
        s.borrow()
            .iter()
            .rev()
            .find(|(t, _)| *t == token)
            .map(|&(_, id)| id)
    });
    tracer.start_span(name, parent)
}

/// RAII span guard: finished exactly once, when dropped (or via the
/// explicit [`Span::finish`]).
pub struct Span {
    inner: Option<(Arc<Tracer>, u64)>,
}

impl Span {
    /// Whether this guard records anything (false without a tracer).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's id, when recording.
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|(_, id)| *id)
    }

    /// Report output rows.
    pub fn set_rows(&self, n: u64) {
        self.update(|rec| rec.rows = Some(n));
    }

    /// Report output bytes (estimated).
    pub fn set_bytes(&self, n: u64) {
        self.update(|rec| rec.bytes = Some(n));
    }

    /// Report worker threads used.
    pub fn set_workers(&self, n: u64) {
        self.update(|rec| rec.workers = Some(n));
    }

    /// Attach a named numeric attribute.
    pub fn attr(&self, name: &str, value: u64) {
        self.update(|rec| rec.attrs.push((name.to_string(), value)));
    }

    fn update(&self, f: impl FnOnce(&mut SpanRecord)) {
        if let Some((tracer, id)) = &self.inner {
            tracer.update_span(*id, f);
        }
    }

    /// Finish explicitly (equivalent to dropping).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((tracer, id)) = self.inner.take() {
            OPEN_SPANS.with(|s| {
                let mut stack = s.borrow_mut();
                if let Some(pos) = stack.iter().rposition(|&e| e == (tracer.token, id)) {
                    stack.remove(pos);
                }
            });
            tracer.finish_span(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_without_tracer_is_inert() {
        assert!(current_tracer().is_none());
        let s = span("orphan");
        assert!(!s.is_recording());
        s.set_rows(5); // no-op, must not panic
    }

    #[test]
    fn spans_nest_and_finish_once() {
        let tracer = Tracer::new();
        {
            let _g = tracer.install();
            let root = span("root");
            {
                let child = span("child");
                child.set_rows(7);
                child.attr("chunks", 3);
            }
            root.set_rows(1);
        }
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].rows, Some(7));
        assert_eq!(spans[1].attrs, vec![("chunks".to_string(), 3)]);
        assert!(spans.iter().all(|s| s.end_ns.is_some()));
        // Child finished before root, so child end <= root end and
        // child start >= root start (wall times nest).
        assert!(spans[1].start_ns >= spans[0].start_ns);
        assert!(spans[1].end_ns.unwrap() <= spans[0].end_ns.unwrap());
        assert_eq!(tracer.span_counts(), (2, 2));
    }

    #[test]
    fn uninstalled_tracer_gets_no_spans() {
        let a = Tracer::new();
        let b = Tracer::new();
        {
            let _ga = a.install();
            {
                let _gb = b.install();
                let _s = span("inner"); // goes to b (innermost)
            }
            let _s = span("outer"); // goes to a
        }
        assert_eq!(a.spans().len(), 1);
        assert_eq!(a.spans()[0].name, "outer");
        assert_eq!(b.spans().len(), 1);
        assert_eq!(b.spans()[0].name, "inner");
    }

    #[test]
    fn tracer_tokens_are_unique() {
        let a = Tracer::new();
        let b = Tracer::new();
        assert_ne!(a.token(), b.token());
    }

    /// Regression test for cross-session span bleed: a `Span` guard
    /// moved to (and dropped on) another thread leaves a stale entry on
    /// the origin thread's open-span stack. When that stack was keyed
    /// by tracer *address*, a later session whose tracer reused the
    /// freed allocation would misparent its spans to the dead session's
    /// span id. Keyed by unique token, the stale entry never matches.
    #[test]
    fn cross_thread_span_drop_cannot_misparent_later_sessions() {
        // Session 1 opens a span here but the guard is dropped on a
        // pool thread — the classic "query finishes on a worker"
        // interleaving. The origin thread's OPEN_SPANS entry survives.
        let t1 = Tracer::new();
        let leaked = {
            let _g = t1.install();
            span("session1-root")
        };
        std::thread::spawn(move || drop(leaked)).join().unwrap();
        assert_eq!(t1.span_counts(), (1, 1));
        drop(t1);

        // Many later sessions on this same thread: none of their root
        // spans may adopt a parent. Looping gives the allocator every
        // chance to reuse t1's freed address.
        for i in 0..64 {
            let t = Tracer::new();
            {
                let _g = t.install();
                let _s = span("later-root");
            }
            let spans = t.spans();
            assert_eq!(spans.len(), 1);
            assert_eq!(
                spans[0].parent, None,
                "session {i} adopted a stale parent from a dead session"
            );
        }
    }

    #[test]
    fn explicit_parent_and_wall_ns() {
        let tracer = Tracer::new();
        let root = tracer.start_span("r", None);
        let child = tracer.start_span("c", root.id());
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(child);
        drop(root);
        let spans = tracer.spans();
        assert_eq!(spans[1].parent, Some(0));
        assert!(spans[1].wall_ns() > 0);
        assert!(spans[1].wall_ns() <= spans[0].wall_ns());
    }
}
