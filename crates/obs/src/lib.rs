//! # hana-obs
//!
//! Unified observability for the platform: a lock-cheap global
//! [`Registry`] of named counters, gauges and log-bucketed latency
//! histograms; a span-based [`Tracer`] (explicit start/finish spans
//! with parent ids — no external dependencies, works in the
//! vendored-offline build); and a per-query [`QueryProfile`] tree
//! assembled from finished spans that renders as an
//! `EXPLAIN ANALYZE`-style report.
//!
//! The registry answers "how is the system doing" (throughput, cache
//! hit ratios, retry counts, latency percentiles, since process
//! start); the tracer answers "where did *this* query spend its time"
//! (wall time, rows, bytes and worker count per operator).
//!
//! ```
//! use hana_obs::{registry, span, Tracer};
//!
//! // Metrics: named instruments, get-or-create, atomic updates.
//! registry().counter("demo_rows_total").add(42);
//! registry().histogram("demo_latency_ns").record(1_500);
//! let snap = registry().snapshot();
//! assert_eq!(snap.counter("demo_rows_total"), 42);
//!
//! // Tracing: install a tracer, emit nested spans, build the profile.
//! let tracer = Tracer::new();
//! {
//!     let _g = tracer.install();
//!     let root = span("query");
//!     {
//!         let scan = span("scan");
//!         scan.set_rows(1000);
//!     }
//!     root.set_rows(10);
//! }
//! let profile = tracer.profile();
//! assert_eq!(profile.roots[0].name, "query");
//! assert_eq!(profile.roots[0].children[0].rows, Some(1000));
//! ```

mod profile;
mod registry;
mod trace;

pub use profile::{ProfileNode, QueryProfile};
pub use registry::{
    registry, warn, Counter, Gauge, Histogram, HistogramSnapshot, Registry, RegistrySnapshot,
};
pub use trace::{current_tracer, span, Span, SpanRecord, Tracer, TracerGuard};
