//! Per-query profile trees assembled from finished spans.
//!
//! A [`QueryProfile`] is the `EXPLAIN ANALYZE` counterpart of a trace:
//! the spans of one query arranged by parent id, each node carrying
//! wall time, rows, bytes and worker count. [`QueryProfile::render`]
//! prints the tree as an indented report.

use crate::trace::SpanRecord;

/// One operator in the profile tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Operator / phase name.
    pub name: String,
    /// Wall time of the span in nanoseconds.
    pub wall_ns: u64,
    /// Output rows, when reported.
    pub rows: Option<u64>,
    /// Output bytes (estimated), when reported.
    pub bytes: Option<u64>,
    /// Worker threads used, when reported.
    pub workers: Option<u64>,
    /// Free-form numeric attributes.
    pub attrs: Vec<(String, u64)>,
    /// Child operators, in span-start order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Total number of nodes in this subtree (including self).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ProfileNode::size).sum::<usize>()
    }

    /// Whether every child's wall time is at most this node's
    /// (recursively) — the consistency property of nested spans.
    pub fn nests_consistently(&self) -> bool {
        self.children
            .iter()
            .all(|c| c.wall_ns <= self.wall_ns && c.nests_consistently())
    }
}

/// The profile tree of one traced query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueryProfile {
    /// Top-level spans (usually exactly one `query` root).
    pub roots: Vec<ProfileNode>,
    /// Spans started during the trace.
    pub spans_started: u64,
    /// Spans finished during the trace.
    pub spans_finished: u64,
}

impl QueryProfile {
    /// Build a tree from raw span records. Open (unfinished) spans are
    /// included with their wall time so far set to zero.
    pub fn from_spans(spans: &[SpanRecord], started: u64, finished: u64) -> QueryProfile {
        let mut nodes: Vec<ProfileNode> = spans
            .iter()
            .map(|s| ProfileNode {
                name: s.name.clone(),
                wall_ns: s.wall_ns(),
                rows: s.rows,
                bytes: s.bytes,
                workers: s.workers,
                attrs: s.attrs.clone(),
                children: Vec::new(),
            })
            .collect();
        // Attach children to parents from the back: span ids are
        // allocated in start order, so a child's id is always greater
        // than its parent's and each node is final before it is moved.
        let mut roots = Vec::new();
        for (idx, span) in spans.iter().enumerate().rev() {
            let node = std::mem::replace(
                &mut nodes[idx],
                ProfileNode {
                    name: String::new(),
                    wall_ns: 0,
                    rows: None,
                    bytes: None,
                    workers: None,
                    attrs: Vec::new(),
                    children: Vec::new(),
                },
            );
            match span.parent {
                Some(p) if (p as usize) < idx => nodes[p as usize].children.insert(0, node),
                _ => roots.insert(0, node),
            }
        }
        QueryProfile {
            roots,
            spans_started: started,
            spans_finished: finished,
        }
    }

    /// Total wall time: the sum over root spans.
    pub fn total_wall_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.wall_ns).sum()
    }

    /// Whether child wall times never exceed their parent's, across
    /// the whole tree.
    pub fn nests_consistently(&self) -> bool {
        self.roots.iter().all(ProfileNode::nests_consistently)
    }

    /// Total number of operators in the profile.
    pub fn node_count(&self) -> usize {
        self.roots.iter().map(ProfileNode::size).sum()
    }

    /// Find the first node with `name` in pre-order, if any.
    pub fn find(&self, name: &str) -> Option<&ProfileNode> {
        fn walk<'a>(nodes: &'a [ProfileNode], name: &str) -> Option<&'a ProfileNode> {
            for n in nodes {
                if n.name == name {
                    return Some(n);
                }
                if let Some(hit) = walk(&n.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        walk(&self.roots, name)
    }

    /// Render as an indented `EXPLAIN ANALYZE`-style report.
    pub fn render(&self) -> String {
        fn fmt_ns(ns: u64) -> String {
            if ns >= 1_000_000_000 {
                format!("{:.2}s", ns as f64 / 1e9)
            } else if ns >= 1_000_000 {
                format!("{:.2}ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.1}us", ns as f64 / 1e3)
            } else {
                format!("{ns}ns")
            }
        }
        fn walk(node: &ProfileNode, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(if depth == 0 { "" } else { "-> " });
            out.push_str(&node.name);
            let mut parts = vec![format!("time={}", fmt_ns(node.wall_ns))];
            if let Some(r) = node.rows {
                parts.push(format!("rows={r}"));
            }
            if let Some(b) = node.bytes {
                parts.push(format!("bytes={b}"));
            }
            if let Some(w) = node.workers {
                parts.push(format!("workers={w}"));
            }
            for (k, v) in &node.attrs {
                parts.push(format!("{k}={v}"));
            }
            out.push_str(&format!(" ({})\n", parts.join(", ")));
            for c in &node.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            walk(r, 0, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn sample_profile() -> QueryProfile {
        let tracer = Tracer::new();
        {
            let _g = tracer.install();
            let root = crate::span("query");
            {
                let agg = crate::span("aggregate");
                {
                    let scan = crate::span("column_scan");
                    scan.set_rows(100_000);
                    scan.set_workers(4);
                }
                agg.set_rows(10);
            }
            root.set_rows(10);
            root.set_bytes(320);
        }
        tracer.profile()
    }

    #[test]
    fn tree_structure_matches_nesting() {
        let p = sample_profile();
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.node_count(), 3);
        assert_eq!(p.roots[0].name, "query");
        assert_eq!(p.roots[0].children[0].name, "aggregate");
        assert_eq!(p.roots[0].children[0].children[0].name, "column_scan");
        assert!(p.nests_consistently());
        assert_eq!(p.spans_started, 3);
        assert_eq!(p.spans_finished, 3);
    }

    #[test]
    fn find_locates_nodes() {
        let p = sample_profile();
        let scan = p.find("column_scan").expect("scan node");
        assert_eq!(scan.rows, Some(100_000));
        assert_eq!(scan.workers, Some(4));
        assert!(p.find("missing").is_none());
    }

    #[test]
    fn render_lists_all_operators() {
        let p = sample_profile();
        let text = p.render();
        assert!(text.contains("query (time="), "{text}");
        assert!(text.contains("-> aggregate"), "{text}");
        assert!(text.contains("-> column_scan"), "{text}");
        assert!(text.contains("rows=100000"), "{text}");
        assert!(text.contains("workers=4"), "{text}");
        assert!(text.contains("bytes=320"), "{text}");
    }

    #[test]
    fn sibling_order_is_start_order() {
        let tracer = Tracer::new();
        {
            let _g = tracer.install();
            let _root = crate::span("root");
            crate::span("a").finish();
            crate::span("b").finish();
            crate::span("c").finish();
        }
        let p = tracer.profile();
        let names: Vec<&str> = p.roots[0]
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
