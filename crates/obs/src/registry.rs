//! The global metrics registry: named counters, gauges and
//! log-bucketed latency histograms.
//!
//! Instruments are created on first use and live for the process
//! lifetime. The hot path is lock-free: callers hold an `Arc` to the
//! instrument (or re-look it up under a read lock) and update plain
//! atomics; the registry's write lock is only taken the first time a
//! name appears. Snapshots are plain data with JSON and
//! Prometheus-style text encodings — no sampling threads, no sinks.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Number of power-of-two histogram buckets (covers 1 ns … ~9.2 s and
/// beyond; the last bucket absorbs everything larger).
const BUCKETS: usize = 64;

/// Bounded ring of recent warnings kept for diagnostics.
const MAX_WARNINGS: usize = 64;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry all platform components report into.
pub fn registry() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Record a warning: it is printed to stderr, counted under
/// `hana_obs_warnings_total` and kept in the snapshot's bounded
/// recent-warnings list.
pub fn warn(message: impl Into<String>) {
    registry().warn(message.into());
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the current value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) `d`.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-bucketed histogram: bucket `i` holds values in
/// `[2^(i-1), 2^i)` (bucket 0 holds zero). Suited to nanosecond
/// latencies, where relative error per power-of-two bucket is fine.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Upper bound of a bucket (inclusive for reporting purposes).
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time view with derived percentiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= target {
                    return bucket_bound(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// Snapshot of one histogram: totals plus log-bucket percentile
/// estimates (each percentile is the upper bound of its bucket, i.e.
/// within one power of two of the true value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 95th percentile estimate.
    pub p95: u64,
    /// 99th percentile estimate.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A registry of named instruments.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
    warnings: Mutex<VecDeque<String>>,
}

fn get_or_create<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().unwrap().get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().unwrap();
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl Registry {
    /// An empty registry (components normally use [`registry`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the named counter. Cache the handle on hot paths.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// Get or create the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// Get or create the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// Record a warning (see the free function [`warn`]).
    pub fn warn(&self, message: String) {
        eprintln!("[hana-obs] warning: {message}");
        self.counter("hana_obs_warnings_total").inc();
        let mut w = self.warnings.lock().unwrap();
        if w.len() == MAX_WARNINGS {
            w.pop_front();
        }
        w.push_back(message);
    }

    /// Point-in-time view of every instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            warnings: self.warnings.lock().unwrap().iter().cloned().collect(),
        }
    }
}

/// Point-in-time view of a whole registry, JSON-serializable via
/// [`RegistrySnapshot::to_json`] and Prometheus-encodable via
/// [`RegistrySnapshot::to_prometheus`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Recent warnings, oldest first (bounded).
    pub warnings: Vec<String>,
}

impl RegistrySnapshot {
    /// Value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of a histogram (empty when absent).
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).copied().unwrap_or_default()
    }

    /// Sum of all counters whose name starts with `prefix` — used to
    /// aggregate per-source instruments like `hana_sda_attempts_total_*`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(&mut out, self.counters.iter(), |v| v.to_string());
        out.push_str("},\n  \"gauges\": {");
        push_entries(&mut out, self.gauges.iter(), |v| v.to_string());
        out.push_str("},\n  \"histograms\": {");
        push_entries(&mut out, self.histograms.iter(), |h| {
            format!(
                "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                h.count, h.sum, h.max, h.p50, h.p95, h.p99
            )
        });
        out.push_str("},\n  \"warnings\": [");
        for (i, w) in self.warnings.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(&json_escape(w));
            out.push('"');
        }
        out.push_str("]\n}\n");
        out
    }

    /// Render in the Prometheus text exposition format. Histograms are
    /// flattened to `_count`/`_sum`/`_max` plus quantile gauges. Metric
    /// names are sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*` charset —
    /// instruments named after spans (`exchange[repartition]`, …) would
    /// otherwise emit lines Prometheus rejects.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let name = prometheus_name(name);
            out.push_str(&format!("# TYPE {name} summary\n"));
            out.push_str(&format!("{name}_count {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_max {}\n", h.max));
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
            }
        }
        out
    }
}

/// Escape a registry instrument name into a legal Prometheus metric
/// name (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every illegal character becomes
/// `_`, a leading digit gets a `_` prefix, trailing runs of `_` from
/// stripped brackets are trimmed.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | ':' => out.push(c),
            // Escape runs (`[repartition]_rows`) collapse to one `_`.
            _ => {
                if !out.ends_with('_') {
                    out.push('_');
                }
            }
        }
    }
    while out.ends_with('_') && out.len() > 1 {
        out.pop();
    }
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    render: impl Fn(&V) -> String,
) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    \"");
        out.push_str(&json_escape(k));
        out.push_str("\": ");
        out.push_str(&render(v));
    }
    out.push_str("\n  ");
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_names_are_sanitized() {
        let r = Registry::new();
        r.counter("exchange[repartition]_rows").add(5);
        r.counter("hana_dist_rows_shuffled_total").add(7);
        r.gauge("latency[gather]").set(3);
        r.histogram("span[dist_scan[t]]").record(9);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("exchange_repartition_rows 5"), "{text}");
        assert!(text.contains("hana_dist_rows_shuffled_total 7"), "{text}");
        assert!(text.contains("latency_gather 3"), "{text}");
        assert!(text.contains("span_dist_scan_t_count 1"), "{text}");
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap_or_default();
            assert!(
                name.chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
                    && name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "illegal metric name in line: {line}"
            );
        }

        assert_eq!(prometheus_name("plain_name_total"), "plain_name_total");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("[]"), "_");
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        r.counter("c").add(3);
        r.counter("c").inc();
        r.gauge("g").set(-7);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), 4);
        assert_eq!(s.gauge("g"), -7);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn instrument_handles_are_shared() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert!(Arc::ptr_eq(&a, &b));
        a.add(1);
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn histogram_percentiles_are_within_one_bucket() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // True p50 = 500; the log bucket bound is 512.
        assert!(s.p50 >= 500 && s.p50 <= 1024, "p50 = {}", s.p50);
        assert!(s.p95 >= 950 && s.p95 <= 1024, "p95 = {}", s.p95);
        assert!(s.p99 >= 990 && s.p99 <= 1024, "p99 = {}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn histogram_of_zeros() {
        let h = Histogram::default();
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!((s.p50, s.p95, s.p99, s.max), (0, 0, 0, 0));
    }

    #[test]
    fn warnings_are_bounded_and_counted() {
        let r = Registry::new();
        for i in 0..(MAX_WARNINGS + 10) {
            r.warn(format!("w{i}"));
        }
        let s = r.snapshot();
        assert_eq!(s.warnings.len(), MAX_WARNINGS);
        assert_eq!(
            s.counter("hana_obs_warnings_total"),
            (MAX_WARNINGS + 10) as u64
        );
        assert_eq!(
            s.warnings.last().unwrap(),
            &format!("w{}", MAX_WARNINGS + 9)
        );
    }

    #[test]
    fn encodings_contain_instruments() {
        let r = Registry::new();
        r.counter("hana_demo_total").add(5);
        r.gauge("hana_demo_gauge").set(2);
        r.histogram("hana_demo_ns").record(100);
        r.warn("be \"careful\"".into());
        let s = r.snapshot();
        let json = s.to_json();
        assert!(json.contains("\"hana_demo_total\": 5"), "{json}");
        assert!(json.contains("\"hana_demo_gauge\": 2"), "{json}");
        assert!(json.contains("\"count\": 1"), "{json}");
        assert!(json.contains("be \\\"careful\\\""), "{json}");
        let prom = s.to_prometheus();
        assert!(prom.contains("# TYPE hana_demo_total counter"), "{prom}");
        assert!(prom.contains("hana_demo_total 5"), "{prom}");
        assert!(prom.contains("hana_demo_ns_count 1"), "{prom}");
        assert!(prom.contains("hana_demo_ns{quantile=\"0.5\"}"), "{prom}");
    }

    #[test]
    fn bucket_index_monotone() {
        let mut last = 0;
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= last);
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }
}
