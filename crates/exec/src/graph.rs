//! Dependency-ordered task graphs.
//!
//! A [`TaskGraph`] holds named tasks plus happens-before edges and runs
//! them on a [`WorkerPool`]: a task is enqueued the moment its last
//! dependency finishes, so independent pipeline stages overlap freely.
//! [`TaskGraph::run_to_completion`] blocks until the whole graph has
//! executed.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::pool::WorkerPool;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Handle to a task added to a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskId(usize);

/// Errors from running a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The dependency edges contain a cycle; nothing was run.
    Cycle,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Cycle => write!(f, "task graph contains a dependency cycle"),
        }
    }
}

impl std::error::Error for GraphError {}

struct Node {
    label: String,
    job: Option<Job>,
    dependents: Vec<usize>,
    deps: usize,
}

/// A DAG of tasks with explicit dependency edges.
#[derive(Default)]
pub struct TaskGraph {
    nodes: Vec<Node>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> TaskGraph {
        TaskGraph::default()
    }

    /// Add a task with no dependencies yet.
    pub fn add_task(
        &mut self,
        label: impl Into<String>,
        job: impl FnOnce() + Send + 'static,
    ) -> TaskId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            label: label.into(),
            job: Some(Box::new(job)),
            dependents: Vec::new(),
            deps: 0,
        });
        TaskId(id)
    }

    /// Add a task that runs only after all of `after`.
    pub fn add_task_after(
        &mut self,
        label: impl Into<String>,
        after: &[TaskId],
        job: impl FnOnce() + Send + 'static,
    ) -> TaskId {
        let id = self.add_task(label, job);
        for &dep in after {
            self.add_dependency(dep, id);
        }
        id
    }

    /// Record that `after` must not start before `before` finished.
    pub fn add_dependency(&mut self, before: TaskId, after: TaskId) {
        assert!(before.0 < self.nodes.len() && after.0 < self.nodes.len());
        assert_ne!(before.0, after.0, "task cannot depend on itself");
        self.nodes[before.0].dependents.push(after.0);
        self.nodes[after.0].deps += 1;
    }

    /// Number of tasks in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Label of a task (for diagnostics).
    pub fn label(&self, id: TaskId) -> &str {
        &self.nodes[id.0].label
    }

    fn has_cycle(&self) -> bool {
        // Kahn's algorithm: if topological order misses nodes, a cycle
        // exists.
        let mut indeg: Vec<usize> = self.nodes.iter().map(|n| n.deps).collect();
        let mut ready: Vec<usize> = indeg
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        let mut seen = 0;
        while let Some(i) = ready.pop() {
            seen += 1;
            for &d in &self.nodes[i].dependents {
                indeg[d] -= 1;
                if indeg[d] == 0 {
                    ready.push(d);
                }
            }
        }
        seen < self.nodes.len()
    }

    /// Run every task on the pool in dependency order and block until
    /// all finished. Task panics do not cancel downstream tasks; the
    /// first panic is re-raised here once the graph has drained.
    pub fn run_to_completion(mut self, pool: &Arc<WorkerPool>) -> Result<(), GraphError> {
        if self.nodes.is_empty() {
            return Ok(());
        }
        if self.has_cycle() {
            return Err(GraphError::Cycle);
        }

        struct GraphState {
            jobs: Vec<Mutex<Option<Job>>>,
            dependents: Vec<Vec<usize>>,
            deps: Vec<AtomicUsize>,
            remaining: Mutex<usize>,
            done: Condvar,
            panic: Mutex<Option<Box<dyn Any + Send>>>,
        }

        fn schedule(state: Arc<GraphState>, pool: Arc<WorkerPool>, idx: usize) {
            let job = state.jobs[idx]
                .lock()
                .unwrap()
                .take()
                .expect("graph task scheduled twice");
            let st = Arc::clone(&state);
            let p = Arc::clone(&pool);
            pool.spawn(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                    let mut slot = st.panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
                for &dep in &st.dependents[idx] {
                    if st.deps[dep].fetch_sub(1, Ordering::AcqRel) == 1 {
                        schedule(Arc::clone(&st), Arc::clone(&p), dep);
                    }
                }
                let mut remaining = st.remaining.lock().unwrap();
                *remaining -= 1;
                if *remaining == 0 {
                    st.done.notify_all();
                }
            });
        }

        let n = self.nodes.len();
        let mut jobs = Vec::with_capacity(n);
        let mut dependents = Vec::with_capacity(n);
        let mut deps = Vec::with_capacity(n);
        for node in &mut self.nodes {
            jobs.push(Mutex::new(node.job.take()));
            dependents.push(std::mem::take(&mut node.dependents));
            deps.push(AtomicUsize::new(node.deps));
        }
        let state = Arc::new(GraphState {
            jobs,
            dependents,
            deps,
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });

        for idx in 0..n {
            if state.deps[idx].load(Ordering::Acquire) == 0 {
                schedule(Arc::clone(&state), Arc::clone(pool), idx);
            }
        }

        let mut remaining = state.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = state.done.wait(remaining).unwrap();
        }
        drop(remaining);

        if let Some(payload) = state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_dependency_order() {
        let pool = WorkerPool::new(4);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        let push = |tag: &'static str, order: &Arc<Mutex<Vec<&'static str>>>| {
            let order = Arc::clone(order);
            move || order.lock().unwrap().push(tag)
        };
        let scan = g.add_task("scan", push("scan", &order));
        let filter = g.add_task_after("filter", &[scan], push("filter", &order));
        let agg = g.add_task_after("agg", &[filter], push("agg", &order));
        let emit = g.add_task_after("emit", &[agg], push("emit", &order));
        assert_eq!(g.label(emit), "emit");
        g.run_to_completion(&pool).unwrap();
        assert_eq!(
            *order.lock().unwrap(),
            vec!["scan", "filter", "agg", "emit"]
        );
    }

    #[test]
    fn diamond_joins_before_sink() {
        let pool = WorkerPool::new(4);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut g = TaskGraph::new();
        let tag = |t: &'static str| {
            let order = Arc::clone(&order);
            move || order.lock().unwrap().push(t)
        };
        let src = g.add_task("src", tag("src"));
        let left = g.add_task_after("left", &[src], tag("left"));
        let right = g.add_task_after("right", &[src], tag("right"));
        g.add_task_after("sink", &[left, right], tag("sink"));
        g.run_to_completion(&pool).unwrap();
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], "src");
        assert_eq!(order[3], "sink");
    }

    #[test]
    fn cycle_is_rejected() {
        let pool = WorkerPool::new(1);
        let mut g = TaskGraph::new();
        let a = g.add_task("a", || ());
        let b = g.add_task("b", || ());
        g.add_dependency(a, b);
        g.add_dependency(b, a);
        assert_eq!(g.run_to_completion(&pool), Err(GraphError::Cycle));
    }

    #[test]
    fn panic_in_task_is_reraised() {
        let pool = WorkerPool::new(2);
        let mut g = TaskGraph::new();
        g.add_task("bad", || panic!("task failed"));
        let result = catch_unwind(AssertUnwindSafe(|| g.run_to_completion(&pool)));
        assert!(result.is_err());
    }

    #[test]
    fn empty_graph_is_ok() {
        let pool = WorkerPool::new(1);
        assert!(TaskGraph::new().run_to_completion(&pool).is_ok());
    }
}
