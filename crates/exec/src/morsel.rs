//! Morsels: cache-friendly row-id ranges over a column partition.
//!
//! Morsel-driven parallelism (HyPer-style, as adopted by the HANA job
//! executor) slices a scan's row domain into fixed-size ranges that are
//! scheduled independently on the worker pool. Boundaries are aligned
//! to 64 rows so each morsel covers whole `RowIdBitmap` words and
//! parallel writers never touch the same word.

/// A half-open row-id range `[start, end)` assigned to one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First row id covered (inclusive).
    pub start: usize,
    /// One past the last row id covered.
    pub end: usize,
}

impl Morsel {
    /// Number of rows in the morsel.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the morsel covers no rows.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Round a morsel size up to a multiple of 64 (minimum 64).
pub fn align_morsel_rows(rows: usize) -> usize {
    rows.max(1).div_ceil(64) * 64
}

/// Slice `[0, total_rows)` into morsels of `morsel_rows` rows (aligned
/// up to a multiple of 64); the final morsel takes the remainder.
pub fn morsels(total_rows: usize, morsel_rows: usize) -> Vec<Morsel> {
    let step = align_morsel_rows(morsel_rows);
    let mut out = Vec::with_capacity(total_rows.div_ceil(step.max(1)));
    let mut start = 0;
    while start < total_rows {
        let end = (start + step).min(total_rows);
        out.push(Morsel { start, end });
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_domain_without_overlap() {
        for total in [0, 1, 63, 64, 65, 1000, 65_536, 100_000] {
            let ms = morsels(total, 1024);
            let covered: usize = ms.iter().map(Morsel::len).sum();
            assert_eq!(covered, total);
            for w in ms.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            if let Some(first) = ms.first() {
                assert_eq!(first.start, 0);
                assert_eq!(ms.last().unwrap().end, total);
            }
        }
    }

    #[test]
    fn boundaries_are_word_aligned() {
        let ms = morsels(10_000, 100); // 100 rounds up to 128
        for m in &ms[..ms.len() - 1] {
            assert_eq!(m.start % 64, 0);
            assert_eq!(m.end % 64, 0);
            assert_eq!(m.len(), 128);
        }
    }

    #[test]
    fn alignment_rounds_up() {
        assert_eq!(align_morsel_rows(0), 64);
        assert_eq!(align_morsel_rows(1), 64);
        assert_eq!(align_morsel_rows(64), 64);
        assert_eq!(align_morsel_rows(65), 128);
        assert_eq!(align_morsel_rows(65_536), 65_536);
    }
}
