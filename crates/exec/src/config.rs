//! Execution engine configuration.

use std::num::NonZeroUsize;

/// Default rows per morsel — sized so a morsel of 8-byte values fits in
/// L2 cache with room to spare, and a multiple of 64 so morsel
/// boundaries align with `RowIdBitmap` words.
pub const DEFAULT_MORSEL_ROWS: usize = 65_536;

/// Environment variable overriding the worker count.
pub const ENV_WORKERS: &str = "HANA_EXEC_WORKERS";

/// Environment variable overriding the morsel size (rows).
pub const ENV_MORSEL_ROWS: &str = "HANA_EXEC_MORSEL_ROWS";

/// Tuning knobs for the execution engine.
///
/// Defaults: `workers` = available hardware parallelism,
/// `morsel_rows` = [`DEFAULT_MORSEL_ROWS`]. Both can be overridden via
/// the `HANA_EXEC_WORKERS` / `HANA_EXEC_MORSEL_ROWS` environment
/// variables (invalid or zero values fall back to the defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Number of pool worker threads.
    pub workers: usize,
    /// Rows per morsel; rounded up to a multiple of 64 on use so that
    /// parallel scans write disjoint bitmap words.
    pub morsel_rows: usize,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            workers: std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(4),
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }
}

impl ExecConfig {
    /// Configuration from the environment, falling back to defaults.
    pub fn from_env() -> ExecConfig {
        let mut cfg = ExecConfig::default();
        if let Some(n) = read_env_usize(ENV_WORKERS) {
            cfg.workers = n;
        }
        if let Some(n) = read_env_usize(ENV_MORSEL_ROWS) {
            cfg.morsel_rows = n;
        }
        cfg
    }

    /// Copy of this config with a specific worker count.
    pub fn with_workers(mut self, workers: usize) -> ExecConfig {
        self.workers = workers.max(1);
        self
    }

    /// Copy of this config with a specific morsel size.
    pub fn with_morsel_rows(mut self, rows: usize) -> ExecConfig {
        self.morsel_rows = rows.max(1);
        self
    }

    /// Morsel size rounded up to a multiple of 64 (bitmap word rows).
    pub fn aligned_morsel_rows(&self) -> usize {
        crate::morsel::align_morsel_rows(self.morsel_rows)
    }
}

fn read_env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let cfg = ExecConfig::default();
        assert!(cfg.workers >= 1);
        assert_eq!(cfg.morsel_rows, DEFAULT_MORSEL_ROWS);
    }

    #[test]
    fn builders_clamp_to_one() {
        let cfg = ExecConfig::default().with_workers(0).with_morsel_rows(0);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.morsel_rows, 1);
        assert_eq!(cfg.aligned_morsel_rows(), 64);
    }
}
