//! Execution engine configuration.

use std::num::NonZeroUsize;

/// Default rows per morsel — sized so a morsel of 8-byte values fits in
/// L2 cache with room to spare, and a multiple of 64 so morsel
/// boundaries align with `RowIdBitmap` words.
pub const DEFAULT_MORSEL_ROWS: usize = 65_536;

/// Environment variable overriding the worker count.
pub const ENV_WORKERS: &str = "HANA_EXEC_WORKERS";

/// Environment variable overriding the morsel size (rows).
pub const ENV_MORSEL_ROWS: &str = "HANA_EXEC_MORSEL_ROWS";

/// Tuning knobs for the execution engine.
///
/// Defaults: `workers` = available hardware parallelism,
/// `morsel_rows` = [`DEFAULT_MORSEL_ROWS`]. Both can be overridden via
/// the `HANA_EXEC_WORKERS` / `HANA_EXEC_MORSEL_ROWS` environment
/// variables (invalid or zero values fall back to the defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Number of pool worker threads.
    pub workers: usize,
    /// Rows per morsel; rounded up to a multiple of 64 on use so that
    /// parallel scans write disjoint bitmap words.
    pub morsel_rows: usize,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            workers: std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(4),
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }
}

impl ExecConfig {
    /// Configuration from the environment, falling back to defaults.
    pub fn from_env() -> ExecConfig {
        let mut cfg = ExecConfig::default();
        if let Some(n) = read_env_usize(ENV_WORKERS) {
            cfg.workers = n;
        }
        if let Some(n) = read_env_usize(ENV_MORSEL_ROWS) {
            cfg.morsel_rows = n;
        }
        cfg
    }

    /// Copy of this config with a specific worker count.
    pub fn with_workers(mut self, workers: usize) -> ExecConfig {
        self.workers = workers.max(1);
        self
    }

    /// Copy of this config with a specific morsel size.
    pub fn with_morsel_rows(mut self, rows: usize) -> ExecConfig {
        self.morsel_rows = rows.max(1);
        self
    }

    /// Morsel size rounded up to a multiple of 64 (bitmap word rows).
    pub fn aligned_morsel_rows(&self) -> usize {
        crate::morsel::align_morsel_rows(self.morsel_rows)
    }
}

fn read_env_usize(name: &str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    parse_env_usize(name, &raw)
}

/// Parse one environment override. Invalid values no longer fall back
/// *silently*: a warning is recorded through `hana-obs` (counted under
/// `hana_obs_warnings_total` and kept in the snapshot's recent-warnings
/// list) before the default is used.
fn parse_env_usize(name: &str, raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        Ok(_) => {
            hana_obs::warn(format!(
                "{name}={raw:?} must be a positive integer; falling back to the default"
            ));
            None
        }
        Err(e) => {
            hana_obs::warn(format!(
                "{name}={raw:?} is not a valid positive integer ({e}); \
                 falling back to the default"
            ));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let cfg = ExecConfig::default();
        assert!(cfg.workers >= 1);
        assert_eq!(cfg.morsel_rows, DEFAULT_MORSEL_ROWS);
    }

    #[test]
    fn builders_clamp_to_one() {
        let cfg = ExecConfig::default().with_workers(0).with_morsel_rows(0);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.morsel_rows, 1);
        assert_eq!(cfg.aligned_morsel_rows(), 64);
    }

    /// Count of recorded obs warnings (global, monotone).
    fn warnings() -> u64 {
        hana_obs::registry()
            .counter("hana_obs_warnings_total")
            .get()
    }

    #[test]
    fn malformed_env_values_warn_and_fall_back() {
        for raw in [
            "abc",
            "-3",
            "0",
            "1.5",
            "",
            "  ",
            "4x",
            "99999999999999999999999",
        ] {
            let before = warnings();
            assert_eq!(
                parse_env_usize(ENV_WORKERS, raw),
                None,
                "{raw:?} must fall back"
            );
            assert_eq!(warnings(), before + 1, "{raw:?} must warn");
        }
        let snap = hana_obs::registry().snapshot();
        assert!(
            snap.warnings.iter().any(|w| w.contains(ENV_WORKERS)),
            "warning names the variable: {:?}",
            snap.warnings
        );
    }

    #[test]
    fn valid_env_values_parse_without_warning() {
        for (raw, expect) in [("1", 1usize), (" 8 ", 8), ("65536", 65_536)] {
            let before = warnings();
            assert_eq!(parse_env_usize(ENV_MORSEL_ROWS, raw), Some(expect));
            assert_eq!(warnings(), before, "{raw:?} must not warn");
        }
    }

    #[test]
    fn from_env_applies_and_rejects_overrides() {
        // Env vars are process-global: this is the only test that sets
        // them, and it restores the previous state before returning.
        let saved: Vec<Option<String>> = [ENV_WORKERS, ENV_MORSEL_ROWS]
            .iter()
            .map(|v| std::env::var(v).ok())
            .collect();
        std::env::set_var(ENV_WORKERS, "3");
        std::env::set_var(ENV_MORSEL_ROWS, "not-a-number");
        let before = warnings();
        let cfg = ExecConfig::from_env();
        assert_eq!(cfg.workers, 3);
        assert_eq!(
            cfg.morsel_rows, DEFAULT_MORSEL_ROWS,
            "invalid value falls back"
        );
        assert_eq!(warnings(), before + 1);
        for (var, old) in [ENV_WORKERS, ENV_MORSEL_ROWS].iter().zip(saved) {
            match old {
                Some(v) => std::env::set_var(var, v),
                None => std::env::remove_var(var),
            }
        }
    }
}
