//! The execution context: configuration + worker pool + metrics.

use std::sync::{Arc, OnceLock};

use crate::config::ExecConfig;
use crate::metrics::{MetricsRegistry, QueryGuard};
use crate::morsel::{morsels, Morsel};
use crate::pool::{PoolMetricsSnapshot, WorkerPool};

static GLOBAL: OnceLock<Arc<ExecContext>> = OnceLock::new();

/// One execution engine instance: a [`WorkerPool`], the [`ExecConfig`]
/// it was built from, and a [`MetricsRegistry`] for per-query counters.
///
/// Components normally share the process-wide [`ExecContext::global`]
/// (configured from the environment); tests build private contexts with
/// [`ExecContext::new`] to pin worker counts.
pub struct ExecContext {
    config: ExecConfig,
    pool: Arc<WorkerPool>,
    registry: MetricsRegistry,
}

impl ExecContext {
    /// Build a context (and start its worker pool) from a config.
    pub fn new(config: ExecConfig) -> Arc<ExecContext> {
        Arc::new(ExecContext {
            pool: WorkerPool::new(config.workers),
            registry: MetricsRegistry::new(),
            config,
        })
    }

    /// The process-wide context, created on first use from
    /// [`ExecConfig::from_env`].
    pub fn global() -> &'static Arc<ExecContext> {
        GLOBAL.get_or_init(|| ExecContext::new(ExecConfig::from_env()))
    }

    /// The configuration this context was built with.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// The worker pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The per-query metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Begin tracking a named query (see [`MetricsRegistry::begin_query`]).
    pub fn begin_query(&self, name: &str) -> QueryGuard {
        self.registry.begin_query(name)
    }

    /// Slice `[0, total_rows)` into morsels of the configured size.
    pub fn morsels(&self, total_rows: usize) -> Vec<Morsel> {
        morsels(total_rows, self.config.morsel_rows)
    }

    /// Fork-join over items on the pool (see [`WorkerPool::scatter`]).
    pub fn scatter<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        self.pool.scatter(items, f)
    }

    /// Pool utilization/load counters.
    pub fn pool_metrics(&self) -> PoolMetricsSnapshot {
        self.pool.metrics_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_runs_scatter_with_metrics() {
        let ctx = ExecContext::new(ExecConfig::default().with_workers(2).with_morsel_rows(64));
        let guard = ctx.begin_query("sum");
        let ms = ctx.morsels(1000);
        guard.metrics().add_morsels(ms.len() as u64);
        let parts = ctx.scatter(ms, |m| (m.start..m.end).sum::<usize>());
        drop(guard);
        assert_eq!(parts.iter().sum::<usize>(), (0..1000).sum::<usize>());
        let snap = ctx.metrics().snapshot("sum").unwrap();
        assert_eq!(snap.morsels, 16);
        assert!(snap.wall_nanos > 0);
    }

    #[test]
    fn global_context_is_singleton() {
        let a = Arc::as_ptr(ExecContext::global());
        let b = Arc::as_ptr(ExecContext::global());
        assert_eq!(a, b);
        assert!(ExecContext::global().config().workers >= 1);
    }
}
