//! The execution context: configuration + worker pool + metrics.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use hana_obs::{Counter, Histogram};

use crate::config::ExecConfig;
use crate::metrics::{MetricsRegistry, QueryGuard};
use crate::morsel::{morsels, Morsel};
use crate::pool::{PoolMetricsSnapshot, WorkerPool};

static GLOBAL: OnceLock<Arc<ExecContext>> = OnceLock::new();

/// One execution engine instance: a [`WorkerPool`], the [`ExecConfig`]
/// it was built from, and a [`MetricsRegistry`] for per-query counters.
///
/// Components normally share the process-wide [`ExecContext::global`]
/// (configured from the environment); tests build private contexts with
/// [`ExecContext::new`] to pin worker counts.
///
/// Besides the per-query [`MetricsRegistry`], every context reports
/// pool-level throughput into the global `hana-obs` registry:
/// `hana_exec_morsels_total`, `hana_exec_tasks_total`,
/// `hana_exec_scatters_total`, the `hana_exec_scatter_ns` latency
/// histogram, and the `hana_exec_pool_utilization_permille` /
/// `hana_exec_pool_queue_depth` gauges (refreshed on every scatter and
/// by [`ExecContext::pool_metrics`]).
pub struct ExecContext {
    config: ExecConfig,
    pool: Arc<WorkerPool>,
    registry: MetricsRegistry,
    obs_morsels: Arc<Counter>,
    obs_tasks: Arc<Counter>,
    obs_scatters: Arc<Counter>,
    obs_scatter_ns: Arc<Histogram>,
}

impl ExecContext {
    /// Build a context (and start its worker pool) from a config.
    pub fn new(config: ExecConfig) -> Arc<ExecContext> {
        let obs = hana_obs::registry();
        obs.gauge("hana_exec_workers").set(config.workers as i64);
        Arc::new(ExecContext {
            pool: WorkerPool::new(config.workers),
            registry: MetricsRegistry::new(),
            config,
            obs_morsels: obs.counter("hana_exec_morsels_total"),
            obs_tasks: obs.counter("hana_exec_tasks_total"),
            obs_scatters: obs.counter("hana_exec_scatters_total"),
            obs_scatter_ns: obs.histogram("hana_exec_scatter_ns"),
        })
    }

    /// The process-wide context, created on first use from
    /// [`ExecConfig::from_env`].
    pub fn global() -> &'static Arc<ExecContext> {
        GLOBAL.get_or_init(|| ExecContext::new(ExecConfig::from_env()))
    }

    /// The configuration this context was built with.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// The worker pool.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The per-query metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Begin tracking a named query (see [`MetricsRegistry::begin_query`]).
    pub fn begin_query(&self, name: &str) -> QueryGuard {
        self.registry.begin_query(name)
    }

    /// Slice `[0, total_rows)` into morsels of the configured size.
    pub fn morsels(&self, total_rows: usize) -> Vec<Morsel> {
        let ms = morsels(total_rows, self.config.morsel_rows);
        self.obs_morsels.add(ms.len() as u64);
        ms
    }

    /// Fork-join over items on the pool (see [`WorkerPool::scatter`]).
    ///
    /// With a single worker (or a single item) there is nothing to
    /// overlap, so the items run inline on the calling thread — same
    /// results, same counters, none of the queue/wake overhead that
    /// made 1-worker "parallel" scans slower than serial ones.
    pub fn scatter<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        self.obs_tasks.add(items.len() as u64);
        self.obs_scatters.inc();
        let started = Instant::now();
        let out = if self.config.workers <= 1 || items.len() <= 1 {
            items.into_iter().map(f).collect()
        } else {
            self.pool.scatter(items, f)
        };
        self.obs_scatter_ns
            .record(started.elapsed().as_nanos() as u64);
        self.publish_pool_gauges();
        out
    }

    /// Pool utilization/load counters (also refreshes the pool gauges
    /// in the global `hana-obs` registry).
    pub fn pool_metrics(&self) -> PoolMetricsSnapshot {
        self.publish_pool_gauges()
    }

    fn publish_pool_gauges(&self) -> PoolMetricsSnapshot {
        let m = self.pool.metrics_snapshot();
        let obs = hana_obs::registry();
        obs.gauge("hana_exec_pool_utilization_permille")
            .set((m.utilization * 1000.0) as i64);
        obs.gauge("hana_exec_pool_queue_depth")
            .set(m.queue_depth as i64);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_runs_scatter_with_metrics() {
        let ctx = ExecContext::new(ExecConfig::default().with_workers(2).with_morsel_rows(64));
        let guard = ctx.begin_query("sum");
        let ms = ctx.morsels(1000);
        guard.metrics().add_morsels(ms.len() as u64);
        let parts = ctx.scatter(ms, |m| (m.start..m.end).sum::<usize>());
        drop(guard);
        assert_eq!(parts.iter().sum::<usize>(), (0..1000).sum::<usize>());
        let snap = ctx.metrics().snapshot("sum").unwrap();
        assert_eq!(snap.morsels, 16);
        assert!(snap.wall_nanos > 0);
    }

    #[test]
    fn global_context_is_singleton() {
        let a = Arc::as_ptr(ExecContext::global());
        let b = Arc::as_ptr(ExecContext::global());
        assert_eq!(a, b);
        assert!(ExecContext::global().config().workers >= 1);
    }
}
