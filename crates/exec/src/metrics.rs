//! Per-query execution metrics.
//!
//! The [`MetricsRegistry`] tracks one [`QueryMetrics`] record per named
//! query. A query is bracketed with [`MetricsRegistry::begin_query`],
//! which installs the record as the calling thread's *current* query;
//! parallel scans launched from that thread attribute their morsel and
//! task counts to it. Everything is exposed as plain snapshot structs —
//! no sampling threads, no global sinks.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

thread_local! {
    static CURRENT_QUERY: RefCell<Vec<Arc<QueryMetrics>>> = const { RefCell::new(Vec::new()) };
}

/// The query record the calling thread is currently executing under,
/// if any (installed by [`MetricsRegistry::begin_query`]).
pub fn current_query_metrics() -> Option<Arc<QueryMetrics>> {
    CURRENT_QUERY.with(|c| c.borrow().last().cloned())
}

/// Live counters for one query. Updated with relaxed atomics from
/// worker threads; read via [`QueryMetrics::snapshot`].
#[derive(Debug, Default)]
pub struct QueryMetrics {
    morsels: AtomicU64,
    tasks: AtomicU64,
    cpu_nanos: AtomicU64,
    wall_nanos: AtomicU64,
}

impl QueryMetrics {
    /// Count morsels dispatched for this query.
    pub fn add_morsels(&self, n: u64) {
        self.morsels.fetch_add(n, Ordering::Relaxed);
    }

    /// Count pool tasks dispatched for this query.
    pub fn add_tasks(&self, n: u64) {
        self.tasks.fetch_add(n, Ordering::Relaxed);
    }

    /// Accumulate CPU time spent in this query's tasks.
    pub fn add_cpu_nanos(&self, n: u64) {
        self.cpu_nanos.fetch_add(n, Ordering::Relaxed);
    }

    fn set_wall_nanos(&self, n: u64) {
        self.wall_nanos.store(n, Ordering::Relaxed);
    }

    /// Current counter values as a plain struct.
    pub fn snapshot(&self, query: &str) -> QueryMetricsSnapshot {
        QueryMetricsSnapshot {
            query: query.to_string(),
            morsels: self.morsels.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            cpu_nanos: self.cpu_nanos.load(Ordering::Relaxed),
            wall_nanos: self.wall_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of one query's execution counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryMetricsSnapshot {
    /// Query name as registered.
    pub query: String,
    /// Morsels dispatched.
    pub morsels: u64,
    /// Pool tasks dispatched.
    pub tasks: u64,
    /// Summed task CPU time (nanoseconds).
    pub cpu_nanos: u64,
    /// Wall time between `begin_query` and guard drop (nanoseconds);
    /// zero while the query is still running.
    pub wall_nanos: u64,
}

/// RAII guard for a running query: while alive, the calling thread's
/// parallel scans are attributed to this query; on drop the wall time
/// is recorded.
pub struct QueryGuard {
    metrics: Arc<QueryMetrics>,
    started: Instant,
}

impl QueryGuard {
    /// The underlying live counters (e.g. to pass to another thread).
    pub fn metrics(&self) -> Arc<QueryMetrics> {
        Arc::clone(&self.metrics)
    }
}

impl Drop for QueryGuard {
    fn drop(&mut self) {
        self.metrics
            .set_wall_nanos(self.started.elapsed().as_nanos() as u64);
        CURRENT_QUERY.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Registry of per-query metrics, keyed by query name. Re-running a
/// name accumulates into the same record.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    queries: Mutex<HashMap<String, Arc<QueryMetrics>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Start (or resume) tracking the named query and install it as the
    /// calling thread's current query until the guard drops.
    pub fn begin_query(&self, name: &str) -> QueryGuard {
        let metrics = Arc::clone(
            self.queries
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        );
        CURRENT_QUERY.with(|c| c.borrow_mut().push(Arc::clone(&metrics)));
        QueryGuard {
            metrics,
            started: Instant::now(),
        }
    }

    /// Snapshot of one query's counters, if the query is known.
    pub fn snapshot(&self, name: &str) -> Option<QueryMetricsSnapshot> {
        self.queries
            .lock()
            .unwrap()
            .get(name)
            .map(|m| m.snapshot(name))
    }

    /// Snapshots of every known query, sorted by name.
    pub fn snapshot_all(&self) -> Vec<QueryMetricsSnapshot> {
        let mut out: Vec<QueryMetricsSnapshot> = self
            .queries
            .lock()
            .unwrap()
            .iter()
            .map(|(name, m)| m.snapshot(name))
            .collect();
        out.sort_by(|a, b| a.query.cmp(&b.query));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_installs_and_clears_current() {
        let registry = MetricsRegistry::new();
        assert!(current_query_metrics().is_none());
        {
            let guard = registry.begin_query("q1");
            let current = current_query_metrics().expect("current query set");
            current.add_morsels(3);
            current.add_tasks(2);
            current.add_cpu_nanos(100);
            drop(guard);
        }
        assert!(current_query_metrics().is_none());
        let snap = registry.snapshot("q1").unwrap();
        assert_eq!(snap.morsels, 3);
        assert_eq!(snap.tasks, 2);
        assert_eq!(snap.cpu_nanos, 100);
        assert!(snap.wall_nanos > 0);
    }

    #[test]
    fn nested_queries_stack() {
        let registry = MetricsRegistry::new();
        let _outer = registry.begin_query("outer");
        {
            let _inner = registry.begin_query("inner");
            current_query_metrics().unwrap().add_morsels(1);
        }
        current_query_metrics().unwrap().add_morsels(5);
        drop(_outer);
        assert_eq!(registry.snapshot("inner").unwrap().morsels, 1);
        assert_eq!(registry.snapshot("outer").unwrap().morsels, 5);
    }

    #[test]
    fn rerun_accumulates_and_snapshot_all_sorts() {
        let registry = MetricsRegistry::new();
        {
            let g = registry.begin_query("b");
            g.metrics().add_morsels(1);
        }
        {
            let g = registry.begin_query("b");
            g.metrics().add_morsels(2);
        }
        {
            let g = registry.begin_query("a");
            g.metrics().add_morsels(7);
        }
        let all = registry.snapshot_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].query, "a");
        assert_eq!(all[0].morsels, 7);
        assert_eq!(all[1].query, "b");
        assert_eq!(all[1].morsels, 3);
    }

    #[test]
    fn unknown_query_has_no_snapshot() {
        assert!(MetricsRegistry::new().snapshot("nope").is_none());
    }
}
