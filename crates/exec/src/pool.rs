//! Fixed worker pool with per-worker work-stealing deques.
//!
//! Each worker owns a deque: it pushes and pops work at the back (LIFO,
//! for cache locality on nested spawns) while idle workers steal from
//! the front (FIFO, taking the oldest — and for morsel scans the
//! largest-remaining — work). External submissions land in a shared
//! injector queue. Workers look for work in the order own deque →
//! injector → steal, then park briefly.
//!
//! [`WorkerPool::scatter`] is the fork-join primitive used by parallel
//! scans: it fans a `Vec` of items out as one task per item, blocks the
//! calling thread until every task finished, and re-raises the first
//! task panic in the caller. Because the caller provably outlives all
//! tasks, `scatter` accepts borrowing (non-`'static`) items and
//! closures.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// How long an idle worker parks before re-polling the queues.
const PARK_TIMEOUT: Duration = Duration::from_millis(2);

static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(pool id, worker index)` when the current thread is a pool worker.
    static CURRENT_WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

#[derive(Default)]
struct WorkerStats {
    tasks: AtomicU64,
    steals: AtomicU64,
    busy_nanos: AtomicU64,
}

struct Shared {
    pool_id: u64,
    injector: Mutex<VecDeque<Job>>,
    deques: Vec<Mutex<VecDeque<Job>>>,
    stats: Vec<WorkerStats>,
    park: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn find_job(&self, id: usize) -> Option<Job> {
        // 1. Own deque, LIFO end.
        if let Some(job) = self.deques[id].lock().unwrap().pop_back() {
            return Some(job);
        }
        // 2. Shared injector, FIFO.
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        // 3. Steal from a victim's FIFO end, scanning round-robin.
        let n = self.deques.len();
        for off in 1..n {
            let victim = (id + off) % n;
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                self.stats[id].steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    fn queue_depth(&self) -> usize {
        let mut depth = self.injector.lock().unwrap().len();
        for d in &self.deques {
            depth += d.lock().unwrap().len();
        }
        depth
    }
}

fn worker_loop(shared: Arc<Shared>, id: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((shared.pool_id, id))));
    loop {
        if let Some(job) = shared.find_job(id) {
            let started = Instant::now();
            // A panicking job must not kill the worker; fork-join
            // callers wrap jobs in their own catch and re-raise.
            let _ = catch_unwind(AssertUnwindSafe(job));
            let stats = &shared.stats[id];
            stats
                .busy_nanos
                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            stats.tasks.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let guard = shared.park.lock().unwrap();
        // Timed park: bounds the window where a submission's wake-up
        // races with this worker going idle.
        let _ = shared.wake.wait_timeout(guard, PARK_TIMEOUT).unwrap();
    }
}

/// Utilization and load counters of a pool, as a plain snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolMetricsSnapshot {
    /// Number of worker threads.
    pub workers: usize,
    /// Total tasks executed since pool start.
    pub tasks_executed: u64,
    /// Total successful steals from sibling deques.
    pub steals: u64,
    /// Tasks currently queued (injector plus all deques).
    pub queue_depth: usize,
    /// Sum of per-worker time spent running tasks, in nanoseconds.
    pub busy_nanos: u64,
    /// Wall-clock nanoseconds since pool start.
    pub wall_nanos: u64,
    /// `busy / (wall * workers)` — mean fraction of worker time spent
    /// running tasks, in `[0, 1]`.
    pub utilization: f64,
}

/// A fixed set of worker threads executing submitted jobs, with
/// per-worker work-stealing deques and a shared injector.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    started: Instant,
    workers: usize,
}

impl WorkerPool {
    /// Start a pool with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Arc<WorkerPool> {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            pool_id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            stats: (0..workers).map(|_| WorkerStats::default()).collect(),
            park: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hana-exec-{id}"))
                    .spawn(move || worker_loop(shared, id))
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(WorkerPool {
            shared,
            handles: Mutex::new(handles),
            started: Instant::now(),
            workers,
        })
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether the calling thread is one of this pool's workers.
    pub fn on_worker_thread(&self) -> bool {
        CURRENT_WORKER.with(|c| c.get().is_some_and(|(pool, _)| pool == self.shared.pool_id))
    }

    /// Submit a fire-and-forget job. From a worker thread of this pool
    /// the job goes to that worker's own deque (stealable by siblings);
    /// otherwise it goes to the shared injector. A panicking job is
    /// swallowed (use [`WorkerPool::scatter`] for panic propagation).
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.push_job(Box::new(job));
    }

    fn push_job(&self, job: Job) {
        let worker = CURRENT_WORKER.with(|c| {
            c.get()
                .filter(|&(pool, _)| pool == self.shared.pool_id)
                .map(|(_, id)| id)
        });
        match worker {
            Some(id) => self.shared.deques[id].lock().unwrap().push_back(job),
            None => self.shared.injector.lock().unwrap().push_back(job),
        }
        self.shared.wake.notify_one();
    }

    /// Fork-join: run `f` over every item on the pool, blocking until
    /// all tasks complete, and return the results in item order. The
    /// first task panic is re-raised here after all tasks finish.
    ///
    /// Called from one of this pool's own worker threads, the items run
    /// inline on the caller instead (blocking a worker on its own pool
    /// could deadlock a fully busy pool).
    pub fn scatter<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        if self.on_worker_thread() || self.workers == 0 {
            return items.into_iter().map(f).collect();
        }

        struct ScatterState<T> {
            results: Mutex<Vec<Option<T>>>,
            remaining: Mutex<usize>,
            done: Condvar,
            panic: Mutex<Option<Box<dyn Any + Send>>>,
        }

        let n = items.len();
        let state = Arc::new(ScatterState::<T> {
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });

        let f = &f;
        for (idx, item) in items.into_iter().enumerate() {
            let state = Arc::clone(&state);
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(value) => state.results.lock().unwrap()[idx] = Some(value),
                    Err(payload) => {
                        let mut slot = state.panic.lock().unwrap();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                }
                let mut remaining = state.remaining.lock().unwrap();
                *remaining -= 1;
                if *remaining == 0 {
                    state.done.notify_all();
                }
            });
            // SAFETY: this thread blocks below until `remaining` hits
            // zero, i.e. until every job (and its borrows of `f` and
            // the items) has finished — the scoped-thread pattern. The
            // panic path also waits for all jobs before re-raising.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            self.push_job(job);
        }

        let mut remaining = state.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = state.done.wait(remaining).unwrap();
        }
        drop(remaining);

        if let Some(payload) = state.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
        let mut results = state.results.lock().unwrap();
        results
            .iter_mut()
            .map(|slot| slot.take().expect("scatter task completed without result"))
            .collect()
    }

    /// Tasks currently queued across the injector and all deques.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue_depth()
    }

    /// Current utilization/load counters.
    pub fn metrics_snapshot(&self) -> PoolMetricsSnapshot {
        let tasks_executed: u64 = self
            .shared
            .stats
            .iter()
            .map(|s| s.tasks.load(Ordering::Relaxed))
            .sum();
        let steals: u64 = self
            .shared
            .stats
            .iter()
            .map(|s| s.steals.load(Ordering::Relaxed))
            .sum();
        let busy_nanos: u64 = self
            .shared
            .stats
            .iter()
            .map(|s| s.busy_nanos.load(Ordering::Relaxed))
            .sum();
        let wall_nanos = self.started.elapsed().as_nanos() as u64;
        let capacity = (wall_nanos as f64) * (self.workers as f64);
        PoolMetricsSnapshot {
            workers: self.workers,
            tasks_executed,
            steals,
            queue_depth: self.shared.queue_depth(),
            busy_nanos,
            wall_nanos,
            utilization: if capacity > 0.0 {
                (busy_nanos as f64 / capacity).min(1.0)
            } else {
                0.0
            },
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        for handle in self.handles.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scatter_returns_results_in_order() {
        let pool = WorkerPool::new(4);
        let doubled = pool.scatter((0..100).collect(), |i: usize| i * 2);
        assert_eq!(doubled, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_borrows_caller_data() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..1000).collect();
        let chunks: Vec<&[u64]> = data.chunks(64).collect();
        let sums = pool.scatter(chunks, |c| c.iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn scatter_propagates_panic() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scatter(vec![1, 2, 3], |i| {
                if i == 2 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(result.is_err());
        // Pool is still usable after a task panic.
        assert_eq!(pool.scatter(vec![5], |i| i + 1), vec![6]);
    }

    #[test]
    fn spawn_executes_jobs() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while counter.load(Ordering::SeqCst) < 50 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn single_worker_pool_is_deterministic() {
        let pool = WorkerPool::new(1);
        let out = pool.scatter((0..20).collect(), |i: usize| i);
        assert_eq!(out, (0..20).collect::<Vec<_>>());
        // Worker stats are bumped after the job body returns, so give
        // the worker a moment to finish accounting the last task.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.metrics_snapshot().tasks_executed < 20 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        let m = pool.metrics_snapshot();
        assert_eq!(m.workers, 1);
        assert!(m.tasks_executed >= 20);
        assert_eq!(m.steals, 0, "no siblings to steal from");
    }

    #[test]
    fn metrics_count_tasks() {
        let pool = WorkerPool::new(4);
        pool.scatter((0..64).collect(), |i: usize| i);
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.metrics_snapshot().tasks_executed < 64 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        let m = pool.metrics_snapshot();
        assert!(m.tasks_executed >= 64);
        assert_eq!(m.queue_depth, 0);
        assert!(m.utilization >= 0.0 && m.utilization <= 1.0);
    }
}
