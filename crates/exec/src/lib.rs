//! # hana-exec
//!
//! Morsel-driven parallel execution engine — the "job executor" layer
//! of the platform. Scans and aggregations are sliced into cache-sized
//! [`Morsel`]s of row ids and scheduled on a fixed [`WorkerPool`] with
//! per-worker work-stealing deques; multi-stage pipelines run as a
//! dependency-ordered [`TaskGraph`]; per-query and per-pool counters
//! are exposed as plain snapshot structs via [`MetricsRegistry`].
//!
//! ```
//! use hana_exec::{ExecConfig, ExecContext};
//!
//! let ctx = ExecContext::new(ExecConfig::default().with_workers(4));
//! let query = ctx.begin_query("demo");
//! let morsels = ctx.morsels(1_000_000);
//! query.metrics().add_morsels(morsels.len() as u64);
//! let partial_sums = ctx.scatter(morsels, |m| (m.start..m.end).map(|i| i as u64).sum::<u64>());
//! let total: u64 = partial_sums.into_iter().sum();
//! assert_eq!(total, 1_000_000u64 * 999_999 / 2);
//! ```

mod admission;
mod config;
mod context;
mod graph;
mod metrics;
mod morsel;
mod pool;

pub use admission::{controller_of, AdmissionController, AdmissionPermit, ClassConfig, Rejection};
pub use config::{ExecConfig, DEFAULT_MORSEL_ROWS, ENV_MORSEL_ROWS, ENV_WORKERS};
pub use context::ExecContext;
pub use graph::{GraphError, TaskGraph, TaskId};
pub use metrics::{
    current_query_metrics, MetricsRegistry, QueryGuard, QueryMetrics, QueryMetricsSnapshot,
};
pub use morsel::{align_morsel_rows, morsels, Morsel};
pub use pool::{PoolMetricsSnapshot, WorkerPool};
