//! Workload-class admission control for the execution pool.
//!
//! The session layer classifies each statement into a workload class
//! (OLTP point lookups, OLAP scans/aggregates, …) and asks the
//! [`AdmissionController`] for a slot before touching the pool. Each
//! class has a concurrency limit, a bounded FIFO wait queue and a
//! priority; a shared total limit (optional) caps the classes
//! together. Admission is strictly work-conserving: a slot is never
//! left idle while an admissible waiter exists, and among admissible
//! waiters contending for shared headroom, higher-priority classes are
//! served first.
//!
//! Rejections are immediate (`QueueFull`) or timed (`Timeout`); the
//! caller maps them onto its error taxonomy (the platform uses the
//! retryable `overloaded` kind — backing off and resubmitting is the
//! intended client response).

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Configuration of one workload class.
#[derive(Debug, Clone)]
pub struct ClassConfig {
    /// Class name; becomes the `{class}` label on the admission
    /// metrics (`hana_admission_running_{class}`, …).
    pub name: String,
    /// Statements of this class running at once, at most.
    pub max_concurrent: usize,
    /// Statements allowed to wait for a slot; arrivals beyond this are
    /// rejected with [`Rejection::QueueFull`].
    pub max_queue: usize,
    /// How long a statement may wait before [`Rejection::Timeout`].
    pub queue_timeout: Duration,
    /// Larger wins when classes contend for shared headroom.
    pub priority: u8,
}

impl ClassConfig {
    /// A class with the given name and concurrency limit, a queue of
    /// the same size, a one-second timeout and priority 0.
    pub fn new(name: &str, max_concurrent: usize) -> ClassConfig {
        ClassConfig {
            name: name.to_string(),
            max_concurrent: max_concurrent.max(1),
            max_queue: max_concurrent.max(1),
            queue_timeout: Duration::from_secs(1),
            priority: 0,
        }
    }

    /// Set the queue bound.
    pub fn with_queue(mut self, max_queue: usize) -> ClassConfig {
        self.max_queue = max_queue;
        self
    }

    /// Set the queue timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> ClassConfig {
        self.queue_timeout = timeout;
        self
    }

    /// Set the priority (larger wins).
    pub fn with_priority(mut self, priority: u8) -> ClassConfig {
        self.priority = priority;
        self
    }
}

/// Why a statement was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The class is at capacity and its wait queue is full.
    QueueFull {
        /// The class that rejected the statement.
        class: String,
        /// The configured queue bound that was hit.
        max_queue: usize,
    },
    /// The statement waited the full queue timeout without a slot.
    Timeout {
        /// The class that rejected the statement.
        class: String,
        /// How long the statement waited.
        waited: Duration,
    },
    /// The class name is not configured.
    UnknownClass(String),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::QueueFull { class, max_queue } => write!(
                f,
                "workload class '{class}' at capacity and its queue of {max_queue} is full"
            ),
            Rejection::Timeout { class, waited } => write!(
                f,
                "statement waited {waited:?} for a '{class}' slot without being admitted"
            ),
            Rejection::UnknownClass(c) => write!(f, "unknown workload class '{c}'"),
        }
    }
}

struct ClassState {
    cfg: ClassConfig,
    running: usize,
    /// Peak of `running` since construction (proof, in tests and
    /// benches, that the limit actually bound the concurrency).
    peak_running: usize,
    /// Tickets of waiting statements, FIFO. A waiter is admitted only
    /// when its ticket is at the front, so arrival order holds within
    /// a class.
    queue: Vec<u64>,
}

struct ControllerState {
    classes: Vec<ClassState>,
    total_running: usize,
    next_ticket: u64,
}

/// Per-class concurrency limits with bounded, prioritized wait queues.
pub struct AdmissionController {
    state: Mutex<ControllerState>,
    cv: Condvar,
    /// Shared cap across all classes (`None` = per-class limits only).
    total_limit: Option<usize>,
}

impl AdmissionController {
    /// A controller over the given classes. `total_limit`, when set,
    /// caps the sum of running statements across classes.
    pub fn new(classes: Vec<ClassConfig>, total_limit: Option<usize>) -> AdmissionController {
        AdmissionController {
            state: Mutex::new(ControllerState {
                classes: classes
                    .into_iter()
                    .map(|cfg| ClassState {
                        cfg,
                        running: 0,
                        peak_running: 0,
                        queue: Vec::new(),
                    })
                    .collect(),
                total_running: 0,
                next_ticket: 0,
            }),
            cv: Condvar::new(),
            total_limit,
        }
    }

    /// Block until a slot for `class` frees up (or the class's queue
    /// timeout elapses) and return a permit that holds the slot until
    /// dropped.
    pub fn admit(&self, class: &str) -> Result<AdmissionPermit<'_>, Rejection> {
        let obs = hana_obs::registry();
        let start = Instant::now();
        let mut st = self.state.lock().unwrap();
        let idx = st
            .classes
            .iter()
            .position(|c| c.cfg.name == class)
            .ok_or_else(|| Rejection::UnknownClass(class.to_string()))?;

        if self.admissible(&st, idx, None) {
            let stats = self.grant(&mut st, idx);
            drop(st);
            return Ok(self.permit(idx, class, start, stats, obs));
        }

        // Must wait: reject immediately when the queue is full.
        if st.classes[idx].queue.len() >= st.classes[idx].cfg.max_queue {
            obs.counter(&format!("hana_admission_rejected_total_{class}"))
                .inc();
            return Err(Rejection::QueueFull {
                class: class.to_string(),
                max_queue: st.classes[idx].cfg.max_queue,
            });
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.classes[idx].queue.push(ticket);
        obs.gauge(&format!("hana_admission_queued_{class}"))
            .set(st.classes[idx].queue.len() as i64);
        obs.counter(&format!("hana_admission_queued_total_{class}"))
            .inc();

        let timeout = st.classes[idx].cfg.queue_timeout;
        let deadline = start + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                // Give up: withdraw the ticket and wake others (our
                // departure may unblock a lower-priority waiter).
                let pos = st.classes[idx].queue.iter().position(|&t| t == ticket);
                if let Some(pos) = pos {
                    st.classes[idx].queue.remove(pos);
                }
                obs.gauge(&format!("hana_admission_queued_{class}"))
                    .set(st.classes[idx].queue.len() as i64);
                obs.counter(&format!("hana_admission_timeout_total_{class}"))
                    .inc();
                self.cv.notify_all();
                return Err(Rejection::Timeout {
                    class: class.to_string(),
                    waited: start.elapsed(),
                });
            }
            let (guard, _res) = self.cv.wait_timeout(st, deadline - now).unwrap();
            st = guard;
            if st.classes[idx].queue.first() == Some(&ticket)
                && self.admissible(&st, idx, Some(ticket))
            {
                st.classes[idx].queue.remove(0);
                obs.gauge(&format!("hana_admission_queued_{class}"))
                    .set(st.classes[idx].queue.len() as i64);
                let stats = self.grant(&mut st, idx);
                drop(st);
                obs.histogram(&format!("hana_admission_wait_ns_{class}"))
                    .record(start.elapsed().as_nanos() as u64);
                return Ok(self.permit(idx, class, start, stats, obs));
            }
        }
    }

    /// Non-blocking admit: a permit if a slot is free right now, else
    /// the same rejection taxonomy with a zero wait.
    pub fn try_admit(&self, class: &str) -> Result<AdmissionPermit<'_>, Rejection> {
        let obs = hana_obs::registry();
        let start = Instant::now();
        let mut st = self.state.lock().unwrap();
        let idx = st
            .classes
            .iter()
            .position(|c| c.cfg.name == class)
            .ok_or_else(|| Rejection::UnknownClass(class.to_string()))?;
        if self.admissible(&st, idx, None) {
            let stats = self.grant(&mut st, idx);
            drop(st);
            Ok(self.permit(idx, class, start, stats, obs))
        } else {
            obs.counter(&format!("hana_admission_rejected_total_{class}"))
                .inc();
            Err(Rejection::QueueFull {
                class: class.to_string(),
                max_queue: st.classes[idx].cfg.max_queue,
            })
        }
    }

    /// Whether a statement of class `idx` could start right now.
    ///
    /// Three conditions: class headroom; FIFO order (an already-queued
    /// waiter ahead of us wins — `ticket` is our own queue entry, if
    /// any); and, when a shared total limit applies, no higher-priority
    /// class with headroom has waiters that the remaining shared slots
    /// should serve first.
    fn admissible(&self, st: &ControllerState, idx: usize, ticket: Option<u64>) -> bool {
        let class = &st.classes[idx];
        if class.running >= class.cfg.max_concurrent {
            return false;
        }
        match ticket {
            // A new arrival must not overtake queued statements.
            None if !class.queue.is_empty() => return false,
            // A queued statement is only considered at the front.
            Some(t) if class.queue.first() != Some(&t) => return false,
            _ => {}
        }
        if let Some(total) = self.total_limit {
            let available = total.saturating_sub(st.total_running);
            if available == 0 {
                return false;
            }
            // Reserve shared slots for higher-priority waiters that
            // could use them.
            let higher_demand: usize = st
                .classes
                .iter()
                .filter(|c| c.cfg.priority > class.cfg.priority)
                .map(|c| {
                    c.queue
                        .len()
                        .min(c.cfg.max_concurrent.saturating_sub(c.running))
                })
                .sum();
            if available <= higher_demand {
                return false;
            }
        }
        true
    }

    /// Take a slot; returns `(running, peak_running)` after the grant
    /// so callers can publish gauges outside the lock.
    fn grant(&self, st: &mut ControllerState, idx: usize) -> (usize, usize) {
        st.classes[idx].running += 1;
        st.total_running += 1;
        if st.classes[idx].running > st.classes[idx].peak_running {
            st.classes[idx].peak_running = st.classes[idx].running;
        }
        (st.classes[idx].running, st.classes[idx].peak_running)
    }

    /// Build the permit and publish admission metrics. Must be called
    /// WITHOUT the state lock held.
    fn permit<'a>(
        &'a self,
        idx: usize,
        class: &str,
        start: Instant,
        (running, peak): (usize, usize),
        obs: &hana_obs::Registry,
    ) -> AdmissionPermit<'a> {
        obs.gauge(&format!("hana_admission_running_{class}"))
            .set(running as i64);
        obs.gauge(&format!("hana_admission_peak_running_{class}"))
            .set(peak as i64);
        obs.counter(&format!("hana_admission_admitted_total_{class}"))
            .inc();
        AdmissionPermit {
            controller: self,
            idx,
            class: class.to_string(),
            admitted_after: start.elapsed(),
        }
    }

    /// `(running, queued, peak_running)` for a class, for tests and
    /// observability refreshes.
    pub fn class_stats(&self, class: &str) -> Option<(usize, usize, usize)> {
        let st = self.state.lock().unwrap();
        st.classes
            .iter()
            .find(|c| c.cfg.name == class)
            .map(|c| (c.running, c.queue.len(), c.peak_running))
    }

    /// Total statements currently running across all classes.
    pub fn total_running(&self) -> usize {
        self.state.lock().unwrap().total_running
    }
}

/// Holds one admitted slot; dropping releases it and wakes waiters.
pub struct AdmissionPermit<'a> {
    controller: &'a AdmissionController,
    idx: usize,
    class: String,
    admitted_after: Duration,
}

impl AdmissionPermit<'_> {
    /// How long the statement waited before admission.
    pub fn admitted_after(&self) -> Duration {
        self.admitted_after
    }

    /// The class this permit belongs to.
    pub fn class(&self) -> &str {
        &self.class
    }
}

impl std::fmt::Debug for AdmissionPermit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionPermit")
            .field("class", &self.class)
            .field("admitted_after", &self.admitted_after)
            .finish()
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut st = self.controller.state.lock().unwrap();
        st.classes[self.idx].running -= 1;
        st.total_running -= 1;
        hana_obs::registry()
            .gauge(&format!("hana_admission_running_{}", self.class))
            .set(st.classes[self.idx].running as i64);
        drop(st);
        self.controller.cv.notify_all();
    }
}

/// Build a controller from `(name, limit)` pairs with default queues,
/// timeouts and priorities — test/bench convenience.
pub fn controller_of(pairs: &[(&str, usize)]) -> AdmissionController {
    AdmissionController::new(
        pairs.iter().map(|(n, l)| ClassConfig::new(n, *l)).collect(),
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn admits_within_limit_and_rejects_when_queue_full() {
        let ctl = AdmissionController::new(vec![ClassConfig::new("olap", 1).with_queue(0)], None);
        let p = ctl.admit("olap").unwrap();
        assert_eq!(ctl.class_stats("olap"), Some((1, 0, 1)));
        let err = ctl.admit("olap").unwrap_err();
        assert!(matches!(err, Rejection::QueueFull { max_queue: 0, .. }));
        drop(p);
        assert_eq!(ctl.class_stats("olap"), Some((0, 0, 1)));
        let _p2 = ctl.admit("olap").unwrap();
    }

    #[test]
    fn queue_timeout_rejects_after_waiting() {
        let ctl = AdmissionController::new(
            vec![ClassConfig::new("olap", 1)
                .with_queue(4)
                .with_timeout(Duration::from_millis(20))],
            None,
        );
        let _held = ctl.admit("olap").unwrap();
        let start = Instant::now();
        let err = ctl.admit("olap").unwrap_err();
        assert!(matches!(err, Rejection::Timeout { .. }));
        assert!(start.elapsed() >= Duration::from_millis(20));
        // The withdrawn ticket must not strand the queue.
        assert_eq!(ctl.class_stats("olap"), Some((1, 0, 1)));
    }

    #[test]
    fn unknown_class_is_rejected() {
        let ctl = controller_of(&[("oltp", 4)]);
        assert!(matches!(ctl.admit("nope"), Err(Rejection::UnknownClass(_))));
    }

    #[test]
    fn concurrency_is_bounded_under_contention() {
        let ctl = Arc::new(AdmissionController::new(
            vec![ClassConfig::new("olap", 2)
                .with_queue(64)
                .with_timeout(Duration::from_secs(10))],
            None,
        ));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let (ctl, running, peak) =
                    (Arc::clone(&ctl), Arc::clone(&running), Arc::clone(&peak));
                std::thread::spawn(move || {
                    let _p = ctl.admit("olap").unwrap();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_millis(2));
                    running.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "observed {} concurrent, limit is 2",
            peak.load(Ordering::SeqCst)
        );
        assert_eq!(ctl.class_stats("olap").unwrap().2, 2, "peak gauge");
    }

    #[test]
    fn shared_total_limit_prefers_higher_priority() {
        // One shared slot; oltp outranks olap. Hold the slot via olap,
        // queue one waiter of each class, then release: the oltp waiter
        // must win the freed slot.
        let ctl = Arc::new(AdmissionController::new(
            vec![
                ClassConfig::new("oltp", 4)
                    .with_queue(8)
                    .with_timeout(Duration::from_secs(5))
                    .with_priority(10),
                ClassConfig::new("olap", 4)
                    .with_queue(8)
                    .with_timeout(Duration::from_secs(5))
                    .with_priority(1),
            ],
            Some(1),
        ));
        let held = ctl.admit("olap").unwrap();

        let order = Arc::new(Mutex::new(Vec::new()));
        let spawn = |class: &'static str| {
            let (ctl, order) = (Arc::clone(&ctl), Arc::clone(&order));
            std::thread::spawn(move || {
                let _p = ctl.admit(class).unwrap();
                order.lock().unwrap().push(class);
                std::thread::sleep(Duration::from_millis(5));
            })
        };
        let h_olap = spawn("olap");
        // Ensure the olap waiter queues first, then add the oltp waiter.
        while ctl.class_stats("olap").unwrap().1 == 0 {
            std::thread::yield_now();
        }
        let h_oltp = spawn("oltp");
        while ctl.class_stats("oltp").unwrap().1 == 0 {
            std::thread::yield_now();
        }

        drop(held);
        h_oltp.join().unwrap();
        h_olap.join().unwrap();
        assert_eq!(
            *order.lock().unwrap(),
            vec!["oltp", "olap"],
            "higher priority takes the freed shared slot despite queuing later"
        );
    }
}
