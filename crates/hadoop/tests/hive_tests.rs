//! End-to-end tests of the Hive layer: HiveQL over MapReduce.

use std::sync::Arc;
use std::time::Duration;

use hana_hadoop::{Hdfs, Hive, MrCluster, MrConfig, MrFunction, MrFunctionRegistry, KV};
use hana_sql::{parse_statement, Statement};
use hana_types::{DataType, Row, Schema, Value};

fn fast_cluster() -> Arc<MrCluster> {
    let cfg = MrConfig {
        worker_slots: 4,
        job_startup: Duration::from_micros(200),
        task_startup: Duration::from_micros(20),
    };
    Arc::new(MrCluster::new(Arc::new(Hdfs::new(4)), cfg))
}

fn setup_hive() -> Hive {
    let hive = Hive::new(fast_cluster());
    hive.create_table(
        "customer",
        Schema::of(&[
            ("c_custkey", DataType::Int),
            ("c_name", DataType::Varchar),
            ("c_mktsegment", DataType::Varchar),
        ]),
    )
    .unwrap();
    hive.create_table(
        "orders",
        Schema::of(&[
            ("o_orderkey", DataType::Int),
            ("o_custkey", DataType::Int),
            ("o_orderstatus", DataType::Varchar),
            ("o_totalprice", DataType::Double),
        ]),
    )
    .unwrap();
    let customers: Vec<Row> = (0..20)
        .map(|i| {
            Row::from_values([
                Value::Int(i),
                Value::from(format!("Customer#{i}")),
                Value::from(if i % 4 == 0 {
                    "HOUSEHOLD"
                } else {
                    "AUTOMOBILE"
                }),
            ])
        })
        .collect();
    hive.load("customer", &customers).unwrap();
    let orders: Vec<Row> = (0..100)
        .map(|i| {
            Row::from_values([
                Value::Int(1000 + i),
                Value::Int(i % 20),
                Value::from(if i % 2 == 0 { "O" } else { "F" }),
                Value::Double(100.0 + i as f64),
            ])
        })
        .collect();
    hive.load("orders", &orders).unwrap();
    hive
}

#[test]
fn metastore_tracks_stats() {
    let hive = setup_hive();
    let stats = hive.table_stats("orders").unwrap();
    assert_eq!(stats.row_count, 100);
    assert_eq!(stats.file_count, 1);
    assert!(hive.has_table("CUSTOMER"), "case-insensitive");
    assert_eq!(hive.list_tables(), vec!["customer", "orders"]);
    assert!(hive.table_stats("nope").is_err());
}

#[test]
fn fetch_task_runs_no_mr_job() {
    let hive = setup_hive();
    let before = hive.cluster().counters().0;
    let rs = hive.execute("SELECT c_name FROM customer").unwrap();
    assert_eq!(rs.len(), 20);
    assert_eq!(
        hive.cluster().counters().0,
        before,
        "bare projection must use the fetch task, not MR"
    );
}

#[test]
fn filtered_scan_is_one_map_only_job() {
    let hive = setup_hive();
    let before = hive.cluster().counters();
    let rs = hive
        .execute("SELECT c_custkey FROM customer WHERE c_mktsegment = 'HOUSEHOLD'")
        .unwrap();
    assert_eq!(rs.len(), 5);
    let after = hive.cluster().counters();
    assert_eq!(after.0 - before.0, 1, "exactly one MR job");
    assert_eq!(after.2 - before.2, 0, "map-only");
}

#[test]
fn paper_join_query() {
    // The example query of §4.4.
    let hive = setup_hive();
    let rs = hive
        .execute(
            "SELECT c_custkey, c_name, o_orderkey, o_orderstatus \
             FROM customer JOIN orders ON c_custkey = o_custkey \
             WHERE c_mktsegment = 'HOUSEHOLD'",
        )
        .unwrap();
    // 5 HOUSEHOLD customers x 5 orders each.
    assert_eq!(rs.len(), 25);
    let custkeys: std::collections::HashSet<i64> =
        rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(custkeys, [0i64, 4, 8, 12, 16].into_iter().collect());
}

#[test]
fn group_by_aggregation_with_having() {
    let hive = setup_hive();
    let rs = hive
        .execute(
            "SELECT o_orderstatus, COUNT(*) AS cnt, SUM(o_totalprice) AS total \
             FROM orders GROUP BY o_orderstatus HAVING COUNT(*) > 10 \
             ORDER BY o_orderstatus",
        )
        .unwrap();
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.rows[0][0], Value::from("F"));
    assert_eq!(rs.rows[0][1], Value::Int(50));
    // F orders are the odd i: totals 101, 103, ..., 199.
    assert_eq!(
        rs.rows[0][2],
        Value::Double(
            (0..100)
                .filter(|i| i % 2 == 1)
                .map(|i| 100.0 + i as f64)
                .sum()
        )
    );
}

#[test]
fn global_aggregate_without_group_by() {
    let hive = setup_hive();
    let rs = hive
        .execute("SELECT COUNT(*), AVG(o_totalprice) FROM orders WHERE o_totalprice >= 150")
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0][0], Value::Int(50));
    let avg = rs.rows[0][1].as_f64().unwrap();
    assert!((avg - 174.5).abs() < 1e-9, "avg = {avg}");
}

#[test]
fn join_plus_aggregation_dag() {
    let hive = setup_hive();
    let before = hive.cluster().counters().0;
    let rs = hive
        .execute(
            "SELECT c_mktsegment, COUNT(*) AS orders_cnt \
             FROM customer JOIN orders ON c_custkey = o_custkey \
             GROUP BY c_mktsegment ORDER BY c_mktsegment",
        )
        .unwrap();
    let jobs = hive.cluster().counters().0 - before;
    assert!(jobs >= 2, "join + group-by is a multi-job DAG, got {jobs}");
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.rows[0][0], Value::from("AUTOMOBILE"));
    assert_eq!(rs.rows[0][1], Value::Int(75));
    assert_eq!(rs.rows[1][1], Value::Int(25));
}

#[test]
fn distinct_and_limit() {
    let hive = setup_hive();
    let rs = hive
        .execute("SELECT DISTINCT o_orderstatus FROM orders WHERE o_totalprice > 0")
        .unwrap();
    assert_eq!(rs.len(), 2);
    let rs = hive
        .execute("SELECT o_orderkey FROM orders LIMIT 7")
        .unwrap();
    assert_eq!(rs.len(), 7);
}

#[test]
fn ctas_is_two_phase_and_registers_stats() {
    let hive = setup_hive();
    let Statement::Query(q) =
        parse_statement("SELECT c_custkey, c_name FROM customer WHERE c_mktsegment = 'HOUSEHOLD'")
            .unwrap()
    else {
        panic!()
    };
    let stats = hive
        .create_table_as_select("household_customers", &q)
        .unwrap();
    assert_eq!(stats.rows, 5);
    assert!(stats.select_jobs >= 1);
    let ts = hive.table_stats("household_customers").unwrap();
    assert_eq!(ts.row_count, 5);
    // The materialized table reads back via the fetch task.
    let before = hive.cluster().counters().0;
    let rs = hive.execute("SELECT * FROM household_customers").unwrap();
    assert_eq!(rs.len(), 5);
    assert_eq!(hive.cluster().counters().0, before, "fetch task, no MR");
}

#[test]
fn modification_tick_advances_on_load() {
    let hive = setup_hive();
    let t1 = hive.table_stats("orders").unwrap().last_modified;
    hive.load(
        "orders",
        &[Row::from_values([
            Value::Int(9999),
            Value::Int(1),
            Value::from("O"),
            Value::Double(1.0),
        ])],
    )
    .unwrap();
    let t2 = hive.table_stats("orders").unwrap().last_modified;
    assert!(t2 > t1);
}

#[test]
fn virtual_function_registry_runs_custom_jobs() {
    let cluster = fast_cluster();
    let registry = MrFunctionRegistry::new(Arc::clone(&cluster));
    // Raw sensor lines in HDFS, as the ESP adapter would write them.
    cluster
        .hdfs()
        .append_lines(
            "/plant100/sensors/day1",
            &["P-100,95.2", "P-101,88.0", "P-100,97.9", "P-102,91.5"],
        )
        .unwrap();
    // The "custom jar": parse lines, keep max pressure per equipment.
    let mapper = |_k: &str, line: &str, out: &mut Vec<KV>| {
        if let Some((id, p)) = line.split_once(',') {
            out.push((id.to_string(), p.to_string()));
        }
    };
    struct MaxReducer;
    impl hana_hadoop::Reducer for MaxReducer {
        fn reduce(&self, key: &str, values: &[String], out: &mut Vec<String>) {
            let max = values
                .iter()
                .filter_map(|v| v.parse::<f64>().ok())
                .fold(f64::MIN, f64::max);
            out.push(hana_hadoop::output_line(&[
                key.to_string(),
                max.to_string(),
            ]));
        }
    }
    registry.register(
        "com.customer.hadoop.SensorMRDriver",
        MrFunction {
            inputs: vec!["/plant100/sensors".into()],
            mapper: Arc::new(mapper),
            reducer: Some(Arc::new(MaxReducer)),
            num_reducers: 2,
            output_schema: Schema::of(&[
                ("equip_id", DataType::Varchar),
                ("pressure", DataType::Double),
            ]),
        },
    );
    assert!(registry.has("com.customer.hadoop.SensorMRDriver"));
    let rs = registry
        .invoke("com.customer.hadoop.SensorMRDriver")
        .unwrap();
    assert_eq!(rs.len(), 3);
    let sorted = rs.sorted_by(&[0]);
    assert_eq!(sorted.rows[0][0], Value::from("P-100"));
    assert_eq!(sorted.rows[0][1], Value::Double(97.9));
    assert!(registry.invoke("no.such.Driver").is_err());
}
