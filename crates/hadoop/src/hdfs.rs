//! The HDFS simulator.
//!
//! A block-based distributed file system in miniature: files are split
//! into fixed-size blocks, each block is "replicated" onto `replication`
//! simulated datanodes (round-robin with the least-loaded node first),
//! and all reads/writes are metered. The paper's Hadoop-side experiments
//! (Figs 14/15) and the ESP raw-event archive (§3.2) run on top of this.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use hana_types::{HanaError, Result};

/// Default block size (64 KiB — scaled down like everything else).
pub const DEFAULT_BLOCK_SIZE: usize = 64 * 1024;

/// One stored block with its replica placement.
#[derive(Debug, Clone)]
struct Block {
    data: Vec<u8>,
    replicas: Vec<usize>,
}

#[derive(Debug, Default, Clone)]
struct HdfsFile {
    blocks: Vec<Block>,
    len: usize,
}

/// The simulated distributed file system.
pub struct Hdfs {
    block_size: usize,
    replication: usize,
    datanodes: Vec<AtomicU64>, // bytes stored per node
    files: RwLock<BTreeMap<String, HdfsFile>>,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl Hdfs {
    /// A cluster of `datanodes` nodes with the default block size and
    /// 3-way (or fewer, if the cluster is smaller) replication.
    pub fn new(datanodes: usize) -> Hdfs {
        Hdfs::with_config(datanodes, DEFAULT_BLOCK_SIZE, 3.min(datanodes.max(1)))
    }

    /// Fully configured constructor.
    pub fn with_config(datanodes: usize, block_size: usize, replication: usize) -> Hdfs {
        let n = datanodes.max(1);
        Hdfs {
            block_size: block_size.max(1),
            replication: replication.clamp(1, n),
            datanodes: (0..n).map(|_| AtomicU64::new(0)).collect(),
            files: RwLock::new(BTreeMap::new()),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        }
    }

    fn normalize(path: &str) -> String {
        let p = path.trim();
        let p = match p.strip_prefix("hdfs://") {
            // With a scheme, drop the authority (`namenode:8020`).
            Some(rest) => match rest.find('/') {
                Some(i) => &rest[i..],
                None => "/",
            },
            None => p,
        };
        if p.starts_with('/') {
            p.to_string()
        } else {
            format!("/{p}")
        }
    }

    /// Whether `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(&Self::normalize(path))
    }

    /// Write (create or overwrite) a file.
    pub fn write(&self, path: &str, data: &[u8]) -> Result<()> {
        let path = Self::normalize(path);
        let mut file = HdfsFile::default();
        self.append_blocks(&mut file, data);
        // Replace: un-account the old file's bytes first.
        let mut files = self.files.write();
        if let Some(old) = files.remove(&path) {
            self.unaccount(&old);
        }
        files.insert(path, file);
        Ok(())
    }

    /// Append to a file, creating it if missing.
    pub fn append(&self, path: &str, data: &[u8]) -> Result<()> {
        let path = Self::normalize(path);
        let mut files = self.files.write();
        let file = files.entry(path).or_default();
        // Fill the last partial block first, then add whole blocks.
        let mut data = data;
        if let Some(last) = file.blocks.last_mut() {
            if last.data.len() < self.block_size {
                let take = (self.block_size - last.data.len()).min(data.len());
                last.data.extend_from_slice(&data[..take]);
                file.len += take;
                for &n in &last.replicas {
                    self.datanodes[n].fetch_add(take as u64, Ordering::Relaxed);
                }
                self.bytes_written
                    .fetch_add((take * last.replicas.len()) as u64, Ordering::Relaxed);
                data = &data[take..];
            }
        }
        if !data.is_empty() {
            // Work around borrowck: append_blocks only touches counters.
            let mut tail = HdfsFile::default();
            self.append_blocks(&mut tail, data);
            file.len += tail.len;
            file.blocks.append(&mut tail.blocks);
        }
        Ok(())
    }

    fn append_blocks(&self, file: &mut HdfsFile, data: &[u8]) {
        for chunk in data.chunks(self.block_size) {
            let replicas = self.pick_replicas();
            for &n in &replicas {
                self.datanodes[n].fetch_add(chunk.len() as u64, Ordering::Relaxed);
            }
            self.bytes_written
                .fetch_add((chunk.len() * replicas.len()) as u64, Ordering::Relaxed);
            file.len += chunk.len();
            file.blocks.push(Block {
                data: chunk.to_vec(),
                replicas,
            });
        }
    }

    /// Least-loaded-first replica placement.
    fn pick_replicas(&self) -> Vec<usize> {
        let mut loads: Vec<(u64, usize)> = self
            .datanodes
            .iter()
            .enumerate()
            .map(|(i, b)| (b.load(Ordering::Relaxed), i))
            .collect();
        loads.sort_unstable();
        loads
            .into_iter()
            .take(self.replication)
            .map(|(_, i)| i)
            .collect()
    }

    fn unaccount(&self, file: &HdfsFile) {
        for b in &file.blocks {
            for &n in &b.replicas {
                self.datanodes[n].fetch_sub(b.data.len() as u64, Ordering::Relaxed);
            }
        }
    }

    /// Read a whole file.
    pub fn read(&self, path: &str) -> Result<Vec<u8>> {
        let path = Self::normalize(path);
        let files = self.files.read();
        let file = files
            .get(&path)
            .ok_or_else(|| HanaError::Io(format!("HDFS: no such file '{path}'")))?;
        let mut out = Vec::with_capacity(file.len);
        for b in &file.blocks {
            out.extend_from_slice(&b.data);
        }
        self.bytes_read
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        Ok(out)
    }

    /// Delete a file; returns whether it existed.
    pub fn delete(&self, path: &str) -> bool {
        let path = Self::normalize(path);
        match self.files.write().remove(&path) {
            Some(f) => {
                self.unaccount(&f);
                true
            }
            None => false,
        }
    }

    /// Delete every file under `dir` (recursive `rm -r`). Returns count.
    pub fn delete_dir(&self, dir: &str) -> usize {
        let prefix = Self::dir_prefix(dir);
        let mut files = self.files.write();
        let doomed: Vec<String> = files
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        for k in &doomed {
            if let Some(f) = files.remove(k) {
                self.unaccount(&f);
            }
        }
        doomed.len()
    }

    fn dir_prefix(dir: &str) -> String {
        let mut p = Self::normalize(dir);
        if !p.ends_with('/') {
            p.push('/');
        }
        p
    }

    /// List the files under `dir` (recursive), sorted.
    pub fn list(&self, dir: &str) -> Vec<String> {
        let prefix = Self::dir_prefix(dir);
        self.files
            .read()
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect()
    }

    /// File length in bytes.
    pub fn len(&self, path: &str) -> Result<usize> {
        let path = Self::normalize(path);
        self.files
            .read()
            .get(&path)
            .map(|f| f.len)
            .ok_or_else(|| HanaError::Io(format!("HDFS: no such file '{path}'")))
    }

    /// Number of blocks of a file (drives the MR split count).
    pub fn block_count(&self, path: &str) -> Result<usize> {
        let path = Self::normalize(path);
        self.files
            .read()
            .get(&path)
            .map(|f| f.blocks.len())
            .ok_or_else(|| HanaError::Io(format!("HDFS: no such file '{path}'")))
    }

    // ---- text-file helpers (the Hive storage format) ----

    /// Append text lines to a file.
    pub fn append_lines<S: AsRef<str>>(&self, path: &str, lines: &[S]) -> Result<()> {
        let mut buf = String::new();
        for l in lines {
            buf.push_str(l.as_ref());
            buf.push('\n');
        }
        self.append(path, buf.as_bytes())
    }

    /// Read a file as text lines.
    pub fn read_lines(&self, path: &str) -> Result<Vec<String>> {
        let data = self.read(path)?;
        let text = String::from_utf8(data)
            .map_err(|_| HanaError::Io(format!("HDFS: '{path}' is not valid UTF-8")))?;
        Ok(text.lines().map(|l| l.to_string()).collect())
    }

    // ---- cluster accounting ----

    /// Bytes stored per datanode.
    pub fn datanode_usage(&self) -> Vec<u64> {
        self.datanodes
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// `(bytes_read, bytes_written_incl_replication)`.
    pub fn io_stats(&self) -> (u64, u64) {
        (
            self.bytes_read.load(Ordering::Relaxed),
            self.bytes_written.load(Ordering::Relaxed),
        )
    }

    /// Total logical bytes stored.
    pub fn used_bytes(&self) -> usize {
        self.files.read().values().map(|f| f.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip_and_normalization() {
        let fs = Hdfs::new(4);
        fs.write("hdfs://nn:8020/data/x.txt", b"hello world")
            .unwrap();
        assert!(fs.exists("/data/x.txt"));
        assert_eq!(fs.read("data/x.txt").unwrap(), b"hello world");
        assert_eq!(fs.len("/data/x.txt").unwrap(), 11);
    }

    #[test]
    fn blocks_and_replication() {
        let fs = Hdfs::with_config(5, 10, 3);
        fs.write("/big", &[1u8; 35]).unwrap();
        assert_eq!(fs.block_count("/big").unwrap(), 4);
        // 35 bytes * 3 replicas spread over 5 nodes.
        let usage = fs.datanode_usage();
        assert_eq!(usage.iter().sum::<u64>(), 35 * 3);
        assert!(
            usage.iter().all(|&u| u > 0),
            "placement is balanced: {usage:?}"
        );
    }

    #[test]
    fn append_fills_partial_blocks() {
        let fs = Hdfs::with_config(2, 10, 1);
        fs.append("/log", b"12345").unwrap();
        fs.append("/log", b"67890AB").unwrap();
        assert_eq!(fs.read("/log").unwrap(), b"1234567890AB");
        assert_eq!(fs.block_count("/log").unwrap(), 2);
    }

    #[test]
    fn delete_and_list() {
        let fs = Hdfs::new(2);
        fs.write("/warehouse/t1/part-0", b"a").unwrap();
        fs.write("/warehouse/t1/part-1", b"b").unwrap();
        fs.write("/warehouse/t2/part-0", b"c").unwrap();
        assert_eq!(fs.list("/warehouse/t1").len(), 2);
        assert_eq!(fs.delete_dir("/warehouse/t1"), 2);
        assert!(!fs.exists("/warehouse/t1/part-0"));
        assert!(fs.exists("/warehouse/t2/part-0"));
        assert!(fs.delete("/warehouse/t2/part-0"));
        assert!(!fs.delete("/warehouse/t2/part-0"));
        assert_eq!(fs.used_bytes(), 0);
    }

    #[test]
    fn text_helpers() {
        let fs = Hdfs::new(1);
        fs.append_lines("/t.csv", &["a|1", "b|2"]).unwrap();
        fs.append_lines("/t.csv", &["c|3"]).unwrap();
        assert_eq!(fs.read_lines("/t.csv").unwrap(), vec!["a|1", "b|2", "c|3"]);
        assert!(fs.read_lines("/missing").is_err());
    }

    #[test]
    fn overwrite_reclaims_space() {
        let fs = Hdfs::with_config(2, 10, 2);
        fs.write("/f", &[0u8; 100]).unwrap();
        let before: u64 = fs.datanode_usage().iter().sum();
        fs.write("/f", &[0u8; 10]).unwrap();
        let after: u64 = fs.datanode_usage().iter().sum();
        assert_eq!(before, 200);
        assert_eq!(after, 20);
    }
}
