//! The MapReduce engine.
//!
//! A faithful miniature of Hadoop 1.x execution: jobs are split into map
//! tasks (one per input block), map output is hash-partitioned into
//! `num_reducers` buckets, optionally combined, sorted by key and reduced;
//! reducers write `part-r-NNNNN` files into the job's output directory.
//! Tasks run on a bounded worker pool (crossbeam scoped threads).
//!
//! **Why overheads are modeled.** The paper's Figure 14/15 experiment
//! measures the benefit of *not re-running* Hive's MR DAGs; that benefit
//! exists because each job pays fixed scheduling/JVM-startup costs.
//! [`MrConfig::job_startup`] and [`MrConfig::task_startup`] make those
//! costs explicit and configurable so the reproduction can sweep them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use hana_types::{HanaError, Result};

use crate::hdfs::Hdfs;

/// A map output / reduce input pair.
pub type KV = (String, String);

/// User map function: one input line -> any number of key/value pairs.
pub trait Mapper: Send + Sync {
    /// Map one record. `key` is the input file path, `value` the line.
    fn map(&self, key: &str, value: &str, out: &mut Vec<KV>);
}

/// User reduce function: one key + all its values -> output lines.
pub trait Reducer: Send + Sync {
    /// Reduce one key group.
    fn reduce(&self, key: &str, values: &[String], out: &mut Vec<String>);
}

impl<F> Mapper for F
where
    F: Fn(&str, &str, &mut Vec<KV>) + Send + Sync,
{
    fn map(&self, key: &str, value: &str, out: &mut Vec<KV>) {
        self(key, value, out)
    }
}

/// Local pre-aggregation run over each map task's output. Unlike a
/// [`Reducer`], a combiner's output must stay in value format (it is fed
/// back into the shuffle, not written to files).
pub trait Combiner: Send + Sync {
    /// Combine the local values of one key into fewer values.
    fn combine(&self, key: &str, values: &[String]) -> Vec<String>;
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct MrConfig {
    /// Concurrent task slots.
    pub worker_slots: usize,
    /// Fixed cost charged per job (scheduling, JVM startup).
    pub job_startup: Duration,
    /// Fixed cost charged per task.
    pub task_startup: Duration,
}

impl Default for MrConfig {
    fn default() -> Self {
        MrConfig {
            worker_slots: 4,
            job_startup: Duration::from_millis(12),
            task_startup: Duration::from_millis(2),
        }
    }
}

/// One job submission.
pub struct JobSpec {
    /// Human-readable job name.
    pub name: String,
    /// HDFS input files.
    pub inputs: Vec<String>,
    /// HDFS output directory (part files are written under it).
    pub output_dir: String,
    /// Number of reduce tasks. `0` makes the job map-only: map output
    /// values are written directly (keys discarded).
    pub num_reducers: usize,
    /// Optional combiner, run over each map task's local output.
    pub combiner: Option<Arc<dyn Combiner>>,
}

/// Outcome of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStats {
    /// Map tasks executed.
    pub map_tasks: usize,
    /// Reduce tasks executed.
    pub reduce_tasks: usize,
    /// Records read by mappers.
    pub input_records: u64,
    /// Records emitted by mappers (before combining).
    pub map_output_records: u64,
    /// Records written by reducers (or mappers when map-only).
    pub output_records: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

/// The cluster: an HDFS plus the job execution engine.
pub struct MrCluster {
    hdfs: Arc<Hdfs>,
    config: MrConfig,
    jobs_run: AtomicU64,
    total_map_tasks: AtomicU64,
    total_reduce_tasks: AtomicU64,
}

impl MrCluster {
    /// A cluster over `hdfs` with the given config.
    pub fn new(hdfs: Arc<Hdfs>, config: MrConfig) -> MrCluster {
        MrCluster {
            hdfs,
            config,
            jobs_run: AtomicU64::new(0),
            total_map_tasks: AtomicU64::new(0),
            total_reduce_tasks: AtomicU64::new(0),
        }
    }

    /// The cluster's file system.
    pub fn hdfs(&self) -> &Arc<Hdfs> {
        &self.hdfs
    }

    /// The engine configuration.
    pub fn config(&self) -> &MrConfig {
        &self.config
    }

    /// `(jobs, map_tasks, reduce_tasks)` run so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.jobs_run.load(Ordering::Relaxed),
            self.total_map_tasks.load(Ordering::Relaxed),
            self.total_reduce_tasks.load(Ordering::Relaxed),
        )
    }

    /// Run a job to completion.
    pub fn run_job(
        &self,
        spec: &JobSpec,
        mapper: Arc<dyn Mapper>,
        reducer: Option<Arc<dyn Reducer>>,
    ) -> Result<JobStats> {
        let start = Instant::now();
        if spec.num_reducers > 0 && reducer.is_none() {
            return Err(HanaError::Config(format!(
                "job '{}' declares {} reducers but no reduce function",
                spec.name, spec.num_reducers
            )));
        }
        std::thread::sleep(self.config.job_startup);
        self.jobs_run.fetch_add(1, Ordering::Relaxed);

        // Clear a stale output dir (Hadoop would refuse; we overwrite to
        // keep the harness ergonomic).
        self.hdfs.delete_dir(&spec.output_dir);

        // ---- map phase: one task per input block ----
        struct MapTask {
            path: String,
            block: usize,
            nblocks: usize,
        }
        let mut tasks = Vec::new();
        for path in &spec.inputs {
            let nblocks = self.hdfs.block_count(path)?.max(1);
            for block in 0..nblocks {
                tasks.push(MapTask {
                    path: path.clone(),
                    block,
                    nblocks,
                });
            }
        }
        let input_records = AtomicU64::new(0);
        let map_output_records = AtomicU64::new(0);
        let nparts = spec.num_reducers.max(1);
        // Partitioned map output: nparts buckets, each a Vec<KV>.
        let partitions: Vec<Mutex<Vec<KV>>> = (0..nparts).map(|_| Mutex::new(Vec::new())).collect();
        let next_task = AtomicU64::new(0);
        let map_err: Mutex<Option<HanaError>> = Mutex::new(None);

        crossbeam::scope(|scope| {
            for _ in 0..self.config.worker_slots.max(1) {
                scope.spawn(|_| loop {
                    let idx = next_task.fetch_add(1, Ordering::Relaxed) as usize;
                    if idx >= tasks.len() || map_err.lock().is_some() {
                        return;
                    }
                    let task = &tasks[idx];
                    std::thread::sleep(self.config.task_startup);
                    // A task owns an equal share of the file's lines (the
                    // simulator reads whole files; the share models block
                    // locality).
                    let lines = match self.hdfs.read_lines(&task.path) {
                        Ok(l) => l,
                        Err(e) => {
                            *map_err.lock() = Some(e);
                            return;
                        }
                    };
                    let share: Vec<&String> = lines
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % task.nblocks == task.block)
                        .map(|(_, l)| l)
                        .collect();
                    input_records.fetch_add(share.len() as u64, Ordering::Relaxed);
                    let mut out = Vec::new();
                    for line in share {
                        mapper.map(&task.path, line, &mut out);
                    }
                    map_output_records.fetch_add(out.len() as u64, Ordering::Relaxed);
                    // Local combine.
                    if let Some(comb) = &spec.combiner {
                        out = combine(comb.as_ref(), out);
                    }
                    // Partition by key hash.
                    let mut buckets: Vec<Vec<KV>> = (0..nparts).map(|_| Vec::new()).collect();
                    for kv in out {
                        let p = partition_of(&kv.0, nparts);
                        buckets[p].push(kv);
                    }
                    for (p, bucket) in buckets.into_iter().enumerate() {
                        if !bucket.is_empty() {
                            partitions[p].lock().extend(bucket);
                        }
                    }
                });
            }
        })
        .map_err(|_| HanaError::Execution("map phase panicked".into()))?;
        if let Some(e) = map_err.lock().take() {
            return Err(e);
        }
        self.total_map_tasks
            .fetch_add(tasks.len() as u64, Ordering::Relaxed);

        // ---- reduce phase (or direct write when map-only) ----
        let output_records = AtomicU64::new(0);
        if spec.num_reducers == 0 {
            let kvs = std::mem::take(&mut *partitions[0].lock());
            let lines: Vec<String> = kvs.into_iter().map(|(_, v)| v).collect();
            output_records.fetch_add(lines.len() as u64, Ordering::Relaxed);
            self.hdfs
                .append_lines(&format!("{}/part-m-00000", spec.output_dir), &lines)?;
        } else {
            let reducer = reducer.expect("checked above");
            let reduce_err: Mutex<Option<HanaError>> = Mutex::new(None);
            let next_part = AtomicU64::new(0);
            crossbeam::scope(|scope| {
                for _ in 0..self.config.worker_slots.max(1) {
                    scope.spawn(|_| loop {
                        let p = next_part.fetch_add(1, Ordering::Relaxed) as usize;
                        if p >= nparts || reduce_err.lock().is_some() {
                            return;
                        }
                        std::thread::sleep(self.config.task_startup);
                        let kvs = std::mem::take(&mut *partitions[p].lock());
                        // Shuffle sort: group values by key.
                        let mut grouped: BTreeMap<String, Vec<String>> = BTreeMap::new();
                        for (k, v) in kvs {
                            grouped.entry(k).or_default().push(v);
                        }
                        let mut lines = Vec::new();
                        for (k, vs) in &grouped {
                            reducer.reduce(k, vs, &mut lines);
                        }
                        output_records.fetch_add(lines.len() as u64, Ordering::Relaxed);
                        if let Err(e) = self
                            .hdfs
                            .append_lines(&format!("{}/part-r-{p:05}", spec.output_dir), &lines)
                        {
                            *reduce_err.lock() = Some(e);
                        }
                    });
                }
            })
            .map_err(|_| HanaError::Execution("reduce phase panicked".into()))?;
            if let Some(e) = reduce_err.lock().take() {
                return Err(e);
            }
            self.total_reduce_tasks
                .fetch_add(nparts as u64, Ordering::Relaxed);
        }

        Ok(JobStats {
            map_tasks: tasks.len(),
            reduce_tasks: spec.num_reducers,
            input_records: input_records.into_inner(),
            map_output_records: map_output_records.into_inner(),
            output_records: output_records.into_inner(),
            elapsed: start.elapsed(),
        })
    }

    /// Read a job's output directory as lines (all part files, in order).
    pub fn read_output(&self, output_dir: &str) -> Result<Vec<String>> {
        let mut lines = Vec::new();
        for part in self.hdfs.list(output_dir) {
            lines.extend(self.hdfs.read_lines(&part)?);
        }
        Ok(lines)
    }
}

/// Stable key partitioner (FNV-1a).
pub fn partition_of(key: &str, nparts: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h % nparts as u64) as usize
}

/// Run a combiner over local map output.
fn combine(comb: &dyn Combiner, kvs: Vec<KV>) -> Vec<KV> {
    let mut grouped: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (k, v) in kvs {
        grouped.entry(k).or_default().push(v);
    }
    let mut out = Vec::new();
    for (k, vs) in &grouped {
        out.extend(comb.combine(k, vs).into_iter().map(|v| (k.clone(), v)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct WordMapper;
    impl Mapper for WordMapper {
        fn map(&self, _k: &str, line: &str, out: &mut Vec<KV>) {
            for w in line.split_whitespace() {
                out.push((w.to_lowercase(), "1".into()));
            }
        }
    }

    struct SumReducer;
    impl Reducer for SumReducer {
        fn reduce(&self, key: &str, values: &[String], out: &mut Vec<String>) {
            let n: i64 = values.iter().map(|v| v.parse::<i64>().unwrap_or(0)).sum();
            out.push(format!("{key}\t{n}"));
        }
    }

    /// Value-preserving partial sum.
    struct SumCombiner;
    impl Combiner for SumCombiner {
        fn combine(&self, _key: &str, values: &[String]) -> Vec<String> {
            let n: i64 = values.iter().map(|v| v.parse::<i64>().unwrap_or(0)).sum();
            vec![n.to_string()]
        }
    }

    fn cluster() -> MrCluster {
        let cfg = MrConfig {
            worker_slots: 4,
            job_startup: Duration::from_micros(100),
            task_startup: Duration::from_micros(10),
        };
        MrCluster::new(Arc::new(Hdfs::with_config(4, 64, 2)), cfg)
    }

    #[test]
    fn word_count_end_to_end() {
        let mr = cluster();
        mr.hdfs()
            .append_lines(
                "/in/a.txt",
                &["the quick brown fox", "jumps over the lazy dog", "the end"],
            )
            .unwrap();
        let spec = JobSpec {
            name: "wordcount".into(),
            inputs: vec!["/in/a.txt".into()],
            output_dir: "/out/wc".into(),
            num_reducers: 3,
            combiner: Some(Arc::new(SumCombiner)),
        };
        let stats = mr
            .run_job(&spec, Arc::new(WordMapper), Some(Arc::new(SumReducer)))
            .unwrap();
        assert_eq!(stats.input_records, 3);
        assert!(stats.map_tasks >= 1);
        assert_eq!(stats.reduce_tasks, 3);
        let mut out = mr.read_output("/out/wc").unwrap();
        out.sort();
        assert!(out.contains(&"the\t3".to_string()), "{out:?}");
        assert!(out.contains(&"fox\t1".to_string()));
        assert_eq!(out.len(), 9, "9 distinct words: {out:?}");
    }

    #[test]
    fn map_only_job() {
        let mr = cluster();
        mr.hdfs()
            .append_lines("/in/x", &["keep 1", "drop 2", "keep 3"])
            .unwrap();
        let mapper = |_k: &str, line: &str, out: &mut Vec<KV>| {
            if line.starts_with("keep") {
                out.push((String::new(), line.to_uppercase()));
            }
        };
        let spec = JobSpec {
            name: "filter".into(),
            inputs: vec!["/in/x".into()],
            output_dir: "/out/f".into(),
            num_reducers: 0,
            combiner: None,
        };
        let stats = mr.run_job(&spec, Arc::new(mapper), None).unwrap();
        assert_eq!(stats.output_records, 2);
        let out = mr.read_output("/out/f").unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|l| l.starts_with("KEEP")));
    }

    #[test]
    fn multi_block_inputs_spawn_multiple_map_tasks() {
        let mr = cluster(); // 64-byte blocks
        let lines: Vec<String> = (0..50).map(|i| format!("word{i} filler filler")).collect();
        mr.hdfs().append_lines("/in/big", &lines).unwrap();
        let spec = JobSpec {
            name: "count".into(),
            inputs: vec!["/in/big".into()],
            output_dir: "/out/c".into(),
            num_reducers: 2,
            combiner: None,
        };
        let stats = mr
            .run_job(&spec, Arc::new(WordMapper), Some(Arc::new(SumReducer)))
            .unwrap();
        assert!(stats.map_tasks > 5, "got {} map tasks", stats.map_tasks);
        assert_eq!(stats.input_records, 50, "every line mapped exactly once");
        let out = mr.read_output("/out/c").unwrap();
        // 50 distinct word{i} keys + "filler".
        assert_eq!(out.len(), 51);
    }

    #[test]
    fn job_errors_and_counters() {
        let mr = cluster();
        let spec = JobSpec {
            name: "missing-input".into(),
            inputs: vec!["/does/not/exist".into()],
            output_dir: "/out/e".into(),
            num_reducers: 1,
            combiner: None,
        };
        assert!(mr
            .run_job(&spec, Arc::new(WordMapper), Some(Arc::new(SumReducer)))
            .is_err());
        // Reducers declared but missing.
        mr.hdfs().append_lines("/in/ok", &["x"]).unwrap();
        let spec2 = JobSpec {
            name: "no-reducer".into(),
            inputs: vec!["/in/ok".into()],
            output_dir: "/out/e2".into(),
            num_reducers: 1,
            combiner: None,
        };
        assert!(mr.run_job(&spec2, Arc::new(WordMapper), None).is_err());
        let (jobs, _, _) = mr.counters();
        assert_eq!(jobs, 1, "failed-validation job was never started");
    }

    #[test]
    fn partitioner_is_stable_and_bounded() {
        for n in 1..8 {
            for key in ["a", "b", "abcdef", ""] {
                let p = partition_of(key, n);
                assert!(p < n);
                assert_eq!(p, partition_of(key, n));
            }
        }
    }
}
