//! Hive: a SQL layer compiling to MapReduce DAGs.
//!
//! Mirrors the architecture the paper integrates with (§4.2–4.4):
//!
//! * a **MetaStore** mapping tables to HDFS directories, schemas and
//!   statistics (row count, file count) — the statistics SDA reads for
//!   federated cost estimation;
//! * a compiler that turns a `SELECT` into a **DAG of MR jobs**: one
//!   filtered scan job per source with pushable predicates, one
//!   repartition-join job per join, one aggregation job (with combiner)
//!   for GROUP BY, plus map-only residual-filter jobs;
//! * Hive's **fetch-task** fast path: a bare `SELECT *` (no predicates,
//!   joins or aggregates) reads HDFS directly with no MR job at all —
//!   this is exactly why the remote materialization of §4.4 pays off;
//! * a **two-phase CTAS** (`CREATE TABLE AS SELECT`), matching the
//!   implementation detail the paper blames for materialization overhead.
//!
//! HAVING, final projection, DISTINCT and ORDER BY are applied by the
//! driver after the last job, as Hive's plan driver does for small final
//! result sets.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use hana_sql::finish::{aggregate_output_schema, collect_aggregates, finish_query};
use hana_sql::{
    evaluate, evaluate_predicate, parse_statement, resolve_column, BinOp, Expr, JoinKind, Query,
    Statement, TableRef,
};
use hana_types::{Accumulator, AggFunc, HanaError, Result, ResultSet, Row, Schema, Value};

use crate::mapreduce::{JobSpec, MrCluster, KV};

/// Hive's default field separator (^A).
pub const FIELD_SEP: char = '\u{1}';
/// Separator inside composite MR keys.
const KEY_SEP: char = '\u{2}';

/// MetaStore entry for one table.
#[derive(Debug, Clone)]
pub struct HiveTable {
    /// Table name.
    pub name: String,
    /// Schema.
    pub schema: Schema,
    /// HDFS directory holding the data files.
    pub location: String,
    /// Row count statistic.
    pub row_count: u64,
    /// Number of data files.
    pub file_count: u64,
    /// Logical modification tick (drives cache-validity checks).
    pub last_modified: u64,
}

/// Statistics snapshot handed to SDA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableStats {
    /// Rows in the table.
    pub row_count: u64,
    /// Data files in the table.
    pub file_count: u64,
    /// Logical modification tick.
    pub last_modified: u64,
}

/// Outcome of a CTAS.
#[derive(Debug, Clone)]
pub struct CtasStats {
    /// Rows written into the target table.
    pub rows: u64,
    /// MR jobs the SELECT part required.
    pub select_jobs: u64,
}

/// A materialized intermediate between DAG stages.
struct Derived {
    /// HDFS files holding the rows.
    files: Vec<String>,
    /// Their schema.
    schema: Schema,
}

/// The Hive engine.
pub struct Hive {
    cluster: Arc<MrCluster>,
    metastore: RwLock<HashMap<String, HiveTable>>,
    tick: AtomicU64,
    tmp_counter: AtomicU64,
}

impl Hive {
    /// A Hive instance over an MR cluster; tables live in `/warehouse`.
    pub fn new(cluster: Arc<MrCluster>) -> Hive {
        Hive {
            cluster,
            metastore: RwLock::new(HashMap::new()),
            tick: AtomicU64::new(1),
            tmp_counter: AtomicU64::new(0),
        }
    }

    /// The underlying MR cluster.
    pub fn cluster(&self) -> &Arc<MrCluster> {
        &self.cluster
    }

    /// Current logical clock value.
    pub fn current_tick(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    // ---- MetaStore ----

    /// Create a table.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut ms = self.metastore.write();
        if ms.contains_key(&key) {
            return Err(HanaError::Catalog(format!(
                "hive table '{name}' already exists"
            )));
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        ms.insert(
            key.clone(),
            HiveTable {
                name: key.clone(),
                schema,
                location: format!("/warehouse/{key}"),
                row_count: 0,
                file_count: 0,
                last_modified: tick,
            },
        );
        Ok(())
    }

    /// Drop a table and its HDFS data.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let table = self
            .metastore
            .write()
            .remove(&key)
            .ok_or_else(|| HanaError::Catalog(format!("unknown hive table '{name}'")))?;
        self.cluster.hdfs().delete_dir(&table.location);
        Ok(())
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.metastore
            .read()
            .contains_key(&name.to_ascii_lowercase())
    }

    /// Table schema.
    pub fn table_schema(&self, name: &str) -> Result<Schema> {
        self.metastore
            .read()
            .get(&name.to_ascii_lowercase())
            .map(|t| t.schema.clone())
            .ok_or_else(|| HanaError::Catalog(format!("unknown hive table '{name}'")))
    }

    /// MetaStore statistics for a table.
    pub fn table_stats(&self, name: &str) -> Result<TableStats> {
        self.metastore
            .read()
            .get(&name.to_ascii_lowercase())
            .map(|t| TableStats {
                row_count: t.row_count,
                file_count: t.file_count,
                last_modified: t.last_modified,
            })
            .ok_or_else(|| HanaError::Catalog(format!("unknown hive table '{name}'")))
    }

    /// All table names.
    pub fn list_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.metastore.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Load rows into a table (appends a new data file).
    pub fn load(&self, name: &str, rows: &[Row]) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut ms = self.metastore.write();
        let table = ms
            .get_mut(&key)
            .ok_or_else(|| HanaError::Catalog(format!("unknown hive table '{name}'")))?;
        for row in rows {
            table.schema.check_row(row.values())?;
        }
        let file = format!("{}/data-{:05}", table.location, table.file_count);
        let lines: Vec<String> = rows.iter().map(|r| r.to_delimited(FIELD_SEP)).collect();
        self.cluster.hdfs().append_lines(&file, &lines)?;
        table.row_count += rows.len() as u64;
        table.file_count += 1;
        table.last_modified = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        Ok(())
    }

    // ---- query execution ----

    /// Execute a HiveQL statement (SELECT only over this entry point).
    pub fn execute(&self, hiveql: &str) -> Result<ResultSet> {
        match parse_statement(hiveql)? {
            Statement::Query(q) => self.execute_query(&q),
            other => Err(HanaError::Unsupported(format!(
                "hive entry point only supports SELECT, got {other:?}"
            ))),
        }
    }

    /// Execute a parsed query.
    pub fn execute_query(&self, q: &Query) -> Result<ResultSet> {
        // Fetch-task fast path: SELECT [cols] FROM t (no filter, joins,
        // grouping, aggregates) reads HDFS directly — no MR job.
        if let Some(rs) = self.try_fetch_task(q)? {
            return Ok(rs);
        }

        let from = q
            .from
            .as_ref()
            .ok_or_else(|| HanaError::Plan("query without FROM".into()))?;

        // Split the WHERE clause into per-source pushdowns and residuals.
        let mut bindings: Vec<(String, String)> = Vec::new(); // (binding, table)
        let (b, t) = named_binding(from)?;
        bindings.push((b, t));
        for j in &q.joins {
            let (b, t) = named_binding(&j.table)?;
            if j.kind != JoinKind::Inner {
                return Err(HanaError::Unsupported(
                    "hive compiler supports inner joins only".into(),
                ));
            }
            bindings.push((b, t));
        }
        let conjuncts: Vec<Expr> = q
            .filter
            .as_ref()
            .map(|f| f.conjuncts().into_iter().cloned().collect())
            .unwrap_or_default();

        // Stage 1: scan job per source (filter + needed-column projection
        // is folded into the mapper).
        let mut derived: Vec<Derived> = Vec::new();
        let mut residual: Vec<Expr> = Vec::new();
        // Assign each conjunct to the single source it references, if any.
        let mut per_source: Vec<Vec<Expr>> = vec![Vec::new(); bindings.len()];
        for c in &conjuncts {
            match single_source_of(c, &bindings) {
                Some(i) => per_source[i].push(c.clone()),
                None => residual.push(c.clone()),
            }
        }
        for (i, (binding, table)) in bindings.iter().enumerate() {
            derived.push(self.scan_stage(binding, table, &per_source[i])?);
        }

        // Stage 2: pairwise repartition joins.
        let mut acc = derived.remove(0);
        for (join_idx, j) in q.joins.iter().enumerate() {
            let right = derived.remove(0);
            let on = &j.on;
            // Equi-join keys; `true` (comma join) means residuals carry
            // the condition — not supported here, require explicit ON.
            let (lk, rk) = equi_keys(on, &acc.schema, &right.schema)?;
            acc = self.join_stage(acc, right, lk, rk, join_idx)?;
        }

        // Stage 3: residual filter job (conditions spanning sources).
        if !residual.is_empty() {
            let pred = residual
                .into_iter()
                .reduce(|a, b| a.and(b))
                .expect("non-empty");
            acc = self.filter_stage(acc, &pred)?;
        }

        // Stage 4: aggregation job if needed.
        let has_aggs = q.select.iter().any(|s| s.expr.contains_aggregate())
            || q.having.as_ref().is_some_and(|h| h.contains_aggregate());
        let (rows, schema) = if !q.group_by.is_empty() || has_aggs {
            let (r, s) = self.aggregate_stage(&acc, q)?;
            (r, s)
        } else {
            (self.read_derived(&acc)?, acc.schema.clone())
        };

        // Driver-side epilogue: HAVING, projection, DISTINCT, ORDER BY,
        // LIMIT (shared with the other engines).
        let (rows, schema) = finish_query(rows, &schema, q)?;
        Ok(ResultSet::new(schema, rows))
    }

    /// `CREATE TABLE name AS SELECT …` — Hive's two-phase implementation
    /// (§4.4: "first the schema resulting from the SELECT part is
    /// created, and then the target table is created").
    pub fn create_table_as_select(&self, name: &str, q: &Query) -> Result<CtasStats> {
        let (jobs_before, _, _) = self.cluster.counters();
        // Phase 1: derive and register the schema (a metadata round-trip,
        // charged as one job-startup delay).
        std::thread::sleep(self.cluster.config().job_startup);
        let rs = self.execute_query(q)?;
        self.create_table(name, rs.schema.clone())?;
        // Phase 2: populate the target table.
        self.load(name, &rs.rows)?;
        let (jobs_after, _, _) = self.cluster.counters();
        Ok(CtasStats {
            rows: rs.rows.len() as u64,
            select_jobs: jobs_after - jobs_before,
        })
    }

    // ---- stages ----

    fn try_fetch_task(&self, q: &Query) -> Result<Option<ResultSet>> {
        let simple = q.joins.is_empty()
            && q.filter.is_none()
            && q.group_by.is_empty()
            && q.having.is_none()
            && !q.select.iter().any(|s| s.expr.contains_aggregate());
        if !simple {
            return Ok(None);
        }
        let Some(TableRef::Named { name, .. }) = &q.from else {
            return Ok(None);
        };
        let table = {
            let ms = self.metastore.read();
            match ms.get(&name.to_ascii_lowercase()) {
                Some(t) => t.clone(),
                None => return Ok(None),
            }
        };
        let mut rows = Vec::with_capacity(table.row_count as usize);
        for file in self.cluster.hdfs().list(&table.location) {
            for line in self.cluster.hdfs().read_lines(&file)? {
                rows.push(parse_row(&line, &table.schema)?);
            }
        }
        let (rows, schema) = finish_query(rows, &table.schema, q)?;
        Ok(Some(ResultSet::new(schema, rows)))
    }

    fn tmp_dir(&self, stage: &str) -> String {
        format!(
            "/tmp/hive/{stage}-{}",
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        )
    }

    /// Map-only scan of a base table with pushed-down predicates; output
    /// columns are qualified with the binding name.
    fn scan_stage(&self, binding: &str, table: &str, preds: &[Expr]) -> Result<Derived> {
        let t = {
            let ms = self.metastore.read();
            ms.get(&table.to_ascii_lowercase())
                .ok_or_else(|| HanaError::Catalog(format!("unknown hive table '{table}'")))?
                .clone()
        };
        let out_schema = t.schema.qualified(binding);
        let inputs = self.cluster.hdfs().list(&t.location);
        if inputs.is_empty() {
            return Ok(Derived {
                files: Vec::new(),
                schema: out_schema,
            });
        }
        let pred = preds.iter().cloned().reduce(|a, b| a.and(b));
        let schema = t.schema.clone();
        // Predicates reference qualified names; evaluate against the
        // qualified schema.
        let qschema = out_schema.clone();
        let mapper = move |_k: &str, line: &str, out: &mut Vec<KV>| {
            let Ok(row) = parse_row(line, &schema) else {
                return;
            };
            if let Some(p) = &pred {
                match evaluate_predicate(p, &qschema, &row) {
                    Ok(true) => {}
                    _ => return,
                }
            }
            out.push((String::new(), line.to_string()));
        };
        let out_dir = self.tmp_dir(&format!("scan-{binding}"));
        let spec = JobSpec {
            name: format!("scan {table} as {binding}"),
            inputs,
            output_dir: out_dir.clone(),
            num_reducers: 0,
            combiner: None,
        };
        self.cluster.run_job(&spec, Arc::new(mapper), None)?;
        Ok(Derived {
            files: self.cluster.hdfs().list(&out_dir),
            schema: out_schema,
        })
    }

    /// Repartition join: both inputs are mapped to (key, tagged-row),
    /// the reducer emits concatenated matches.
    fn join_stage(
        &self,
        left: Derived,
        right: Derived,
        left_key: usize,
        right_key: usize,
        join_idx: usize,
    ) -> Result<Derived> {
        let out_schema = left.schema.join(&right.schema)?;
        let out_dir = self.tmp_dir(&format!("join-{join_idx}"));
        let left_files: std::collections::HashSet<String> = left.files.iter().cloned().collect();
        let left_schema = left.schema.clone();
        let right_schema = right.schema.clone();
        let mapper = move |path: &str, line: &str, out: &mut Vec<KV>| {
            let is_left = left_files.contains(path);
            let schema = if is_left { &left_schema } else { &right_schema };
            let key_col = if is_left { left_key } else { right_key };
            let Ok(row) = parse_row(line, schema) else {
                return;
            };
            let key = &row[key_col];
            if key.is_null() {
                return;
            }
            let tag = if is_left { "L" } else { "R" };
            out.push((key.to_string(), format!("{tag}{line}")));
        };
        struct JoinReducer;
        impl crate::mapreduce::Reducer for JoinReducer {
            fn reduce(&self, _key: &str, values: &[String], out: &mut Vec<String>) {
                let lefts: Vec<&str> = values
                    .iter()
                    .filter(|v| v.starts_with('L'))
                    .map(|v| &v[1..])
                    .collect();
                let rights: Vec<&str> = values
                    .iter()
                    .filter(|v| v.starts_with('R'))
                    .map(|v| &v[1..])
                    .collect();
                for l in &lefts {
                    for r in &rights {
                        out.push(format!("{l}{FIELD_SEP}{r}"));
                    }
                }
            }
        }
        let mut inputs = left.files.clone();
        inputs.extend(right.files.clone());
        if inputs.is_empty() {
            return Ok(Derived {
                files: Vec::new(),
                schema: out_schema,
            });
        }
        let spec = JobSpec {
            name: format!("repartition-join-{join_idx}"),
            inputs,
            output_dir: out_dir.clone(),
            num_reducers: 3,
            combiner: None,
        };
        self.cluster
            .run_job(&spec, Arc::new(mapper), Some(Arc::new(JoinReducer)))?;
        Ok(Derived {
            files: self.cluster.hdfs().list(&out_dir),
            schema: out_schema,
        })
    }

    /// Map-only filter over an intermediate.
    fn filter_stage(&self, input: Derived, pred: &Expr) -> Result<Derived> {
        if input.files.is_empty() {
            return Ok(input);
        }
        let out_dir = self.tmp_dir("filter");
        let schema = input.schema.clone();
        let pred = pred.clone();
        let mapper = move |_k: &str, line: &str, out: &mut Vec<KV>| {
            if let Ok(row) = parse_row(line, &schema) {
                if evaluate_predicate(&pred, &schema, &row).unwrap_or(false) {
                    out.push((String::new(), line.to_string()));
                }
            }
        };
        let spec = JobSpec {
            name: "residual-filter".into(),
            inputs: input.files.clone(),
            output_dir: out_dir.clone(),
            num_reducers: 0,
            combiner: None,
        };
        self.cluster.run_job(&spec, Arc::new(mapper), None)?;
        Ok(Derived {
            files: self.cluster.hdfs().list(&out_dir),
            schema: input.schema,
        })
    }

    /// Group-by MR job: mapper emits (group key, agg inputs), a combiner
    /// pre-aggregates, the reducer finalizes.
    fn aggregate_stage(&self, input: &Derived, q: &Query) -> Result<(Vec<Row>, Schema)> {
        let aggs = collect_aggregates(q);
        let group_by = q.group_by.clone();
        let in_schema = input.schema.clone();

        // Output schema: `_g0.._gN` then `_a0.._aM` (shared convention).
        let out_schema = aggregate_output_schema(q, &in_schema)?;

        if input.files.is_empty() {
            // Global aggregate over empty input: one row of empty aggs.
            if group_by.is_empty() {
                let row = Row::from_values(aggs.iter().map(|(f, _)| f.accumulator().finish()));
                return Ok((vec![row], out_schema));
            }
            return Ok((Vec::new(), out_schema));
        }

        let aggs_m = aggs.clone();
        let gb_m = group_by.clone();
        let schema_m = in_schema.clone();
        let mapper = move |_k: &str, line: &str, out: &mut Vec<KV>| {
            let Ok(row) = parse_row(line, &schema_m) else {
                return;
            };
            let mut key = String::new();
            for (i, g) in gb_m.iter().enumerate() {
                if i > 0 {
                    key.push(KEY_SEP);
                }
                match evaluate(g, &schema_m, &row) {
                    Ok(v) if v.is_null() => key.push_str("\\N"),
                    Ok(v) => key.push_str(&v.to_string()),
                    Err(_) => return,
                }
            }
            let mut val = String::new();
            for (i, (_, arg)) in aggs_m.iter().enumerate() {
                if i > 0 {
                    val.push(FIELD_SEP);
                }
                let v = match arg {
                    Some(e) => evaluate(e, &schema_m, &row).unwrap_or(Value::Null),
                    None => Value::Int(1), // COUNT(*) marker
                };
                if v.is_null() {
                    val.push_str("\\N");
                } else {
                    val.push_str(&v.to_string());
                }
            }
            out.push((key, val));
        };

        /// Reducer finalizing (or combining) partial aggregates.
        struct AggReducer {
            aggs: Vec<(AggFunc, Option<Expr>)>,
            /// Combiners re-emit partial rows; the final pass emits
            /// key + finished values.
            is_final: bool,
        }
        impl crate::mapreduce::Reducer for AggReducer {
            fn reduce(&self, key: &str, values: &[String], out: &mut Vec<String>) {
                let mut accs: Vec<Accumulator> =
                    self.aggs.iter().map(|(f, _)| f.accumulator()).collect();
                for v in values {
                    for (acc, field) in accs.iter_mut().zip(v.split(FIELD_SEP)) {
                        let val = if field == "\\N" {
                            Value::Null
                        } else if let Ok(i) = field.parse::<i64>() {
                            Value::Int(i)
                        } else if let Ok(d) = field.parse::<f64>() {
                            Value::Double(d)
                        } else {
                            Value::Varchar(field.to_string())
                        };
                        acc.add(&val);
                    }
                }
                if self.is_final {
                    let mut line = String::new();
                    if !key.is_empty() {
                        line.push_str(&key.replace(KEY_SEP, &FIELD_SEP.to_string()));
                        line.push(FIELD_SEP);
                    }
                    for (i, acc) in accs.iter().enumerate() {
                        if i > 0 {
                            line.push(FIELD_SEP);
                        }
                        let v = acc.finish();
                        if v.is_null() {
                            line.push_str("\\N");
                        } else {
                            line.push_str(&v.to_string());
                        }
                    }
                    out.push(line);
                } else {
                    // Partial: COUNT/AVG are not combinable as plain
                    // re-addition; re-emit raw values instead.
                    for v in values {
                        out.push(v.clone());
                    }
                }
            }
        }

        let out_dir = self.tmp_dir("agg");
        let spec = JobSpec {
            name: "group-by".into(),
            inputs: input.files.clone(),
            output_dir: out_dir.clone(),
            num_reducers: if group_by.is_empty() { 1 } else { 3 },
            combiner: None,
        };
        self.cluster.run_job(
            &spec,
            Arc::new(mapper),
            Some(Arc::new(AggReducer {
                aggs: aggs.clone(),
                is_final: true,
            })),
        )?;

        // Parse output lines against the output schema. Group-key fields
        // were serialized as display text; re-type them from the input.
        let mut rows = Vec::new();
        for file in self.cluster.hdfs().list(&out_dir) {
            for line in self.cluster.hdfs().read_lines(&file)? {
                rows.push(parse_row(&line, &out_schema)?);
            }
        }
        // Global aggregation over non-empty input but zero surviving rows
        // is handled by the reduce task only if a partition existed; add
        // the empty-row case.
        if rows.is_empty() && group_by.is_empty() {
            rows.push(Row::from_values(
                aggs.iter().map(|(f, _)| f.accumulator().finish()),
            ));
        }
        Ok((rows, out_schema))
    }

    fn read_derived(&self, d: &Derived) -> Result<Vec<Row>> {
        let mut rows = Vec::new();
        for f in &d.files {
            for line in self.cluster.hdfs().read_lines(f)? {
                rows.push(parse_row(&line, &d.schema)?);
            }
        }
        Ok(rows)
    }
}

/// Parse a ^A-separated line against a schema.
pub fn parse_row(line: &str, schema: &Schema) -> Result<Row> {
    let fields: Vec<&str> = line.split(FIELD_SEP).collect();
    if fields.len() != schema.len() {
        return Err(HanaError::Execution(format!(
            "line has {} fields, schema {} columns",
            fields.len(),
            schema.len()
        )));
    }
    let mut vals = Vec::with_capacity(fields.len());
    for (f, c) in fields.iter().zip(schema.columns()) {
        vals.push(Value::parse_typed(f, c.data_type)?);
    }
    Ok(Row(vals))
}

fn named_binding(t: &TableRef) -> Result<(String, String)> {
    match t {
        TableRef::Named { name, alias } => {
            Ok((alias.clone().unwrap_or_else(|| name.clone()), name.clone()))
        }
        other => Err(HanaError::Unsupported(format!(
            "hive FROM supports named tables only, got {other:?}"
        ))),
    }
}

/// If every column of `e` resolves inside a single binding's table, the
/// binding index; `None` otherwise.
fn single_source_of(e: &Expr, bindings: &[(String, String)]) -> Option<usize> {
    let cols = e.columns();
    if cols.is_empty() {
        return None;
    }
    let mut source: Option<usize> = None;
    for (q, name) in cols {
        let idx = match q {
            Some(q) => bindings.iter().position(|(b, _)| b == q)?,
            // Unqualified: attribute by TPC-H style prefix match is
            // unsafe; instead assume it belongs to whichever single
            // binding — only valid when there is exactly one.
            None if bindings.len() == 1 => 0,
            None => return None,
        };
        let _ = name;
        match source {
            None => source = Some(idx),
            Some(s) if s == idx => {}
            _ => return None,
        }
    }
    source
}

/// Extract equi-join key columns from an ON expression.
fn equi_keys(on: &Expr, left: &Schema, right: &Schema) -> Result<(usize, usize)> {
    if let Expr::Binary {
        left: l,
        op: BinOp::Eq,
        right: r,
    } = on
    {
        if let (
            Expr::Column {
                qualifier: lq,
                name: ln,
            },
            Expr::Column {
                qualifier: rq,
                name: rn,
            },
        ) = (l.as_ref(), r.as_ref())
        {
            // Try (l in left, r in right) then the swap.
            if let (Ok(a), Ok(b)) = (
                resolve_column(left, lq.as_deref(), ln),
                resolve_column(right, rq.as_deref(), rn),
            ) {
                return Ok((a, b));
            }
            if let (Ok(a), Ok(b)) = (
                resolve_column(left, rq.as_deref(), rn),
                resolve_column(right, lq.as_deref(), ln),
            ) {
                return Ok((a, b));
            }
        }
    }
    Err(HanaError::Unsupported(format!(
        "hive joins require a simple equi-join ON clause, got {on:?}"
    )))
}
