//! # hana-hadoop
//!
//! The simulated Hadoop stack the platform federates with (§4 of the
//! paper): a block-based, replicated **HDFS**, a multi-threaded
//! **MapReduce** engine with explicit job/task startup costs, a **Hive**
//! layer (MetaStore with statistics, HiveQL→MR-DAG compiler, fetch-task
//! fast path, two-phase CTAS), and a registry of custom MR programs
//! that back `CREATE VIRTUAL FUNCTION`.
//!
//! ```
//! use std::sync::Arc;
//! use hana_hadoop::{Hdfs, Hive, MrCluster, MrConfig};
//! use hana_types::{Schema, DataType, Row, Value};
//!
//! let hdfs = Arc::new(Hdfs::new(4));
//! let mr = Arc::new(MrCluster::new(hdfs, MrConfig::default()));
//! let hive = Hive::new(mr);
//! hive.create_table("product", Schema::of(&[
//!     ("product_name", DataType::Varchar),
//!     ("brand_name", DataType::Varchar),
//! ])).unwrap();
//! hive.load("product", &[Row::from_values([
//!     Value::from("Widget"), Value::from("Acme"),
//! ])]).unwrap();
//! let rs = hive.execute("SELECT product_name, brand_name FROM product").unwrap();
//! assert_eq!(rs.len(), 1);
//! ```

mod hdfs;
mod hive;
mod mapreduce;
mod mrfunc;

pub use hdfs::{Hdfs, DEFAULT_BLOCK_SIZE};
pub use hive::{parse_row, CtasStats, Hive, HiveTable, TableStats, FIELD_SEP};
pub use mapreduce::{
    partition_of, Combiner, JobSpec, JobStats, Mapper, MrCluster, MrConfig, Reducer, KV,
};
pub use mrfunc::{output_line, MrFunction, MrFunctionRegistry};
