//! Registry of custom MapReduce programs ("jars").
//!
//! §4.3 of the paper: SAP HANA can "invoke custom map-reduce in Hadoop …
//! without the additional Hive layer", exposing an existing MR job as a
//! virtual table function. Real deployments register jar files and a
//! driver class through WebHCat; this simulator registers Rust
//! mapper/reducer implementations under a driver-class name, and the SDA
//! `hadoop` adapter resolves `hana.mapred.driver.class` against this
//! registry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use hana_types::{HanaError, Result, ResultSet, Schema};

use crate::hive::{parse_row, FIELD_SEP};
use crate::mapreduce::{JobSpec, Mapper, MrCluster, Reducer};

/// A registered MR program.
pub struct MrFunction {
    /// HDFS input files or directories.
    pub inputs: Vec<String>,
    /// The map function.
    pub mapper: Arc<dyn Mapper>,
    /// The reduce function (None = map-only).
    pub reducer: Option<Arc<dyn Reducer>>,
    /// Reduce task count (`mapred.reducer.count`).
    pub num_reducers: usize,
    /// Schema of the output lines (^A-separated).
    pub output_schema: Schema,
}

/// Driver-class-name → MR program registry.
pub struct MrFunctionRegistry {
    cluster: Arc<MrCluster>,
    funcs: RwLock<HashMap<String, Arc<MrFunction>>>,
    run_counter: AtomicU64,
}

impl MrFunctionRegistry {
    /// A registry bound to `cluster`.
    pub fn new(cluster: Arc<MrCluster>) -> MrFunctionRegistry {
        MrFunctionRegistry {
            cluster,
            funcs: RwLock::new(HashMap::new()),
            run_counter: AtomicU64::new(0),
        }
    }

    /// Register a program under `driver_class`
    /// (e.g. `com.customer.hadoop.SensorMRDriver`).
    pub fn register(&self, driver_class: &str, func: MrFunction) {
        self.funcs
            .write()
            .insert(driver_class.to_string(), Arc::new(func));
    }

    /// Whether a driver class is registered.
    pub fn has(&self, driver_class: &str) -> bool {
        self.funcs.read().contains_key(driver_class)
    }

    /// Run the program and return its output as rows.
    pub fn invoke(&self, driver_class: &str) -> Result<ResultSet> {
        let func = self
            .funcs
            .read()
            .get(driver_class)
            .cloned()
            .ok_or_else(|| {
                // Permanent: a missing driver class never appears by
                // retrying.
                HanaError::remote(format!(
                    "no MR job registered for driver class '{driver_class}'"
                ))
            })?;
        // Expand directory inputs to files.
        let mut inputs = Vec::new();
        for i in &func.inputs {
            let files = self.cluster.hdfs().list(i);
            if files.is_empty() {
                inputs.push(i.clone());
            } else {
                inputs.extend(files);
            }
        }
        let out_dir = format!(
            "/tmp/mrfunc/{}-{}",
            driver_class.replace('.', "_"),
            self.run_counter.fetch_add(1, Ordering::Relaxed)
        );
        let spec = JobSpec {
            name: format!("virtual-function {driver_class}"),
            inputs,
            output_dir: out_dir.clone(),
            num_reducers: func.num_reducers,
            combiner: None,
        };
        self.cluster
            .run_job(&spec, Arc::clone(&func.mapper), func.reducer.clone())?;
        let mut rows = Vec::new();
        for file in self.cluster.hdfs().list(&out_dir) {
            for line in self.cluster.hdfs().read_lines(&file)? {
                rows.push(parse_row(&line, &func.output_schema)?);
            }
        }
        Ok(ResultSet::new(func.output_schema.clone(), rows))
    }
}

/// Helper for tests and examples: serialize values as an output line.
pub fn output_line(fields: &[String]) -> String {
    fields.join(&FIELD_SEP.to_string())
}
