//! Abstract syntax of the supported SQL subset.
//!
//! The subset mirrors what the paper exercises: column/row table DDL with
//! the `USING [HYBRID] EXTENDED STORAGE` clause (§3.1), remote sources /
//! virtual tables / virtual functions for SDA (§4.2, §4.3), DML, and
//! SELECT with joins, grouping, ordering and optimizer hints such as
//! `WITH HINT (USE_REMOTE_CACHE)` (§4.4).

use hana_types::Value;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE [COLUMN|ROW] TABLE …`
    CreateTable(CreateTable),
    /// `DROP TABLE name`
    DropTable {
        /// Table to drop.
        name: String,
    },
    /// `CREATE INDEX name ON table (col [, col]…)`
    CreateIndex {
        /// Index name, unique within the table.
        name: String,
        /// Table the index belongs to.
        table: String,
        /// Indexed columns, most significant first.
        columns: Vec<String>,
    },
    /// `DROP INDEX name [ON table]`
    DropIndex {
        /// Index to drop.
        name: String,
        /// Owning table; when omitted, resolved by searching the catalog.
        table: Option<String>,
    },
    /// `CREATE REMOTE SOURCE name ADAPTER "x" CONFIGURATION '…'
    /// [WITH CREDENTIAL TYPE '…' USING '…']`
    CreateRemoteSource {
        /// Source name.
        name: String,
        /// Adapter identifier (e.g. `hiveodbc`, `hadoop`).
        adapter: String,
        /// Adapter configuration string (e.g. `DSN=hive1`).
        configuration: String,
        /// Credential type, if given (e.g. `PASSWORD`).
        credential_type: Option<String>,
        /// Credential payload (e.g. `user=dfuser;password=dfpass`).
        credentials: Option<String>,
    },
    /// `CREATE VIRTUAL TABLE name AT "src"."db"."schema"."table"`
    CreateVirtualTable {
        /// Local virtual-table name.
        name: String,
        /// Remote path: source name followed by remote identifiers.
        remote_path: Vec<String>,
    },
    /// `CREATE VIRTUAL FUNCTION name() RETURNS TABLE (…)
    /// CONFIGURATION '…' AT source`
    CreateVirtualFunction {
        /// Function name.
        name: String,
        /// Declared output columns `(name, type)`.
        returns: Vec<(String, String)>,
        /// Job configuration (driver class, jar files, reducer count…).
        configuration: String,
        /// Remote source executing the function.
        source: String,
    },
    /// `INSERT INTO t [(cols)] VALUES (…), (…)`
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Value rows.
        rows: Vec<Vec<Expr>>,
    },
    /// `UPDATE t SET c = e [, …] [WHERE …]`
    Update {
        /// Target table.
        table: String,
        /// Column assignments.
        assignments: Vec<(String, Expr)>,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE …]`
    Delete {
        /// Target table.
        table: String,
        /// Row filter.
        filter: Option<Expr>,
    },
    /// A `SELECT` query.
    Query(Query),
    /// `EXPLAIN <query>` — returns the plan instead of rows.
    Explain(Query),
    /// `BEGIN` (explicit transaction).
    Begin,
    /// `COMMIT`
    Commit,
    /// `ROLLBACK`
    Rollback,
    /// `MERGE DELTA OF t` — force a delta merge (admin operation).
    MergeDelta {
        /// Target column table.
        table: String,
    },
    /// `CREATE STREAM SINK name ON <stream|window> INTO table` — attach
    /// an exactly-once ingest pipeline delivering ESP output into a
    /// platform table (§3.2 use case 1 at scale).
    CreateStreamSink {
        /// Pipeline name (ingest-ledger key).
        name: String,
        /// ESP source: input stream, window or output stream.
        source: String,
        /// Target table.
        table: String,
    },
    /// `DROP STREAM SINK name` — detach and stop the pipeline.
    DropStreamSink {
        /// Pipeline to drop.
        name: String,
    },
}

/// Physical table kind in DDL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableKind {
    /// In-memory column store (default).
    #[default]
    Column,
    /// In-memory row store.
    Row,
}

/// `CREATE TABLE` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column vs row store.
    pub kind: TableKind,
    /// Declared columns.
    pub columns: Vec<ColumnSpec>,
    /// `USING [HYBRID] EXTENDED STORAGE` clause, if present.
    pub extended: Option<ExtendedSpec>,
    /// `PARTITION BY …` clause, if present (scale-out tables).
    pub partition: Option<PartitionBy>,
}

/// The `PARTITION BY` clause of scale-out DDL: how rows are mapped to
/// the nodes of the landscape.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionBy {
    /// `PARTITION BY HASH(col) PARTITIONS n`
    Hash {
        /// Partitioning column, lower-cased.
        column: String,
        /// Number of partitions (> 0).
        partitions: usize,
    },
    /// `PARTITION BY RANGE(col) (PARTITION VALUES < v1, …, PARTITION
    /// OTHERS)` — `split_points` are the ascending exclusive upper
    /// bounds; rows at or above the last one land in the final
    /// catch-all partition, so `n` split points make `n + 1` partitions.
    Range {
        /// Partitioning column, lower-cased.
        column: String,
        /// Ascending exclusive upper bounds of the first `n` partitions.
        split_points: Vec<Value>,
    },
}

impl PartitionBy {
    /// The partitioning column.
    pub fn column(&self) -> &str {
        match self {
            PartitionBy::Hash { column, .. } | PartitionBy::Range { column, .. } => column,
        }
    }

    /// Total number of partitions the clause produces.
    pub fn partitions(&self) -> usize {
        match self {
            PartitionBy::Hash { partitions, .. } => *partitions,
            PartitionBy::Range { split_points, .. } => split_points.len() + 1,
        }
    }
}

/// One column in DDL.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Type name as written (`VARCHAR(30)`, `INTEGER`…).
    pub type_name: String,
    /// `NOT NULL` given.
    pub not_null: bool,
    /// `PRIMARY KEY` given.
    pub primary_key: bool,
}

/// The extended-storage clause of §3.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedSpec {
    /// `HYBRID`: hot in-memory partitions + cold extended partitions.
    /// Without it, the whole table lives in the extended store.
    pub hybrid: bool,
    /// `AGING ON col`: the dedicated boolean flag column that drives the
    /// built-in aging mechanism for hybrid tables.
    pub aging_column: Option<String>,
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// `DISTINCT` given.
    pub distinct: bool,
    /// Select list; empty means `*`.
    pub select: Vec<SelectItem>,
    /// First FROM item.
    pub from: Option<TableRef>,
    /// JOIN clauses in order.
    pub joins: Vec<JoinClause>,
    /// WHERE predicate.
    pub filter: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY `(expr, ascending)`.
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT / TOP row budget.
    pub limit: Option<usize>,
    /// `WITH HINT (…)` names, upper-cased.
    pub hints: Vec<String>,
}

/// One select-list entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: Expr,
    /// `AS alias`, if given.
    pub alias: Option<String>,
}

/// A FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named table or view, possibly qualified (`db.schema.t`).
    Named {
        /// Dotted name as written (lower-cased).
        name: String,
        /// Alias, if given.
        alias: Option<String>,
    },
    /// A table function call, e.g. `PLANT100_SENSOR_RECORDS()`.
    Function {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Alias, if given.
        alias: Option<String>,
    },
    /// A derived table `(SELECT …) alias`.
    Subquery {
        /// The inner query.
        query: Box<Query>,
        /// Mandatory alias.
        alias: String,
    },
}

impl TableRef {
    /// The name the query can refer to this source by.
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Named { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Function { name, alias, .. } => alias.as_deref().unwrap_or(name),
            TableRef::Subquery { alias, .. } => alias,
        }
    }
}

/// A JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Join kind.
    pub kind: JoinKind,
    /// Joined source.
    pub table: TableRef,
    /// ON condition.
    pub on: Expr,
}

/// Supported join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`
    Inner,
    /// `LEFT [OUTER] JOIN`
    LeftOuter,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A positional parameter placeholder (`?`), 0-indexed in text
    /// order. Bound to a literal via [`Statement::bind_params`] before
    /// planning/execution; evaluating an unbound parameter errors.
    Parameter(usize),
    /// A (possibly qualified) column reference.
    Column {
        /// Table qualifier, lower-cased.
        qualifier: Option<String>,
        /// Column name, lower-cased.
        name: String,
    },
    /// `*` (only valid in COUNT(*) and the select list).
    Wildcard,
    /// Unary operator.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operator.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr [NOT] IN (v1, v2, …)`
    InList {
        /// Probe expression.
        expr: Box<Expr>,
        /// The list.
        list: Vec<Expr>,
        /// NOT given.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi`
    Between {
        /// Probe expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
        /// NOT given.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'`
    Like {
        /// Probe expression.
        expr: Box<Expr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: String,
        /// NOT given.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        /// Probe expression.
        expr: Box<Expr>,
        /// NOT given.
        negated: bool,
    },
    /// Function call (aggregate or scalar).
    Func {
        /// Upper-cased function name.
        name: String,
        /// Arguments (`Wildcard` for `COUNT(*)`).
        args: Vec<Expr>,
    },
    /// `CASE WHEN c THEN v [WHEN …] [ELSE e] END`
    Case {
        /// `(condition, result)` arms.
        whens: Vec<(Expr, Expr)>,
        /// ELSE arm.
        else_expr: Option<Box<Expr>>,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl Expr {
    /// Shorthand for an unqualified column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_ascii_lowercase(),
        }
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Conjunction of two expressions.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op: BinOp::And,
            right: Box::new(other),
        }
    }

    /// Split a conjunctive expression into its AND-ed factors.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary {
                left,
                op: BinOp::And,
                right,
            } => {
                let mut out = left.conjuncts();
                out.extend(right.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// All column references in the expression.
    pub fn columns(&self) -> Vec<(&Option<String>, &str)> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column { qualifier, name } = e {
                out.push((qualifier, name.as_str()));
            }
        });
        out
    }

    /// Depth-first visit of the expression tree.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.walk(f);
                lo.walk(f);
                hi.walk(f);
            }
            Expr::Like { expr, .. } | Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Func { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Case { whens, else_expr } => {
                for (c, v) in whens {
                    c.walk(f);
                    v.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            Expr::Literal(_) | Expr::Parameter(_) | Expr::Column { .. } | Expr::Wildcard => {}
        }
    }

    /// Whether the expression (transitively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Func { name, .. } = e {
                if hana_types::AggFunc::parse(name).is_some() {
                    found = true;
                }
            }
        });
        found
    }

    /// A display name for unaliased select-list items.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column { name, .. } => name.clone(),
            Expr::Func { name, args } => {
                let inner = args
                    .iter()
                    .map(|a| a.default_name())
                    .collect::<Vec<_>>()
                    .join(",");
                format!("{}({inner})", name.to_ascii_lowercase())
            }
            Expr::Wildcard => "*".into(),
            Expr::Literal(v) => v.to_string(),
            _ => "expr".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let e = Expr::col("a").and(Expr::col("b")).and(Expr::Binary {
            left: Box::new(Expr::col("c")),
            op: BinOp::Or,
            right: Box::new(Expr::col("d")),
        });
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
        // The OR stays intact as a single conjunct.
        assert!(matches!(parts[2], Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn column_collection_and_aggregates() {
        let e = Expr::Func {
            name: "SUM".into(),
            args: vec![Expr::Binary {
                left: Box::new(Expr::col("price")),
                op: BinOp::Mul,
                right: Box::new(Expr::col("qty")),
            }],
        };
        let cols = e.columns();
        assert_eq!(cols.len(), 2);
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        assert_eq!(e.default_name(), "sum(expr)");
    }
}
