//! SQL tokenizer.

use hana_types::{HanaError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (kept as written; keyword matching is
    /// case-insensitive in the parser).
    Ident(String),
    /// `"quoted"` identifier (never a keyword).
    QuotedIdent(String),
    /// `'string'` literal with `''` escapes resolved.
    StringLit(String),
    /// Numeric literal (integer or decimal).
    Number(String),
    /// Punctuation / operator.
    Symbol(Symbol),
}

/// Punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// `?` — positional parameter placeholder in prepared statements.
    Question,
}

impl Token {
    /// Whether the token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize `input`, skipping whitespace and `--` comments.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::Symbol(Symbol::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Symbol(Symbol::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(Symbol::Comma));
                i += 1;
            }
            '.' => {
                out.push(Token::Symbol(Symbol::Dot));
                i += 1;
            }
            ';' => {
                out.push(Token::Symbol(Symbol::Semicolon));
                i += 1;
            }
            '*' => {
                out.push(Token::Symbol(Symbol::Star));
                i += 1;
            }
            '+' => {
                out.push(Token::Symbol(Symbol::Plus));
                i += 1;
            }
            '-' => {
                out.push(Token::Symbol(Symbol::Minus));
                i += 1;
            }
            '/' => {
                out.push(Token::Symbol(Symbol::Slash));
                i += 1;
            }
            '=' => {
                out.push(Token::Symbol(Symbol::Eq));
                i += 1;
            }
            '?' => {
                out.push(Token::Symbol(Symbol::Question));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::Symbol(Symbol::Ne));
                i += 2;
            }
            '<' => {
                match bytes.get(i + 1) {
                    Some(b'=') => {
                        out.push(Token::Symbol(Symbol::Le));
                        i += 2;
                    }
                    Some(b'>') => {
                        out.push(Token::Symbol(Symbol::Ne));
                        i += 2;
                    }
                    _ => {
                        out.push(Token::Symbol(Symbol::Lt));
                        i += 1;
                    }
                };
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Symbol(Symbol::Ge));
                    i += 2;
                } else {
                    out.push(Token::Symbol(Symbol::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = read_quoted(input, i, '\'')?;
                out.push(Token::StringLit(s));
                i = next;
            }
            '"' => {
                let (s, next) = read_quoted(input, i, '"')?;
                out.push(Token::QuotedIdent(s));
                i = next;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    // Don't swallow a dot that isn't part of a decimal.
                    if bytes[i] == b'.'
                        && !bytes
                            .get(i + 1)
                            .is_some_and(|b| (*b as char).is_ascii_digit())
                    {
                        break;
                    }
                    i += 1;
                }
                out.push(Token::Number(input[start..i].to_string()));
            }
            c if c.is_alphabetic() || c == '_' || c == '#' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    if ch.is_alphanumeric() || ch == '_' || ch == '#' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(HanaError::Parse(format!(
                    "unexpected character '{other}' at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

/// Read a quoted run starting at `start` (which holds the quote char);
/// doubled quotes escape. Returns the content and the index after the
/// closing quote.
fn read_quoted(input: &str, start: usize, quote: char) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let q = quote as u8;
    let mut s = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == q {
            if bytes.get(i + 1) == Some(&q) {
                s.push(quote);
                i += 2;
            } else {
                return Ok((s, i + 1));
            }
        } else {
            // Multi-byte characters are copied as-is.
            let ch_len = utf8_len(bytes[i]);
            s.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(HanaError::Parse(format!(
        "unterminated {quote}-quoted literal starting at byte {start}"
    )))
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_numbers_symbols() {
        let toks = tokenize("SELECT a, b*2 FROM t WHERE x >= 1.5 AND y <> 'it''s'").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Token::Symbol(Symbol::Star)));
        assert!(toks.contains(&Token::Number("1.5".into())));
        assert!(toks.contains(&Token::Symbol(Symbol::Ge)));
        assert!(toks.contains(&Token::Symbol(Symbol::Ne)));
        assert!(toks.contains(&Token::StringLit("it's".into())));
    }

    #[test]
    fn quoted_identifiers() {
        let toks = tokenize(r#"SELECT "Weird Col" FROM "HIVE1"."dflo"."product""#).unwrap();
        assert_eq!(toks[1], Token::QuotedIdent("Weird Col".into()));
        assert!(toks.contains(&Token::QuotedIdent("HIVE1".into())));
        assert!(toks.contains(&Token::Symbol(Symbol::Dot)));
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT 1 -- the answer\n, 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Number("1".into()),
                Token::Symbol(Symbol::Comma),
                Token::Number("2".into()),
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("SELECT 'open").is_err());
        assert!(tokenize("a @ b").is_err());
    }

    #[test]
    fn parameter_placeholders() {
        let toks = tokenize("SELECT v FROM t WHERE k = ? AND x > ?").unwrap();
        assert_eq!(
            toks.iter()
                .filter(|t| **t == Token::Symbol(Symbol::Question))
                .count(),
            2
        );
    }

    #[test]
    fn decimal_vs_qualified_name() {
        let toks = tokenize("t.c 1.5 2.").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("t".into()),
                Token::Symbol(Symbol::Dot),
                Token::Ident("c".into()),
                Token::Number("1.5".into()),
                Token::Number("2".into()),
                Token::Symbol(Symbol::Dot),
            ]
        );
    }

    #[test]
    fn temp_table_names() {
        let toks = tokenize("SELECT * FROM #tmp_1").unwrap();
        assert!(toks.contains(&Token::Ident("#tmp_1".into())));
    }
}
