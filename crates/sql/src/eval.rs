//! Row-level expression evaluation.
//!
//! A single evaluator is shared by every engine that executes predicates
//! or scalar expressions over rows: the vectorized executor in
//! `hana-query`, the Hive compiler's map tasks in `hana-hadoop`, and the
//! CCL filters of `hana-esp`. Aggregate calls are *not* evaluated here —
//! executors replace them with pre-computed columns before calling in.

use hana_types::{HanaError, Result, Row, Schema, Value};

use crate::ast::{BinOp, Expr, UnaryOp};

/// Evaluate `expr` against one row of `schema`.
///
/// Column references resolve by name; a qualified reference `t.c` first
/// tries `t.c` verbatim (join outputs use qualified column names), then
/// bare `c`.
pub fn evaluate(expr: &Expr, schema: &Schema, row: &Row) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Parameter(i) => Err(HanaError::Plan(format!(
            "unbound parameter ?{} — bind values before execution",
            i + 1
        ))),
        Expr::Column { qualifier, name } => {
            let idx = resolve_column(schema, qualifier.as_deref(), name)?;
            Ok(row[idx].clone())
        }
        Expr::Wildcard => Err(HanaError::Plan("'*' is only valid inside COUNT(*)".into())),
        Expr::Unary { op, expr } => {
            let v = evaluate(expr, schema, row)?;
            match op {
                UnaryOp::Neg => Value::Int(0).sub(&v),
                UnaryOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(HanaError::Execution(format!(
                        "NOT applied to non-boolean {other}"
                    ))),
                },
            }
        }
        Expr::Binary { left, op, right } => {
            let l = evaluate(left, schema, row)?;
            match op {
                // Short-circuit three-valued logic.
                BinOp::And => match l {
                    Value::Bool(false) => Ok(Value::Bool(false)),
                    _ => {
                        let r = evaluate(right, schema, row)?;
                        tvl_and(&l, &r)
                    }
                },
                BinOp::Or => match l {
                    Value::Bool(true) => Ok(Value::Bool(true)),
                    _ => {
                        let r = evaluate(right, schema, row)?;
                        tvl_or(&l, &r)
                    }
                },
                _ => {
                    let r = evaluate(right, schema, row)?;
                    apply_binop(*op, &l, &r)
                }
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = evaluate(expr, schema, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                let w = evaluate(item, schema, row)?;
                if v.sql_cmp(&w) == Some(std::cmp::Ordering::Equal) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = evaluate(expr, schema, row)?;
            let l = evaluate(lo, schema, row)?;
            let h = evaluate(hi, schema, row)?;
            if v.is_null() || l.is_null() || h.is_null() {
                return Ok(Value::Null);
            }
            let inside = v >= l && v <= h;
            Ok(Value::Bool(inside != *negated))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = evaluate(expr, schema, row)?;
            match v.sql_like(pattern) {
                None => Ok(Value::Null),
                Some(m) => Ok(Value::Bool(m != *negated)),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = evaluate(expr, schema, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Func { name, args } => eval_scalar_function(name, args, schema, row),
        Expr::Case { whens, else_expr } => {
            for (cond, val) in whens {
                if evaluate(cond, schema, row)? == Value::Bool(true) {
                    return evaluate(val, schema, row);
                }
            }
            match else_expr {
                Some(e) => evaluate(e, schema, row),
                None => Ok(Value::Null),
            }
        }
    }
}

/// Evaluate a predicate expression; SQL semantics collapse NULL to false.
pub fn evaluate_predicate(expr: &Expr, schema: &Schema, row: &Row) -> Result<bool> {
    match evaluate(expr, schema, row)? {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(HanaError::Execution(format!(
            "predicate evaluated to non-boolean {other}"
        ))),
    }
}

/// Resolve a possibly-qualified column against a schema.
pub fn resolve_column(schema: &Schema, qualifier: Option<&str>, name: &str) -> Result<usize> {
    if let Some(q) = qualifier {
        let qualified = format!("{q}.{name}");
        if let Some(i) = schema.index_of(&qualified) {
            return Ok(i);
        }
    }
    if let Some(i) = schema.index_of(name) {
        return Ok(i);
    }
    // Fall back to a suffix match: `c` finds `t.c` if unambiguous.
    let suffix = format!(".{name}");
    let matches: Vec<usize> = schema
        .columns()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.name.ends_with(&suffix))
        .map(|(i, _)| i)
        .collect();
    match matches.as_slice() {
        [one] => Ok(*one),
        [] => Err(HanaError::Plan(format!(
            "unknown column '{}{name}' in schema {schema}",
            qualifier.map(|q| format!("{q}.")).unwrap_or_default()
        ))),
        _ => Err(HanaError::Plan(format!("ambiguous column '{name}'"))),
    }
}

fn tvl_and(l: &Value, r: &Value) -> Result<Value> {
    Ok(match (l.as_bool(), r.as_bool()) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    })
}

fn tvl_or(l: &Value, r: &Value) -> Result<Value> {
    Ok(match (l.as_bool(), r.as_bool()) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    })
}

fn apply_binop(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Add => l.add(r),
        BinOp::Sub => l.sub(r),
        BinOp::Mul => l.mul(r),
        BinOp::Div => l.div(r),
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let Some(ord) = l.sql_cmp(r) else {
                return Ok(Value::Null);
            };
            let b = match op {
                BinOp::Eq => ord == Equal,
                BinOp::Ne => ord != Equal,
                BinOp::Lt => ord == Less,
                BinOp::Le => ord != Greater,
                BinOp::Gt => ord == Greater,
                BinOp::Ge => ord != Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        BinOp::And | BinOp::Or => unreachable!("handled by evaluate"),
    }
}

/// Scalar (non-aggregate) SQL functions.
fn eval_scalar_function(name: &str, args: &[Expr], schema: &Schema, row: &Row) -> Result<Value> {
    let eval_arg = |i: usize| evaluate(&args[i], schema, row);
    let need = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(HanaError::Plan(format!(
                "{name} expects {n} argument(s), got {}",
                args.len()
            )))
        }
    };
    match name {
        "YEAR" => {
            need(1)?;
            Ok(match eval_arg(0)? {
                Value::Date(d) => Value::Int(d.year() as i64),
                Value::Null => Value::Null,
                other => return Err(HanaError::Execution(format!("YEAR of non-date {other}"))),
            })
        }
        "MONTH" => {
            need(1)?;
            Ok(match eval_arg(0)? {
                Value::Date(d) => Value::Int(d.month() as i64),
                Value::Null => Value::Null,
                other => return Err(HanaError::Execution(format!("MONTH of non-date {other}"))),
            })
        }
        "ADD_MONTHS" => {
            need(2)?;
            match (eval_arg(0)?, eval_arg(1)?) {
                (Value::Date(d), Value::Int(m)) => Ok(Value::Date(d.add_months(m as i32))),
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (a, b) => Err(HanaError::Execution(format!("ADD_MONTHS({a}, {b})"))),
            }
        }
        "ABS" => {
            need(1)?;
            Ok(match eval_arg(0)? {
                Value::Int(i) => Value::Int(i.abs()),
                Value::Double(d) => Value::Double(d.abs()),
                Value::Null => Value::Null,
                other => return Err(HanaError::Execution(format!("ABS of {other}"))),
            })
        }
        "UPPER" => {
            need(1)?;
            Ok(match eval_arg(0)? {
                Value::Varchar(s) => Value::Varchar(s.to_uppercase()),
                Value::Null => Value::Null,
                other => return Err(HanaError::Execution(format!("UPPER of {other}"))),
            })
        }
        "LOWER" => {
            need(1)?;
            Ok(match eval_arg(0)? {
                Value::Varchar(s) => Value::Varchar(s.to_lowercase()),
                Value::Null => Value::Null,
                other => return Err(HanaError::Execution(format!("LOWER of {other}"))),
            })
        }
        "LENGTH" => {
            need(1)?;
            Ok(match eval_arg(0)? {
                Value::Varchar(s) => Value::Int(s.chars().count() as i64),
                Value::Null => Value::Null,
                other => return Err(HanaError::Execution(format!("LENGTH of {other}"))),
            })
        }
        "SUBSTR" | "SUBSTRING" => {
            // SUBSTR(s, start[, len]) with 1-based start.
            if args.len() != 2 && args.len() != 3 {
                return Err(HanaError::Plan("SUBSTR expects 2 or 3 arguments".into()));
            }
            let s = match eval_arg(0)? {
                Value::Varchar(s) => s,
                Value::Null => return Ok(Value::Null),
                other => return Err(HanaError::Execution(format!("SUBSTR of {other}"))),
            };
            let start = eval_arg(1)?
                .as_i64()
                .ok_or_else(|| HanaError::Execution("SUBSTR start must be integer".into()))?
                .max(1) as usize;
            let chars: Vec<char> = s.chars().collect();
            let from = (start - 1).min(chars.len());
            let to = if args.len() == 3 {
                let len = eval_arg(2)?
                    .as_i64()
                    .ok_or_else(|| HanaError::Execution("SUBSTR len must be integer".into()))?
                    .max(0) as usize;
                (from + len).min(chars.len())
            } else {
                chars.len()
            };
            Ok(Value::Varchar(chars[from..to].iter().collect()))
        }
        "COALESCE" | "IFNULL" => {
            for a in args {
                let v = evaluate(a, schema, row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        other => Err(HanaError::Unsupported(format!(
            "unknown scalar function '{other}'"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use crate::Statement;
    use hana_types::{DataType, Date};

    fn schema() -> Schema {
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Varchar),
            ("ship", DataType::Date),
            ("disc", DataType::Double),
        ])
    }

    fn row() -> Row {
        Row::from_values([
            Value::Int(7),
            Value::from("PROMO BRUSHED"),
            Value::Date(Date::parse("1995-06-17").unwrap()),
            Value::Double(0.05),
        ])
    }

    /// Parse the WHERE clause of a probe query.
    fn where_expr(sql: &str) -> Expr {
        let Statement::Query(q) = parse_statement(&format!("SELECT * FROM t WHERE {sql}")).unwrap()
        else {
            panic!()
        };
        q.filter.unwrap()
    }

    fn check(pred: &str, expected: bool) {
        let e = where_expr(pred);
        assert_eq!(
            evaluate_predicate(&e, &schema(), &row()).unwrap(),
            expected,
            "{pred}"
        );
    }

    #[test]
    fn predicates() {
        check("id = 7", true);
        check("id <> 7", false);
        check("id + 1 >= 8", true);
        check("name LIKE 'PROMO%'", true);
        check("name NOT LIKE '%X%'", true);
        check("ship BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'", true);
        check("id IN (1, 2, 7)", true);
        check("id NOT IN (1, 2)", true);
        check("disc IS NULL", false);
        check("disc IS NOT NULL", true);
        check("id = 7 AND disc < 0.01", false);
        check("id = 7 OR disc < 0.01", true);
        check("NOT id = 7", false);
    }

    #[test]
    fn three_valued_logic() {
        let s = Schema::of(&[("x", DataType::Int)]);
        let null_row = Row::from_values([Value::Null]);
        // NULL comparisons are not true.
        for pred in [
            "x = 1",
            "x <> 1",
            "x IN (1)",
            "x BETWEEN 1 AND 2",
            "x LIKE 'a'",
        ] {
            let e = where_expr(pred);
            assert!(!evaluate_predicate(&e, &s, &null_row).unwrap(), "{pred}");
        }
        // ... but OR TRUE short-circuits.
        let e = where_expr("x = 1 OR 1 = 1");
        assert!(evaluate_predicate(&e, &s, &null_row).unwrap());
        let e = where_expr("x = 1 AND 1 = 1");
        assert!(!evaluate_predicate(&e, &s, &null_row).unwrap());
    }

    #[test]
    fn scalar_functions() {
        let sch = schema();
        let r = row();
        let eval = |src: &str| {
            let Statement::Query(q) = parse_statement(&format!("SELECT {src}")).unwrap() else {
                panic!()
            };
            evaluate(&q.select[0].expr, &sch, &r).unwrap()
        };
        assert_eq!(eval("YEAR(ship)"), Value::Int(1995));
        assert_eq!(eval("MONTH(ship)"), Value::Int(6));
        assert_eq!(eval("UPPER('ab')"), Value::from("AB"));
        assert_eq!(eval("LENGTH(name)"), Value::Int(13));
        assert_eq!(eval("SUBSTR(name, 1, 5)"), Value::from("PROMO"));
        assert_eq!(eval("SUBSTR(name, 7)"), Value::from("BRUSHED"));
        assert_eq!(eval("COALESCE(NULL, NULL, 3)"), Value::Int(3));
        assert_eq!(eval("ABS(0 - 4)"), Value::Int(4));
        assert_eq!(
            eval("ADD_MONTHS(DATE '1995-01-31', 1)"),
            Value::Date(Date::parse("1995-02-28").unwrap())
        );
        assert_eq!(
            eval("CASE WHEN 1 = 2 THEN 'a' WHEN 1 = 1 THEN 'b' ELSE 'c' END"),
            Value::from("b")
        );
        assert_eq!(eval("CASE WHEN 1 = 2 THEN 'a' END"), Value::Null);
    }

    #[test]
    fn qualified_and_suffix_resolution() {
        let s = Schema::of(&[("t.id", DataType::Int), ("u.id", DataType::Int)]);
        assert_eq!(resolve_column(&s, Some("t"), "id").unwrap(), 0);
        assert_eq!(resolve_column(&s, Some("u"), "id").unwrap(), 1);
        assert!(resolve_column(&s, None, "id").is_err(), "ambiguous");
        let s2 = Schema::of(&[("t.id", DataType::Int), ("u.other", DataType::Int)]);
        assert_eq!(resolve_column(&s2, None, "id").unwrap(), 0, "suffix match");
        assert!(resolve_column(&s2, None, "missing").is_err());
    }

    #[test]
    fn errors() {
        let e = where_expr("id = 7");
        let wrong = Schema::of(&[("other", DataType::Int)]);
        assert!(evaluate(&e, &wrong, &Row::from_values([Value::Int(1)])).is_err());
        let Statement::Query(q) = parse_statement("SELECT NOSUCHFN(1)").unwrap() else {
            panic!()
        };
        assert!(evaluate(&q.select[0].expr, &schema(), &row()).is_err());
    }
}
