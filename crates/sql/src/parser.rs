//! Recursive-descent parser for the SQL subset.

use hana_types::{Date, HanaError, Result, Value};

use crate::ast::*;
use crate::lexer::{tokenize, Symbol, Token};

/// Parse a single SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.eat_symbol(Symbol::Semicolon);
    p.expect_end()?;
    Ok(stmt)
}

/// Parse a script of `;`-separated statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let mut out = Vec::new();
    loop {
        while p.eat_symbol(Symbol::Semicolon) {}
        if p.at_end() {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` placeholders seen so far; assigns each its
    /// 0-based positional index in text order.
    params: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset)
    }

    fn advance(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(HanaError::Parse(format!(
            "{msg} (at token {} of {}: {:?})",
            self.pos,
            self.tokens.len(),
            self.peek()
        )))
    }

    fn expect_end(&self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            self.err("trailing input after statement")
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(&format!("expected keyword {kw}"))
        }
    }

    fn eat_symbol(&mut self, s: Symbol) -> bool {
        if self.peek() == Some(&Token::Symbol(s)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            self.err(&format!("expected {s:?}"))
        }
    }

    /// An identifier (bare or quoted), lower-cased.
    fn identifier(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s.to_ascii_lowercase()),
            Some(Token::QuotedIdent(s)) => Ok(s.to_ascii_lowercase()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err("expected identifier")
            }
        }
    }

    /// A dotted name like `db.schema.table`, lower-cased and re-joined.
    fn dotted_name(&mut self) -> Result<String> {
        let mut parts = vec![self.identifier()?];
        while self.eat_symbol(Symbol::Dot) {
            parts.push(self.identifier()?);
        }
        Ok(parts.join("."))
    }

    fn string_lit(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::StringLit(s)) => Ok(s.clone()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err("expected string literal")
            }
        }
    }

    // ---- statements ----

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_kw("create") {
            return self.create();
        }
        if self.eat_kw("drop") {
            if self.eat_kw("index") {
                let name = self.identifier()?;
                let table = if self.eat_kw("on") {
                    Some(self.dotted_name()?)
                } else {
                    None
                };
                return Ok(Statement::DropIndex { name, table });
            }
            if self.eat_kw("stream") {
                self.expect_kw("sink")?;
                let name = self.identifier()?;
                return Ok(Statement::DropStreamSink { name });
            }
            self.expect_kw("table")?;
            let name = self.dotted_name()?;
            return Ok(Statement::DropTable { name });
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("update") {
            return self.update();
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.dotted_name()?;
            let filter = if self.eat_kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, filter });
        }
        if self.peek_kw("select") {
            return Ok(Statement::Query(self.query()?));
        }
        if self.eat_kw("explain") {
            return Ok(Statement::Explain(self.query()?));
        }
        if self.eat_kw("begin") {
            return Ok(Statement::Begin);
        }
        if self.eat_kw("commit") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("rollback") {
            return Ok(Statement::Rollback);
        }
        if self.eat_kw("merge") {
            self.expect_kw("delta")?;
            self.expect_kw("of")?;
            let table = self.dotted_name()?;
            return Ok(Statement::MergeDelta { table });
        }
        self.err("unrecognized statement")
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("create")?;
        if self.eat_kw("remote") {
            self.expect_kw("source")?;
            return self.create_remote_source();
        }
        if self.eat_kw("virtual") {
            if self.eat_kw("table") {
                return self.create_virtual_table();
            }
            self.expect_kw("function")?;
            return self.create_virtual_function();
        }
        if self.eat_kw("index") {
            return self.create_index();
        }
        if self.eat_kw("stream") {
            self.expect_kw("sink")?;
            let name = self.identifier()?;
            self.expect_kw("on")?;
            let source = self.dotted_name()?;
            self.expect_kw("into")?;
            let table = self.dotted_name()?;
            return Ok(Statement::CreateStreamSink {
                name,
                source,
                table,
            });
        }
        let kind = if self.eat_kw("column") {
            TableKind::Column
        } else if self.eat_kw("row") {
            TableKind::Row
        } else {
            TableKind::Column
        };
        self.expect_kw("table")?;
        self.create_table(kind)
    }

    fn create_index(&mut self) -> Result<Statement> {
        let name = self.identifier()?;
        self.expect_kw("on")?;
        let table = self.dotted_name()?;
        self.expect_symbol(Symbol::LParen)?;
        let mut columns = vec![self.identifier()?];
        while self.eat_symbol(Symbol::Comma) {
            columns.push(self.identifier()?);
        }
        self.expect_symbol(Symbol::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            columns,
        })
    }

    fn create_table(&mut self, kind: TableKind) -> Result<Statement> {
        let name = self.dotted_name()?;
        self.expect_symbol(Symbol::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.identifier()?;
            let type_name = self.type_name()?;
            let mut not_null = false;
            let mut primary_key = false;
            loop {
                if self.eat_kw("not") {
                    self.expect_kw("null")?;
                    not_null = true;
                } else if self.eat_kw("primary") {
                    self.expect_kw("key")?;
                    primary_key = true;
                } else {
                    break;
                }
            }
            columns.push(ColumnSpec {
                name: col_name,
                type_name,
                not_null,
                primary_key,
            });
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_symbol(Symbol::RParen)?;
        let extended = if self.eat_kw("using") {
            let hybrid = self.eat_kw("hybrid");
            self.expect_kw("extended")?;
            self.expect_kw("storage")?;
            let aging_column = if self.eat_kw("aging") {
                self.expect_kw("on")?;
                Some(self.identifier()?)
            } else {
                None
            };
            Some(ExtendedSpec {
                hybrid,
                aging_column,
            })
        } else {
            None
        };
        let partition = self.partition_clause()?;
        if let Some(p) = &partition {
            if !columns.iter().any(|c| c.name == p.column()) {
                return Err(HanaError::Parse(format!(
                    "unknown partitioning column '{}'",
                    p.column()
                )));
            }
        }
        Ok(Statement::CreateTable(CreateTable {
            name,
            kind,
            columns,
            extended,
            partition,
        }))
    }

    /// `PARTITION BY HASH(col) PARTITIONS n` or
    /// `PARTITION BY RANGE(col) SPLIT AT (v1, v2, …)`.
    fn partition_clause(&mut self) -> Result<Option<PartitionBy>> {
        if !self.eat_kw("partition") {
            return Ok(None);
        }
        self.expect_kw("by")?;
        if self.eat_kw("hash") {
            self.expect_symbol(Symbol::LParen)?;
            let column = self.identifier()?;
            self.expect_symbol(Symbol::RParen)?;
            self.expect_kw("partitions")?;
            let partitions = self.usize_lit()?;
            if partitions == 0 {
                return self.err("PARTITIONS must be at least 1");
            }
            return Ok(Some(PartitionBy::Hash { column, partitions }));
        }
        if self.eat_kw("range") {
            self.expect_symbol(Symbol::LParen)?;
            let column = self.identifier()?;
            self.expect_symbol(Symbol::RParen)?;
            self.expect_kw("split")?;
            self.expect_kw("at")?;
            self.expect_symbol(Symbol::LParen)?;
            let mut split_points = Vec::new();
            loop {
                split_points.push(self.literal_value()?);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            if split_points.windows(2).any(|w| w[0] >= w[1]) {
                return self.err("RANGE split points must be strictly ascending");
            }
            return Ok(Some(PartitionBy::Range {
                column,
                split_points,
            }));
        }
        self.err("expected HASH or RANGE after PARTITION BY")
    }

    /// A bare literal (numeric, string or DATE '…') for DDL positions
    /// such as RANGE split points.
    fn literal_value(&mut self) -> Result<Value> {
        match self.primary()? {
            Expr::Literal(v) => Ok(v),
            _ => self.err("expected literal value"),
        }
    }

    /// A type name, absorbing a parenthesized length like `VARCHAR(30)`
    /// or `DECIMAL(15,2)`.
    fn type_name(&mut self) -> Result<String> {
        let mut name = self.identifier()?;
        if self.eat_symbol(Symbol::LParen) {
            name.push('(');
            loop {
                match self.advance() {
                    Some(Token::Number(n)) => name.push_str(n),
                    Some(Token::Symbol(Symbol::Comma)) => name.push(','),
                    Some(Token::Symbol(Symbol::RParen)) => {
                        name.push(')');
                        break;
                    }
                    _ => return self.err("malformed type length"),
                }
            }
        }
        Ok(name)
    }

    fn create_remote_source(&mut self) -> Result<Statement> {
        let name = self.identifier()?;
        self.expect_kw("adapter")?;
        let adapter = match self.advance() {
            Some(Token::QuotedIdent(s)) | Some(Token::StringLit(s)) => s.clone(),
            Some(Token::Ident(s)) => s.to_ascii_lowercase(),
            _ => return self.err("expected adapter name"),
        };
        self.expect_kw("configuration")?;
        let configuration = self.string_lit()?;
        let (mut credential_type, mut credentials) = (None, None);
        if self.eat_kw("with") {
            self.expect_kw("credential")?;
            self.expect_kw("type")?;
            credential_type = Some(self.string_lit()?);
            self.expect_kw("using")?;
            credentials = Some(self.string_lit()?);
        }
        Ok(Statement::CreateRemoteSource {
            name,
            adapter,
            configuration,
            credential_type,
            credentials,
        })
    }

    fn create_virtual_table(&mut self) -> Result<Statement> {
        let name = self.dotted_name()?;
        self.expect_kw("at")?;
        let mut remote_path = vec![self.identifier()?];
        while self.eat_symbol(Symbol::Dot) {
            remote_path.push(self.identifier()?);
        }
        Ok(Statement::CreateVirtualTable { name, remote_path })
    }

    fn create_virtual_function(&mut self) -> Result<Statement> {
        let name = self.identifier()?;
        self.expect_symbol(Symbol::LParen)?;
        self.expect_symbol(Symbol::RParen)?;
        self.expect_kw("returns")?;
        self.expect_kw("table")?;
        self.expect_symbol(Symbol::LParen)?;
        let mut returns = Vec::new();
        loop {
            let col = self.identifier()?;
            let ty = self.type_name()?;
            returns.push((col, ty));
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_symbol(Symbol::RParen)?;
        self.expect_kw("configuration")?;
        let configuration = self.string_lit()?;
        self.expect_kw("at")?;
        let source = self.identifier()?;
        Ok(Statement::CreateVirtualFunction {
            name,
            returns,
            configuration,
            source,
        })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.dotted_name()?;
        let columns = if self.peek() == Some(&Token::Symbol(Symbol::LParen)) {
            self.expect_symbol(Symbol::LParen)?;
            let mut cols = vec![self.identifier()?];
            while self.eat_symbol(Symbol::Comma) {
                cols.push(self.identifier()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Symbol::LParen)?;
            let mut vals = vec![self.expr()?];
            while self.eat_symbol(Symbol::Comma) {
                vals.push(self.expr()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            rows.push(vals);
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.dotted_name()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_symbol(Symbol::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            filter,
        })
    }

    // ---- queries ----

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("select")?;
        let mut q = Query {
            distinct: self.eat_kw("distinct"),
            ..Query::default()
        };
        if self.eat_kw("top") {
            q.limit = Some(self.usize_lit()?);
        }
        // Select list.
        if self.eat_symbol(Symbol::Star) {
            q.select = Vec::new(); // empty = *
        } else {
            loop {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as")
                    || matches!(self.peek(), Some(Token::Ident(s)) if !is_reserved(s))
                {
                    Some(self.identifier()?)
                } else {
                    None
                };
                q.select.push(SelectItem { expr, alias });
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("from") {
            q.from = Some(self.table_ref()?);
            loop {
                if self.eat_symbol(Symbol::Comma) {
                    // Comma join: cross join, conditions live in WHERE.
                    let table = self.table_ref()?;
                    q.joins.push(JoinClause {
                        kind: JoinKind::Inner,
                        table,
                        on: Expr::lit(true),
                    });
                    continue;
                }
                let kind = if self.eat_kw("inner") {
                    self.expect_kw("join")?;
                    JoinKind::Inner
                } else if self.eat_kw("left") {
                    self.eat_kw("outer");
                    self.expect_kw("join")?;
                    JoinKind::LeftOuter
                } else if self.eat_kw("join") {
                    JoinKind::Inner
                } else {
                    break;
                };
                let table = self.table_ref()?;
                self.expect_kw("on")?;
                let on = self.expr()?;
                q.joins.push(JoinClause { kind, table, on });
            }
        }
        if self.eat_kw("where") {
            q.filter = Some(self.expr()?);
        }
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            q.group_by.push(self.expr()?);
            while self.eat_symbol(Symbol::Comma) {
                q.group_by.push(self.expr()?);
            }
        }
        if self.eat_kw("having") {
            q.having = Some(self.expr()?);
        }
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                q.order_by.push((e, asc));
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("limit") {
            q.limit = Some(self.usize_lit()?);
        }
        if self.eat_kw("with") {
            self.expect_kw("hint")?;
            self.expect_symbol(Symbol::LParen)?;
            loop {
                q.hints.push(self.identifier()?.to_ascii_uppercase());
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
        }
        Ok(q)
    }

    fn usize_lit(&mut self) -> Result<usize> {
        match self.advance() {
            Some(Token::Number(n)) => n
                .parse()
                .map_err(|_| HanaError::Parse(format!("bad row count '{n}'"))),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err("expected row count")
            }
        }
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        if self.eat_symbol(Symbol::LParen) {
            let query = self.query()?;
            self.expect_symbol(Symbol::RParen)?;
            self.eat_kw("as");
            let alias = self.identifier()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.dotted_name()?;
        // Table function?
        if self.eat_symbol(Symbol::LParen) {
            let mut args = Vec::new();
            if self.peek() != Some(&Token::Symbol(Symbol::RParen)) {
                args.push(self.expr()?);
                while self.eat_symbol(Symbol::Comma) {
                    args.push(self.expr()?);
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            let alias = self.optional_alias()?;
            return Ok(TableRef::Function { name, args, alias });
        }
        let alias = self.optional_alias()?;
        Ok(TableRef::Named { name, alias })
    }

    fn optional_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            return Ok(Some(self.identifier()?));
        }
        match self.peek() {
            Some(Token::Ident(s)) if !is_reserved(s) => Ok(Some(self.identifier()?)),
            Some(Token::QuotedIdent(_)) => Ok(Some(self.identifier()?)),
            _ => Ok(None),
        }
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / BETWEEN / LIKE
        let negated = self.eat_kw("not");
        if self.eat_kw("in") {
            self.expect_symbol(Symbol::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat_symbol(Symbol::Comma) {
                list.push(self.expr()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("between") {
            let lo = self.additive()?;
            self.expect_kw("and")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if self.eat_kw("like") {
            let pattern = self.string_lit()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if negated {
            return self.err("expected IN, BETWEEN or LIKE after NOT");
        }
        let op = match self.peek() {
            Some(Token::Symbol(Symbol::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Symbol::Ne)) => Some(BinOp::Ne),
            Some(Token::Symbol(Symbol::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Symbol::Le)) => Some(BinOp::Le),
            Some(Token::Symbol(Symbol::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Symbol::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_symbol(Symbol::Plus) {
                BinOp::Add
            } else if self.eat_symbol(Symbol::Minus) {
                BinOp::Sub
            } else {
                break;
            };
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_symbol(Symbol::Star) {
                BinOp::Mul
            } else if self.eat_symbol(Symbol::Slash) {
                BinOp::Div
            } else {
                break;
            };
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(Symbol::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        // Parenthesized expression.
        if self.eat_symbol(Symbol::LParen) {
            let e = self.expr()?;
            self.expect_symbol(Symbol::RParen)?;
            return Ok(e);
        }
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.pos += 1;
                let v = if n.contains('.') {
                    Value::Double(
                        n.parse()
                            .map_err(|_| HanaError::Parse(format!("bad numeric literal '{n}'")))?,
                    )
                } else {
                    Value::Int(
                        n.parse()
                            .map_err(|_| HanaError::Parse(format!("bad numeric literal '{n}'")))?,
                    )
                };
                Ok(Expr::Literal(v))
            }
            Some(Token::StringLit(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Varchar(s)))
            }
            Some(Token::Symbol(Symbol::Star)) => {
                self.pos += 1;
                Ok(Expr::Wildcard)
            }
            Some(Token::Symbol(Symbol::Question)) => {
                self.pos += 1;
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Parameter(idx))
            }
            Some(Token::Ident(word)) if word.eq_ignore_ascii_case("date") => {
                // DATE 'YYYY-MM-DD'
                if matches!(self.peek_at(1), Some(Token::StringLit(_))) {
                    self.pos += 1;
                    let s = self.string_lit()?;
                    return Ok(Expr::Literal(Value::Date(Date::parse(&s)?)));
                }
                self.ident_expr()
            }
            Some(Token::Ident(word)) if word.eq_ignore_ascii_case("null") => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null))
            }
            Some(Token::Ident(word)) if word.eq_ignore_ascii_case("true") => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Some(Token::Ident(word)) if word.eq_ignore_ascii_case("false") => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Some(Token::Ident(word)) if word.eq_ignore_ascii_case("case") => self.case_expr(),
            Some(Token::Ident(word)) if is_reserved(&word) => {
                self.err("reserved word in expression position")
            }
            Some(Token::Ident(_)) | Some(Token::QuotedIdent(_)) => self.ident_expr(),
            _ => self.err("expected expression"),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        self.expect_kw("case")?;
        let mut whens = Vec::new();
        while self.eat_kw("when") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let val = self.expr()?;
            whens.push((cond, val));
        }
        if whens.is_empty() {
            return self.err("CASE requires at least one WHEN arm");
        }
        let else_expr = if self.eat_kw("else") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(Expr::Case { whens, else_expr })
    }

    /// Column reference (possibly qualified) or function call.
    fn ident_expr(&mut self) -> Result<Expr> {
        let first = self.identifier()?;
        // Function call?
        if self.peek() == Some(&Token::Symbol(Symbol::LParen)) {
            self.pos += 1;
            let mut args = Vec::new();
            if self.eat_symbol(Symbol::Star) {
                args.push(Expr::Wildcard);
            } else if self.peek() != Some(&Token::Symbol(Symbol::RParen)) {
                self.eat_kw("distinct"); // tolerated, treated as plain
                args.push(self.expr()?);
                while self.eat_symbol(Symbol::Comma) {
                    args.push(self.expr()?);
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::Func {
                name: first.to_ascii_uppercase(),
                args,
            });
        }
        // Qualified column?
        if self.eat_symbol(Symbol::Dot) {
            let name = self.identifier()?;
            return Ok(Expr::Column {
                qualifier: Some(first),
                name,
            });
        }
        Ok(Expr::Column {
            qualifier: None,
            name: first,
        })
    }
}

/// Words that terminate an implicit alias position.
fn is_reserved(word: &str) -> bool {
    const RESERVED: &[&str] = &[
        "select", "from", "where", "group", "having", "order", "limit", "with", "join", "inner",
        "left", "right", "outer", "on", "as", "and", "or", "not", "in", "between", "like", "is",
        "null", "asc", "desc", "union", "case", "when", "then", "else", "end", "values", "set",
        "top", "distinct", "using",
    ];
    RESERVED.iter().any(|r| word.eq_ignore_ascii_case(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_extended_table() {
        let s = parse_statement(
            "CREATE TABLE sales (id INTEGER NOT NULL PRIMARY KEY, amount DECIMAL(15,2)) \
             USING HYBRID EXTENDED STORAGE AGING ON is_cold",
        )
        .unwrap();
        let Statement::CreateTable(ct) = s else {
            panic!("wrong statement kind");
        };
        assert_eq!(ct.name, "sales");
        assert_eq!(ct.kind, TableKind::Column);
        assert_eq!(ct.columns.len(), 2);
        assert!(ct.columns[0].not_null && ct.columns[0].primary_key);
        assert_eq!(ct.columns[1].type_name, "decimal(15,2)");
        let ext = ct.extended.unwrap();
        assert!(ext.hybrid);
        assert_eq!(ext.aging_column.as_deref(), Some("is_cold"));
    }

    #[test]
    fn parse_create_and_drop_stream_sink() {
        let s =
            parse_statement("CREATE STREAM SINK feed ON cell_health INTO Health_Table").unwrap();
        assert_eq!(
            s,
            Statement::CreateStreamSink {
                name: "feed".into(),
                source: "cell_health".into(),
                table: "health_table".into(),
            }
        );
        let s = parse_statement("DROP STREAM SINK Feed").unwrap();
        assert_eq!(
            s,
            Statement::DropStreamSink {
                name: "feed".into()
            }
        );
        assert!(parse_statement("CREATE STREAM SINK f ON w").is_err());
        assert!(parse_statement("DROP STREAM f").is_err());
    }

    #[test]
    fn parse_create_row_table_plain() {
        let s = parse_statement("CREATE ROW TABLE t (a INT)").unwrap();
        let Statement::CreateTable(ct) = s else {
            panic!()
        };
        assert_eq!(ct.kind, TableKind::Row);
        assert!(ct.extended.is_none());
    }

    #[test]
    fn parse_create_and_drop_index() {
        let s = parse_statement("CREATE INDEX ix_k ON Sales (Region, K)").unwrap();
        assert_eq!(
            s,
            Statement::CreateIndex {
                name: "ix_k".into(),
                table: "sales".into(),
                columns: vec!["region".into(), "k".into()],
            }
        );
        let s = parse_statement("DROP INDEX ix_k ON sales").unwrap();
        assert_eq!(
            s,
            Statement::DropIndex {
                name: "ix_k".into(),
                table: Some("sales".into()),
            }
        );
        let s = parse_statement("DROP INDEX ix_k").unwrap();
        assert_eq!(
            s,
            Statement::DropIndex {
                name: "ix_k".into(),
                table: None,
            }
        );
        // Empty column lists and missing ON clauses are syntax errors.
        assert!(parse_statement("CREATE INDEX ix ON t ()").is_err());
        assert!(parse_statement("CREATE INDEX ix (a)").is_err());
    }

    #[test]
    fn parse_partition_by_hash() {
        let s = parse_statement(
            "CREATE COLUMN TABLE orders (o_id INTEGER, o_ckey INTEGER) \
             PARTITION BY HASH(o_ckey) PARTITIONS 4",
        )
        .unwrap();
        let Statement::CreateTable(ct) = s else {
            panic!("wrong statement kind");
        };
        assert_eq!(
            ct.partition,
            Some(PartitionBy::Hash {
                column: "o_ckey".into(),
                partitions: 4,
            })
        );
    }

    #[test]
    fn parse_partition_by_range() {
        let s = parse_statement(
            "CREATE TABLE events (ts INTEGER, payload VARCHAR(64)) \
             PARTITION BY RANGE(ts) SPLIT AT (100, 200, 300)",
        )
        .unwrap();
        let Statement::CreateTable(ct) = s else {
            panic!("wrong statement kind");
        };
        let part = ct.partition.unwrap();
        assert_eq!(part.column(), "ts");
        assert_eq!(part.partitions(), 4);
        assert_eq!(
            part,
            PartitionBy::Range {
                column: "ts".into(),
                split_points: vec![Value::Int(100), Value::Int(200), Value::Int(300)],
            }
        );
    }

    #[test]
    fn partition_clause_errors() {
        // Zero partitions.
        assert!(
            parse_statement("CREATE TABLE t (a INT) PARTITION BY HASH(a) PARTITIONS 0").is_err()
        );
        // Partitioning column not among the declared columns.
        assert!(
            parse_statement("CREATE TABLE t (a INT) PARTITION BY HASH(missing) PARTITIONS 2")
                .is_err()
        );
        assert!(
            parse_statement("CREATE TABLE t (a INT) PARTITION BY RANGE(nope) SPLIT AT (10)")
                .is_err()
        );
        // Unknown scheme.
        assert!(
            parse_statement("CREATE TABLE t (a INT) PARTITION BY ROUND_ROBIN(a) PARTITIONS 2")
                .is_err()
        );
        // Split points must ascend strictly.
        assert!(parse_statement(
            "CREATE TABLE t (a INT) PARTITION BY RANGE(a) SPLIT AT (10, 10, 20)"
        )
        .is_err());
    }

    #[test]
    fn parse_remote_source_like_paper() {
        // Verbatim (modulo whitespace) from §4.2 of the paper.
        let s = parse_statement(
            "CREATE REMOTE SOURCE HIVE1 ADAPTER \"hiveodbc\" CONFIGURATION 'DSN=hive1' \
             WITH CREDENTIAL TYPE 'PASSWORD' USING 'user=dfuser;password=dfpass'",
        )
        .unwrap();
        assert_eq!(
            s,
            Statement::CreateRemoteSource {
                name: "hive1".into(),
                adapter: "hiveodbc".into(),
                configuration: "DSN=hive1".into(),
                credential_type: Some("PASSWORD".into()),
                credentials: Some("user=dfuser;password=dfpass".into()),
            }
        );
    }

    #[test]
    fn parse_virtual_table_and_query() {
        let stmts = parse_script(
            "CREATE VIRTUAL TABLE \"VIRTUAL_PRODUCT\" AT \"HIVE1\".\"dflo\".\"dflo\".\"product\";\n\
             SELECT product_name, brand_name FROM \"VIRTUAL_PRODUCT\";",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
        assert_eq!(
            stmts[0],
            Statement::CreateVirtualTable {
                name: "virtual_product".into(),
                remote_path: vec![
                    "hive1".into(),
                    "dflo".into(),
                    "dflo".into(),
                    "product".into()
                ],
            }
        );
    }

    #[test]
    fn parse_virtual_function_like_paper() {
        let s = parse_statement(
            "CREATE VIRTUAL FUNCTION PLANT100_SENSOR_RECORDS() \
             RETURNS TABLE (EQUIP_ID VARCHAR(30), PRESSURE DOUBLE) \
             CONFIGURATION 'hana.mapred.driver.class=com.customer.hadoop.SensorMRDriver' \
             AT MRSERVER",
        )
        .unwrap();
        let Statement::CreateVirtualFunction {
            name,
            returns,
            source,
            ..
        } = s
        else {
            panic!()
        };
        assert_eq!(name, "plant100_sensor_records");
        assert_eq!(returns.len(), 2);
        assert_eq!(
            returns[0],
            ("equip_id".to_string(), "varchar(30)".to_string())
        );
        assert_eq!(source, "mrserver");
    }

    #[test]
    fn parse_paper_join_query_with_hint() {
        let s = parse_statement(
            "SELECT c_custkey, c_name, o_orderkey, o_orderstatus \
             FROM customer JOIN orders ON c_custkey = o_custkey \
             WHERE c_mktsegment = 'HOUSEHOLD' WITH HINT (USE_REMOTE_CACHE)",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert_eq!(q.select.len(), 4);
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.hints, vec!["USE_REMOTE_CACHE".to_string()]);
        assert!(q.filter.is_some());
    }

    #[test]
    fn parse_table_function_in_from() {
        let s = parse_statement(
            "SELECT A.EQUIP_ID, B.PRESSURE FROM EQUIPMENTS A \
             JOIN PLANT100_SENSOR_RECORDS() B ON A.EQUIP_ID = B.EQUIP_ID \
             WHERE B.PRESSURE > 90",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert!(matches!(
            &q.joins[0].table,
            TableRef::Function { name, alias, .. }
                if name == "plant100_sensor_records" && alias.as_deref() == Some("b")
        ));
    }

    #[test]
    fn parse_aggregates_group_order() {
        let s = parse_statement(
            "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, \
             AVG(l_extendedprice), COUNT(*) \
             FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
             GROUP BY l_returnflag, l_linestatus \
             HAVING COUNT(*) > 10 \
             ORDER BY l_returnflag, l_linestatus DESC LIMIT 5",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert_eq!(q.group_by.len(), 2);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[1].1, "second key is DESC");
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.select[2].alias.as_deref(), Some("sum_qty"));
        assert!(q.select[2].expr.contains_aggregate());
    }

    #[test]
    fn parse_case_and_arithmetic_precedence() {
        let s = parse_statement(
            "SELECT SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice * (1 - l_discount) \
             ELSE 0 END) FROM lineitem",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert_eq!(q.select.len(), 1);
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let s2 = parse_statement("SELECT 1 + 2 * 3").unwrap();
        let Statement::Query(q2) = s2 else { panic!() };
        let Expr::Binary { op, right, .. } = &q2.select[0].expr else {
            panic!()
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parse_in_between_not() {
        let s = parse_statement(
            "SELECT * FROM t WHERE a IN (1, 2, 3) AND b NOT BETWEEN 1 AND 5 \
             AND c IS NOT NULL AND NOT d LIKE 'x%'",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        let conj = q.filter.as_ref().unwrap().conjuncts().len();
        assert_eq!(conj, 4);
    }

    #[test]
    fn parse_dml() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").unwrap();
        let Statement::Insert { rows, columns, .. } = s else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(columns.unwrap(), vec!["a".to_string(), "b".to_string()]);

        let s = parse_statement("UPDATE t SET a = a + 1 WHERE b = 2").unwrap();
        assert!(matches!(s, Statement::Update { .. }));

        let s = parse_statement("DELETE FROM t WHERE a < 0").unwrap();
        assert!(matches!(s, Statement::Delete { .. }));
    }

    #[test]
    fn parse_subquery_in_from() {
        let s = parse_statement(
            "SELECT x.total FROM (SELECT SUM(a) AS total FROM t GROUP BY b) x WHERE x.total > 5",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert!(matches!(
            q.from,
            Some(TableRef::Subquery { ref alias, .. }) if alias == "x"
        ));
    }

    #[test]
    fn parse_txn_and_admin() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("COMMIT;").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ROLLBACK").unwrap(), Statement::Rollback);
        assert_eq!(
            parse_statement("MERGE DELTA OF sales").unwrap(),
            Statement::MergeDelta {
                table: "sales".into()
            }
        );
        assert!(matches!(
            parse_statement("EXPLAIN SELECT * FROM t").unwrap(),
            Statement::Explain(_)
        ));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_statement("SELEC 1").is_err());
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("SELECT 1 garbage garbage garbage FROM").is_err());
        assert!(parse_statement("CREATE TABLE t ()").is_err());
        assert!(parse_statement("SELECT CASE END FROM t").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE a NOT 5").is_err());
    }

    #[test]
    fn comma_joins_become_cross_joins() {
        let s = parse_statement("SELECT * FROM a, b, c WHERE a.x = b.x AND b.y = c.y").unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.joins[0].on, Expr::lit(true));
    }
}
