//! Positional-parameter binding for prepared statements.
//!
//! A statement parsed from text with `?` placeholders carries
//! [`Expr::Parameter`] nodes, indexed 0-based in text order. Before
//! planning or execution the session layer substitutes literals with
//! [`Statement::bind_params`]; the rewrite is a deep copy, so one parsed
//! template serves any number of executions with different values.

use hana_types::{HanaError, Result, Value};

use crate::ast::{Expr, Query, SelectItem, Statement, TableRef};

impl Statement {
    /// Number of positional parameters the statement declares (the
    /// highest `?` index + 1; placeholders are numbered contiguously by
    /// the parser).
    pub fn param_count(&self) -> usize {
        let mut max: Option<usize> = None;
        self.walk_exprs(&mut |e| {
            if let Expr::Parameter(i) = e {
                max = Some(max.map_or(*i, |m: usize| m.max(*i)));
            }
        });
        max.map_or(0, |m| m + 1)
    }

    /// Visit every expression in the statement (including inside
    /// subqueries), depth-first.
    pub fn walk_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        match self {
            Statement::Query(q) | Statement::Explain(q) => walk_query(q, f),
            Statement::Insert { rows, .. } => {
                for row in rows {
                    for e in row {
                        e.walk(f);
                    }
                }
            }
            Statement::Update {
                assignments,
                filter,
                ..
            } => {
                for (_, e) in assignments {
                    e.walk(f);
                }
                if let Some(e) = filter {
                    e.walk(f);
                }
            }
            Statement::Delete {
                filter: Some(e), ..
            } => e.walk(f),
            _ => {}
        }
    }

    /// Substitute every `?` placeholder with the literal at its index.
    /// Errors when the argument count does not match the placeholder
    /// count — a bind mismatch is a caller bug worth failing loudly on.
    pub fn bind_params(&self, params: &[Value]) -> Result<Statement> {
        let declared = self.param_count();
        if declared != params.len() {
            return Err(HanaError::Plan(format!(
                "statement declares {declared} parameter(s) but {} value(s) were bound",
                params.len()
            )));
        }
        Ok(match self {
            Statement::Query(q) => Statement::Query(bind_query(q, params)?),
            Statement::Explain(q) => Statement::Explain(bind_query(q, params)?),
            Statement::Insert {
                table,
                columns,
                rows,
            } => Statement::Insert {
                table: table.clone(),
                columns: columns.clone(),
                rows: rows
                    .iter()
                    .map(|row| row.iter().map(|e| bind_expr(e, params)).collect())
                    .collect::<Result<_>>()?,
            },
            Statement::Update {
                table,
                assignments,
                filter,
            } => Statement::Update {
                table: table.clone(),
                assignments: assignments
                    .iter()
                    .map(|(c, e)| Ok((c.clone(), bind_expr(e, params)?)))
                    .collect::<Result<_>>()?,
                filter: filter.as_ref().map(|e| bind_expr(e, params)).transpose()?,
            },
            Statement::Delete { table, filter } => Statement::Delete {
                table: table.clone(),
                filter: filter.as_ref().map(|e| bind_expr(e, params)).transpose()?,
            },
            other => other.clone(),
        })
    }
}

fn walk_query<'a>(q: &'a Query, f: &mut impl FnMut(&'a Expr)) {
    for item in &q.select {
        item.expr.walk(f);
    }
    if let Some(from) = &q.from {
        walk_table_ref(from, f);
    }
    for j in &q.joins {
        walk_table_ref(&j.table, f);
        j.on.walk(f);
    }
    if let Some(e) = &q.filter {
        e.walk(f);
    }
    for e in &q.group_by {
        e.walk(f);
    }
    if let Some(e) = &q.having {
        e.walk(f);
    }
    for (e, _) in &q.order_by {
        e.walk(f);
    }
}

fn walk_table_ref<'a>(t: &'a TableRef, f: &mut impl FnMut(&'a Expr)) {
    match t {
        TableRef::Named { .. } => {}
        TableRef::Function { args, .. } => {
            for a in args {
                a.walk(f);
            }
        }
        TableRef::Subquery { query, .. } => walk_query(query, f),
    }
}

fn bind_query(q: &Query, params: &[Value]) -> Result<Query> {
    Ok(Query {
        distinct: q.distinct,
        select: q
            .select
            .iter()
            .map(|item| {
                Ok(SelectItem {
                    expr: bind_expr(&item.expr, params)?,
                    alias: item.alias.clone(),
                })
            })
            .collect::<Result<_>>()?,
        from: q
            .from
            .as_ref()
            .map(|t| bind_table_ref(t, params))
            .transpose()?,
        joins: q
            .joins
            .iter()
            .map(|j| {
                Ok(crate::ast::JoinClause {
                    kind: j.kind,
                    table: bind_table_ref(&j.table, params)?,
                    on: bind_expr(&j.on, params)?,
                })
            })
            .collect::<Result<_>>()?,
        filter: q
            .filter
            .as_ref()
            .map(|e| bind_expr(e, params))
            .transpose()?,
        group_by: q
            .group_by
            .iter()
            .map(|e| bind_expr(e, params))
            .collect::<Result<_>>()?,
        having: q
            .having
            .as_ref()
            .map(|e| bind_expr(e, params))
            .transpose()?,
        order_by: q
            .order_by
            .iter()
            .map(|(e, asc)| Ok((bind_expr(e, params)?, *asc)))
            .collect::<Result<_>>()?,
        limit: q.limit,
        hints: q.hints.clone(),
    })
}

fn bind_table_ref(t: &TableRef, params: &[Value]) -> Result<TableRef> {
    Ok(match t {
        TableRef::Named { .. } => t.clone(),
        TableRef::Function { name, args, alias } => TableRef::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| bind_expr(a, params))
                .collect::<Result<_>>()?,
            alias: alias.clone(),
        },
        TableRef::Subquery { query, alias } => TableRef::Subquery {
            query: Box::new(bind_query(query, params)?),
            alias: alias.clone(),
        },
    })
}

fn bind_expr(e: &Expr, params: &[Value]) -> Result<Expr> {
    Ok(match e {
        Expr::Parameter(i) => {
            let v = params.get(*i).ok_or_else(|| {
                HanaError::Plan(format!("no value bound for parameter {}", i + 1))
            })?;
            Expr::Literal(v.clone())
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::Wildcard => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(bind_expr(expr, params)?),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(bind_expr(left, params)?),
            op: *op,
            right: Box::new(bind_expr(right, params)?),
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(bind_expr(expr, params)?),
            list: list
                .iter()
                .map(|e| bind_expr(e, params))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(bind_expr(expr, params)?),
            lo: Box::new(bind_expr(lo, params)?),
            hi: Box::new(bind_expr(hi, params)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(bind_expr(expr, params)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(bind_expr(expr, params)?),
            negated: *negated,
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| bind_expr(a, params))
                .collect::<Result<_>>()?,
        },
        Expr::Case { whens, else_expr } => Expr::Case {
            whens: whens
                .iter()
                .map(|(c, v)| Ok((bind_expr(c, params)?, bind_expr(v, params)?)))
                .collect::<Result<_>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(bind_expr(e, params)?)),
                None => None,
            },
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    #[test]
    fn counts_and_binds_query_params() {
        let stmt = parse_statement("SELECT v FROM t WHERE k = ? AND v BETWEEN ? AND ? ORDER BY v")
            .unwrap();
        assert_eq!(stmt.param_count(), 3);
        let bound = stmt
            .bind_params(&[Value::Int(7), Value::Int(1), Value::Int(9)])
            .unwrap();
        assert_eq!(bound.param_count(), 0, "no placeholders survive binding");
        let expected =
            parse_statement("SELECT v FROM t WHERE k = 7 AND v BETWEEN 1 AND 9 ORDER BY v")
                .unwrap();
        assert_eq!(bound, expected);
    }

    #[test]
    fn binds_dml_params() {
        let ins = parse_statement("INSERT INTO t (k, v) VALUES (?, ?)").unwrap();
        assert_eq!(ins.param_count(), 2);
        let bound = ins.bind_params(&[Value::Int(1), Value::from("x")]).unwrap();
        assert_eq!(
            bound,
            parse_statement("INSERT INTO t (k, v) VALUES (1, 'x')").unwrap()
        );

        let upd = parse_statement("UPDATE t SET v = ? WHERE k = ?").unwrap();
        let bound = upd.bind_params(&[Value::Int(5), Value::Int(2)]).unwrap();
        assert_eq!(
            bound,
            parse_statement("UPDATE t SET v = 5 WHERE k = 2").unwrap()
        );

        let del = parse_statement("DELETE FROM t WHERE k IN (?, ?)").unwrap();
        let bound = del.bind_params(&[Value::Int(1), Value::Int(2)]).unwrap();
        assert_eq!(
            bound,
            parse_statement("DELETE FROM t WHERE k IN (1, 2)").unwrap()
        );
    }

    #[test]
    fn binds_inside_subqueries() {
        let stmt = parse_statement(
            "SELECT x.total FROM (SELECT SUM(v) AS total FROM t WHERE k > ?) x WHERE x.total < ?",
        )
        .unwrap();
        assert_eq!(stmt.param_count(), 2);
        let bound = stmt.bind_params(&[Value::Int(3), Value::Int(100)]).unwrap();
        assert_eq!(
            bound,
            parse_statement(
                "SELECT x.total FROM (SELECT SUM(v) AS total FROM t WHERE k > 3) x \
                 WHERE x.total < 100",
            )
            .unwrap()
        );
    }

    #[test]
    fn bind_arity_mismatch_errors() {
        let stmt = parse_statement("SELECT v FROM t WHERE k = ?").unwrap();
        assert!(stmt.bind_params(&[]).is_err());
        assert!(stmt.bind_params(&[Value::Int(1), Value::Int(2)]).is_err());
        // Statements without parameters accept an empty bind.
        let plain = parse_statement("SELECT v FROM t").unwrap();
        assert_eq!(plain.bind_params(&[]).unwrap(), plain);
    }
}
