//! # hana-sql
//!
//! Lexer, AST and recursive-descent parser for the SQL subset the paper
//! exercises: column/row table DDL with `USING [HYBRID] EXTENDED
//! STORAGE` (§3.1), `CREATE REMOTE SOURCE` / `CREATE VIRTUAL TABLE` /
//! `CREATE VIRTUAL FUNCTION` for Smart Data Access (§4.2–4.3), DML,
//! transactions, and `SELECT` with joins, grouping, ordering, CASE
//! expressions and optimizer hints such as `WITH HINT
//! (USE_REMOTE_CACHE)` (§4.4).
//!
//! ```
//! use hana_sql::{parse_statement, Statement};
//!
//! let stmt = parse_statement(
//!     "SELECT c_name FROM customer WHERE c_mktsegment = 'HOUSEHOLD'",
//! ).unwrap();
//! assert!(matches!(stmt, Statement::Query(_)));
//! ```

mod ast;
mod bind;
mod eval;
pub mod finish;
mod lexer;
mod parser;
mod render;

pub use ast::{
    BinOp, ColumnSpec, CreateTable, Expr, ExtendedSpec, JoinClause, JoinKind, PartitionBy, Query,
    SelectItem, Statement, TableKind, TableRef, UnaryOp,
};
pub use eval::{evaluate, evaluate_predicate, resolve_column};
pub use lexer::{tokenize, Symbol, Token};
pub use parser::{parse_script, parse_statement};
