//! Driver-side result finishing, shared by engines.
//!
//! After an engine has materialized the heavy part of a query (scans,
//! joins, and an aggregation stage whose output uses the positional
//! `_g0.._gN, _a0.._aM` column convention), the *driver* still has to
//! apply HAVING, evaluate the final select list, deduplicate DISTINCT,
//! sort and limit. Hive's plan driver, the extended-storage adapter and
//! the federated executor all share this code.

use hana_types::{AggFunc, ColumnDef, DataType, HanaError, Result, Row, Schema, Value};

use crate::ast::{BinOp, Expr, Query};
use crate::eval::{evaluate, evaluate_predicate, resolve_column};

/// All aggregate calls in the query (select list, HAVING, ORDER BY), in
/// deterministic first-seen order. `COUNT(*)` normalizes to
/// [`AggFunc::CountStar`] with no argument.
pub fn collect_aggregates(q: &Query) -> Vec<(AggFunc, Option<Expr>)> {
    let mut out: Vec<(AggFunc, Option<Expr>)> = Vec::new();
    let mut push = |e: &Expr| {
        e.walk(&mut |n| {
            if let Some(key) = as_aggregate(n) {
                if !out.contains(&key) {
                    out.push(key);
                }
            }
        });
    };
    for item in &q.select {
        push(&item.expr);
    }
    if let Some(h) = &q.having {
        push(h);
    }
    for (e, _) in &q.order_by {
        push(e);
    }
    out
}

/// If `e` is an aggregate call, its normalized `(func, arg)` form.
pub fn as_aggregate(e: &Expr) -> Option<(AggFunc, Option<Expr>)> {
    if let Expr::Func { name, args } = e {
        if let Some(mut f) = AggFunc::parse(name) {
            let arg = match args.first() {
                Some(Expr::Wildcard) | None => {
                    f = AggFunc::CountStar;
                    None
                }
                Some(a) => Some(a.clone()),
            };
            return Some((f, arg));
        }
    }
    None
}

/// Rewrite an expression over an aggregated intermediate: aggregate
/// calls become `_aN` columns and group-by expressions become `_gN`
/// columns. `aggs` must be the canonical list from
/// [`collect_aggregates`] so positions line up.
pub fn substitute_aggregates(
    e: &Expr,
    group_by: &[Expr],
    aggs: &[(AggFunc, Option<Expr>)],
) -> Expr {
    if let Some(i) = group_by.iter().position(|g| g == e) {
        return Expr::col(&format!("_g{i}"));
    }
    if let Some(key) = as_aggregate(e) {
        if let Some(i) = aggs.iter().position(|a| *a == key) {
            return Expr::col(&format!("_a{i}"));
        }
    }
    match e {
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute_aggregates(expr, group_by, aggs)),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(substitute_aggregates(left, group_by, aggs)),
            op: *op,
            right: Box::new(substitute_aggregates(right, group_by, aggs)),
        },
        Expr::Case { whens, else_expr } => Expr::Case {
            whens: whens
                .iter()
                .map(|(c, v)| {
                    (
                        substitute_aggregates(c, group_by, aggs),
                        substitute_aggregates(v, group_by, aggs),
                    )
                })
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|x| Box::new(substitute_aggregates(x, group_by, aggs))),
        },
        other => other.clone(),
    }
}

/// The schema an aggregation stage must produce for query `q`:
/// `_g0.._gN` (typed from the input schema) then `_a0.._aM`.
pub fn aggregate_output_schema(q: &Query, input: &Schema) -> Result<Schema> {
    let mut cols = Vec::new();
    for (i, g) in q.group_by.iter().enumerate() {
        cols.push(ColumnDef::new(&format!("_g{i}"), infer_type(g, input)));
    }
    for (i, (f, _)) in collect_aggregates(q).iter().enumerate() {
        let dt = match f {
            AggFunc::Count | AggFunc::CountStar => DataType::BigInt,
            _ => DataType::Double,
        };
        cols.push(ColumnDef::new(&format!("_a{i}"), dt));
    }
    Schema::new(cols)
}

/// Apply HAVING to aggregated rows (which use the `_g`/`_a` convention).
pub fn apply_having(rows: Vec<Row>, schema: &Schema, q: &Query) -> Result<Vec<Row>> {
    let Some(h) = &q.having else {
        return Ok(rows);
    };
    let aggs = collect_aggregates(q);
    let pred = substitute_aggregates(h, &q.group_by, &aggs);
    let mut kept = Vec::with_capacity(rows.len());
    for r in rows {
        if evaluate_predicate(&pred, schema, &r)? {
            kept.push(r);
        }
    }
    Ok(kept)
}

/// Evaluate the final select list (over raw or aggregated rows) and
/// produce the output schema. SELECT * passes through.
pub fn project_final(rows: &[Row], schema: &Schema, q: &Query) -> Result<(Vec<Row>, Schema)> {
    if q.select.is_empty() {
        return Ok((rows.to_vec(), schema.clone()));
    }
    let aggregated = !q.group_by.is_empty()
        || q.select.iter().any(|s| s.expr.contains_aggregate())
        || q.having.as_ref().is_some_and(|h| h.contains_aggregate());
    let aggs = collect_aggregates(q);
    let exprs: Vec<Expr> = q
        .select
        .iter()
        .map(|s| {
            if aggregated {
                substitute_aggregates(&s.expr, &q.group_by, &aggs)
            } else {
                s.expr.clone()
            }
        })
        .collect();
    let mut out_cols = Vec::with_capacity(exprs.len());
    for (item, expr) in q.select.iter().zip(&exprs) {
        let name = item
            .alias
            .clone()
            .unwrap_or_else(|| item.expr.default_name());
        out_cols.push(ColumnDef::new(&name, infer_type(expr, schema)));
    }
    // De-duplicate repeated output names.
    let mut seen = std::collections::HashSet::new();
    for (i, c) in out_cols.iter_mut().enumerate() {
        if !seen.insert(c.name.clone()) {
            c.name = format!("{}_{i}", c.name);
            seen.insert(c.name.clone());
        }
    }
    let out_schema = Schema::new(out_cols)?;
    let mut out_rows = Vec::with_capacity(rows.len());
    for r in rows {
        let mut vals = Vec::with_capacity(exprs.len());
        for e in &exprs {
            vals.push(evaluate(e, schema, r)?);
        }
        out_rows.push(Row(vals));
    }
    Ok((out_rows, out_schema))
}

/// Sort rows by ORDER BY expressions evaluated against `schema`.
/// ORDER BY may reference output aliases or (for aggregated queries)
/// aggregate calls, which are substituted first by the caller if needed.
pub fn sort_rows(rows: &mut [Row], schema: &Schema, order_by: &[(Expr, bool)]) -> Result<()> {
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for r in rows.iter() {
        let mut keys = Vec::with_capacity(order_by.len());
        for (e, _) in order_by {
            keys.push(evaluate(e, schema, r).unwrap_or(Value::Null));
        }
        keyed.push((keys, r.clone()));
    }
    keyed.sort_by(|a, b| {
        for (i, (_, asc)) in order_by.iter().enumerate() {
            let ord = a.0[i].cmp(&b.0[i]);
            if !ord.is_eq() {
                return if *asc { ord } else { ord.reverse() };
            }
        }
        std::cmp::Ordering::Equal
    });
    for (dst, (_, src)) in rows.iter_mut().zip(keyed) {
        *dst = src;
    }
    Ok(())
}

/// Finish a query from the aggregated (or raw) intermediate: HAVING,
/// projection, DISTINCT, ORDER BY, LIMIT. The one-stop driver epilogue.
pub fn finish_query(mut rows: Vec<Row>, schema: &Schema, q: &Query) -> Result<(Vec<Row>, Schema)> {
    rows = apply_having(rows, schema, q)?;
    let (mut rows, out_schema) = project_final(&rows, schema, q)?;
    if q.distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| seen.insert(r.clone()));
    }
    if !q.order_by.is_empty() {
        sort_rows(&mut rows, &out_schema, &q.order_by)?;
    }
    if let Some(n) = q.limit {
        rows.truncate(n);
    }
    Ok((rows, out_schema))
}

/// Best-effort static type inference for derived columns.
pub fn infer_type(e: &Expr, schema: &Schema) -> DataType {
    match e {
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Varchar),
        Expr::Column { qualifier, name } => resolve_column(schema, qualifier.as_deref(), name)
            .map(|i| schema.column(i).data_type)
            .unwrap_or(DataType::Varchar),
        Expr::Func { name, .. } => match AggFunc::parse(name) {
            Some(AggFunc::Count | AggFunc::CountStar) => DataType::BigInt,
            Some(_) => DataType::Double,
            None => match name.as_str() {
                "YEAR" | "MONTH" | "LENGTH" => DataType::BigInt,
                "UPPER" | "LOWER" | "SUBSTR" | "SUBSTRING" => DataType::Varchar,
                "ADD_MONTHS" => DataType::Date,
                _ => DataType::Varchar,
            },
        },
        Expr::Binary {
            op: BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div,
            ..
        } => DataType::Double,
        Expr::Binary { .. } => DataType::Bool,
        Expr::Unary { expr, .. } => infer_type(expr, schema),
        Expr::Case { whens, .. } => whens
            .first()
            .map(|(_, v)| infer_type(v, schema))
            .unwrap_or(DataType::Varchar),
        _ => DataType::Bool,
    }
}

/// Map a select-list/order-by epilogue error into a plan error with the
/// query text attached (shared error-shaping helper).
pub fn plan_error(q: &Query, e: HanaError) -> HanaError {
    HanaError::Plan(format!("{e} while finishing '{q}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use crate::Statement;

    fn query(sql: &str) -> Query {
        let Statement::Query(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        q
    }

    #[test]
    fn collects_aggregates_in_order() {
        let q =
            query("SELECT SUM(a), COUNT(*) FROM t GROUP BY b HAVING AVG(c) > 1 ORDER BY SUM(a)");
        let aggs = collect_aggregates(&q);
        assert_eq!(aggs.len(), 3);
        assert_eq!(aggs[0].0, AggFunc::Sum);
        assert_eq!(aggs[1].0, AggFunc::CountStar);
        assert_eq!(aggs[2].0, AggFunc::Avg);
    }

    #[test]
    fn substitution_rewrites_to_positional_columns() {
        let q = query("SELECT b, SUM(a) / COUNT(*) FROM t GROUP BY b");
        let aggs = collect_aggregates(&q);
        let rewritten = substitute_aggregates(&q.select[1].expr, &q.group_by, &aggs);
        assert_eq!(rewritten.to_string(), "(_a0 / _a1)");
        let g = substitute_aggregates(&q.select[0].expr, &q.group_by, &aggs);
        assert_eq!(g.to_string(), "_g0");
    }

    #[test]
    fn finish_query_full_epilogue() {
        use hana_types::Value;
        let q = query(
            "SELECT _g0 AS status, _a0 AS cnt FROM t GROUP BY status_placeholder \
             HAVING COUNT(*) > 1 ORDER BY cnt DESC LIMIT 1",
        );
        // Build a fake aggregated intermediate matching _g0/_a0.
        let schema = Schema::of(&[("_g0", DataType::Varchar), ("_a0", DataType::BigInt)]);
        let rows = vec![
            Row::from_values([Value::from("A"), Value::Int(5)]),
            Row::from_values([Value::from("B"), Value::Int(1)]),
            Row::from_values([Value::from("C"), Value::Int(9)]),
        ];
        // HAVING COUNT(*) needs the canonical agg list; this query's
        // collect finds CountStar, which substitutes to _a0.
        let (rows, schema) = finish_query(rows, &schema, &q).unwrap();
        assert_eq!(schema.index_of("cnt"), Some(1));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::from("C"));
    }
}
