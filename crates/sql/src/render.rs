//! Rendering ASTs back to SQL text.
//!
//! Used for the remote-materialization cache key (§4.4: "a hash key is
//! computed from the HiveQL statement, parameters, and the host
//! information"), for shipping sub-queries to remote sources as SQL, and
//! for EXPLAIN output.

use std::fmt;

use hana_types::Value;

use crate::ast::{BinOp, Expr, JoinKind, Query, Statement, TableRef, UnaryOp};

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(Value::Varchar(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(Value::Date(d)) => write!(f, "DATE '{d}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Parameter(_) => write!(f, "?"),
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Wildcard => write!(f, "*"),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => write!(f, "(-{expr})"),
                UnaryOp::Not => write!(f, "(NOT {expr})"),
            },
            Expr::Binary { left, op, right } => {
                write!(f, "({left} {} {right})", op.sql())
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => write!(
                f,
                "{expr} {}BETWEEN {lo} AND {hi}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "{expr} {}LIKE '{}'",
                if *negated { "NOT " } else { "" },
                pattern.replace('\'', "''")
            ),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Func { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Case { whens, else_expr } => {
                write!(f, "CASE")?;
                for (c, v) in whens {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
        }
    }
}

impl BinOp {
    /// SQL spelling of the operator.
    pub fn sql(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Named { name, alias } => {
                write!(f, "{name}")?;
                if let Some(a) = alias {
                    write!(f, " {a}")?;
                }
                Ok(())
            }
            TableRef::Function { name, args, alias } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
                if let Some(a) = alias {
                    write!(f, " {a}")?;
                }
                Ok(())
            }
            TableRef::Subquery { query, alias } => write!(f, "({query}) {alias}"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        if self.select.is_empty() {
            write!(f, "*")?;
        } else {
            for (i, item) in self.select.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", item.expr)?;
                if let Some(a) = &item.alias {
                    write!(f, " AS {a}")?;
                }
            }
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        for j in &self.joins {
            let kw = match j.kind {
                JoinKind::Inner => "JOIN",
                JoinKind::LeftOuter => "LEFT OUTER JOIN",
            };
            write!(f, " {kw} {} ON {}", j.table, j.on)?;
        }
        if let Some(w) = &self.filter {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, (e, asc)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}{}", if *asc { "" } else { " DESC" })?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        if !self.hints.is_empty() {
            write!(f, " WITH HINT ({})", self.hints.join(", "))?;
        }
        Ok(())
    }
}

impl Statement {
    /// Canonical SQL text for queries and DML — the statements a
    /// prepared handle can carry parameters in. The session layer
    /// executes bound prepared statements from this rendering so the
    /// platform's WAL and DDL log record replayable SQL (with bound
    /// literals, not `?`). `None` for DDL/control statements, which
    /// execute from their original text.
    pub fn to_sql_text(&self) -> Option<String> {
        use std::fmt::Write as _;
        match self {
            Statement::Query(q) => Some(q.to_string()),
            Statement::Explain(q) => Some(format!("EXPLAIN {q}")),
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                let mut s = format!("INSERT INTO {table}");
                if let Some(cols) = columns {
                    let _ = write!(s, " ({})", cols.join(", "));
                }
                s.push_str(" VALUES ");
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push('(');
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            s.push_str(", ");
                        }
                        let _ = write!(s, "{e}");
                    }
                    s.push(')');
                }
                Some(s)
            }
            Statement::Update {
                table,
                assignments,
                filter,
            } => {
                let mut s = format!("UPDATE {table} SET ");
                for (i, (c, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "{c} = {e}");
                }
                if let Some(w) = filter {
                    let _ = write!(s, " WHERE {w}");
                }
                Some(s)
            }
            Statement::Delete { table, filter } => {
                let mut s = format!("DELETE FROM {table}");
                if let Some(w) = filter {
                    let _ = write!(s, " WHERE {w}");
                }
                Some(s)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_statement;
    use crate::Statement;

    fn round_trip(sql: &str) {
        let Statement::Query(q1) = parse_statement(sql).unwrap() else {
            panic!("not a query: {sql}")
        };
        let rendered = q1.to_string();
        let Statement::Query(q2) = parse_statement(&rendered).unwrap() else {
            panic!("rendered text did not parse: {rendered}")
        };
        assert_eq!(
            q1, q2,
            "render/parse round-trip changed the AST:\n{sql}\n-> {rendered}"
        );
    }

    #[test]
    fn dml_text_round_trips() {
        for sql in [
            "INSERT INTO t (k, v) VALUES (1, 'x'), (2, 'y')",
            "UPDATE t SET v = 5 WHERE k = 2",
            "DELETE FROM t WHERE k IN (1, 2)",
        ] {
            let stmt = parse_statement(sql).unwrap();
            let rendered = stmt.to_sql_text().expect("DML renders");
            assert_eq!(
                parse_statement(&rendered).unwrap(),
                stmt,
                "render/parse round-trip changed the AST:\n{sql}\n-> {rendered}"
            );
        }
        assert!(
            parse_statement("BEGIN").unwrap().to_sql_text().is_none(),
            "control statements have no canonical rendering"
        );
    }

    #[test]
    fn query_round_trips() {
        round_trip("SELECT * FROM t");
        round_trip("SELECT DISTINCT a, b AS x FROM t u WHERE a > 1 AND b LIKE 'x%'");
        round_trip(
            "SELECT c_custkey, COUNT(*) FROM customer JOIN orders ON c_custkey = o_custkey \
             WHERE c_mktsegment = 'HOUSEHOLD' GROUP BY c_custkey HAVING COUNT(*) > 2 \
             ORDER BY c_custkey DESC LIMIT 3 WITH HINT (USE_REMOTE_CACHE)",
        );
        round_trip("SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t");
        round_trip(
            "SELECT a FROM t WHERE d BETWEEN DATE '1995-01-01' AND DATE '1995-12-31' \
             AND s IN ('A', 'B') AND n IS NOT NULL",
        );
        round_trip("SELECT x.total FROM (SELECT SUM(a) AS total FROM t) x");
    }

    #[test]
    fn string_escaping() {
        round_trip("SELECT * FROM t WHERE s = 'it''s'");
        let Statement::Query(q) = parse_statement("SELECT * FROM t WHERE s = 'it''s'").unwrap()
        else {
            panic!()
        };
        assert!(q.to_string().contains("'it''s'"));
    }

    #[test]
    fn stable_text_for_cache_keys() {
        // Two parses of the same statement render identically.
        let sql = "SELECT a FROM t WHERE b = 1 AND c < 2";
        let Statement::Query(q1) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let Statement::Query(q2) = parse_statement(sql).unwrap() else {
            panic!()
        };
        assert_eq!(q1.to_string(), q2.to_string());
    }
}
