//! SQL aggregate functions, shared by every engine in the platform
//! (in-memory executor, extended storage, Hive/MapReduce, ESP windows).

use crate::error::{HanaError, Result};
use crate::value::Value;

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows, NULLs included.
    CountStar,
    /// `COUNT(expr)` — counts non-NULL inputs.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

impl AggFunc {
    /// Parse a SQL function name.
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// SQL spelling.
    pub fn sql_name(&self) -> &'static str {
        match self {
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// A fresh accumulator for this function.
    pub fn accumulator(&self) -> Accumulator {
        Accumulator {
            func: *self,
            count: 0,
            sum: 0.0,
            int_sum: Some(0),
            min: None,
            max: None,
        }
    }
}

/// Incremental state for one aggregate.
///
/// Also supports **retraction** (`remove`), which the ESP engine uses for
/// incremental window aggregation as events expire.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    count: i64,
    sum: f64,
    /// Exact integer sum while all inputs are integers.
    int_sum: Option<i64>,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    /// Feed one input value.
    pub fn add(&mut self, v: &Value) {
        if self.func == AggFunc::CountStar {
            self.count += 1;
            return;
        }
        if v.is_null() {
            return;
        }
        self.count += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
        }
        self.int_sum = match (self.int_sum, v) {
            (Some(acc), Value::Int(i)) => acc.checked_add(*i),
            _ => None,
        };
        if self.min.as_ref().is_none_or(|m| v < m) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| v > m) {
            self.max = Some(v.clone());
        }
    }

    /// Retract one previously added value. MIN/MAX do not support
    /// retraction (the ESP engine recomputes those windows instead).
    pub fn remove(&mut self, v: &Value) -> Result<()> {
        match self.func {
            AggFunc::Min | AggFunc::Max => {
                return Err(HanaError::Unsupported(
                    "MIN/MAX accumulators cannot retract; recompute the window".into(),
                ))
            }
            AggFunc::CountStar => {
                self.count -= 1;
                return Ok(());
            }
            _ => {}
        }
        if v.is_null() {
            return Ok(());
        }
        self.count -= 1;
        if let Some(x) = v.as_f64() {
            self.sum -= x;
        }
        self.int_sum = match (self.int_sum, v) {
            (Some(acc), Value::Int(i)) => acc.checked_sub(*i),
            _ => None,
        };
        Ok(())
    }

    /// The aggregate's current value.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count | AggFunc::CountStar => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if let Some(i) = self.int_sum {
                    Value::Int(i)
                } else {
                    Value::Double(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Double(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }

    /// Merge another accumulator of the same function (partial
    /// aggregation across partitions / MapReduce combiners).
    pub fn merge(&mut self, other: &Accumulator) {
        debug_assert_eq!(self.func, other.func);
        self.count += other.count;
        self.sum += other.sum;
        self.int_sum = match (self.int_sum, other.int_sum) {
            (Some(a), Some(b)) => a.checked_add(b),
            _ => None,
        };
        if let Some(m) = &other.min {
            if self.min.as_ref().is_none_or(|s| m < s) {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            if self.max.as_ref().is_none_or(|s| m > s) {
                self.max = Some(m.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, vals: &[Value]) -> Value {
        let mut acc = func.accumulator();
        for v in vals {
            acc.add(v);
        }
        acc.finish()
    }

    #[test]
    fn basic_aggregates() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3), Value::Int(2)];
        assert_eq!(run(AggFunc::Count, &vals), Value::Int(3));
        assert_eq!(run(AggFunc::CountStar, &vals), Value::Int(4));
        assert_eq!(run(AggFunc::Sum, &vals), Value::Int(6));
        assert_eq!(run(AggFunc::Avg, &vals), Value::Double(2.0));
        assert_eq!(run(AggFunc::Min, &vals), Value::Int(1));
        assert_eq!(run(AggFunc::Max, &vals), Value::Int(3));
    }

    #[test]
    fn empty_input_semantics() {
        assert_eq!(run(AggFunc::Count, &[]), Value::Int(0));
        assert_eq!(run(AggFunc::Sum, &[]), Value::Null);
        assert_eq!(run(AggFunc::Avg, &[]), Value::Null);
        assert_eq!(run(AggFunc::Min, &[]), Value::Null);
    }

    #[test]
    fn mixed_types_promote_to_double() {
        let vals = vec![Value::Int(1), Value::Double(0.5)];
        assert_eq!(run(AggFunc::Sum, &vals), Value::Double(1.5));
    }

    #[test]
    fn retraction_for_sliding_windows() {
        let mut acc = AggFunc::Sum.accumulator();
        for i in 1..=5 {
            acc.add(&Value::Int(i));
        }
        acc.remove(&Value::Int(1)).unwrap();
        acc.remove(&Value::Int(2)).unwrap();
        assert_eq!(acc.finish(), Value::Int(12));
        assert!(AggFunc::Min.accumulator().remove(&Value::Int(1)).is_err());
    }

    #[test]
    fn merge_partials() {
        let mut a = AggFunc::Avg.accumulator();
        a.add(&Value::Int(2));
        let mut b = AggFunc::Avg.accumulator();
        b.add(&Value::Int(4));
        b.add(&Value::Int(6));
        a.merge(&b);
        assert_eq!(a.finish(), Value::Double(4.0));
        let mut m = AggFunc::Max.accumulator();
        m.add(&Value::Int(1));
        let mut n = AggFunc::Max.accumulator();
        n.add(&Value::Int(9));
        m.merge(&n);
        assert_eq!(m.finish(), Value::Int(9));
    }

    #[test]
    fn parse_names() {
        assert_eq!(AggFunc::parse("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("AVG"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::parse("median"), None);
    }
}
